"""Compatibility shim: all metadata lives in pyproject.toml.

Kept so legacy editable installs work on offline machines whose
setuptools is too old to build PEP 660 wheels without the ``wheel``
package:

    python setup.py develop
"""

from setuptools import setup

setup()
