#!/usr/bin/env python3
"""Compare Avis against the baseline fault-injection approaches.

Runs the same budgeted campaign (Table III style) with Avis (SABRE +
pruning), Stratified BFI, BFI, and random injection against the
ArduPilot flavour and the waypoint workload, then prints the comparison
and per-mode tables.

This is a scaled-down version of the Table III benchmark so it finishes
in about a minute; pass a larger budget on the command line for a closer
match to the paper's two-hour campaigns, e.g.::

    python examples/compare_strategies.py 120

Run with:  python examples/compare_strategies.py [budget_units]
"""

from __future__ import annotations

import sys

from repro.core.avis import Avis
from repro.core.config import RunConfiguration
from repro.core.report import campaign_table, per_mode_table
from repro.core.strategies import (
    AvisStrategy,
    BayesianFaultInjection,
    RandomInjection,
    StratifiedBFI,
)
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.workloads.builtin import WaypointFenceWorkload


def main() -> None:
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 40.0
    config = RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: WaypointFenceWorkload(altitude=15.0, box_side=15.0),
    )
    avis = Avis(config, profiling_runs=2, budget_units=budget)
    avis.profile()

    strategies = [
        AvisStrategy(),
        StratifiedBFI(),
        BayesianFaultInjection(),
        RandomInjection(),
    ]
    campaigns = []
    for strategy in strategies:
        print(f"Running {strategy.name} with a budget of {budget:.0f} units ...")
        campaigns.append(avis.check(strategy=strategy))

    print()
    print("Unsafe scenarios identified by each approach (Table III analogue):")
    print(campaign_table(campaigns))
    print()
    print("Unsafe scenarios per operating-mode category (Table IV analogue):")
    print(per_mode_table(campaigns))
    print()
    avis_campaign, stratified_campaign = campaigns[0], campaigns[1]
    if stratified_campaign.unsafe_scenario_count:
        ratio = (
            avis_campaign.unsafe_scenario_count
            / stratified_campaign.unsafe_scenario_count
        )
        print(f"Avis found {ratio:.1f}x as many unsafe scenarios as Stratified BFI "
              f"(the paper reports 2.4x over its two-hour budget).")


if __name__ == "__main__":
    main()
