#!/usr/bin/env python3
"""Quickstart: check ArduPilot's Figure 8 workload with Avis.

This is the smallest end-to-end use of the library:

1. build a run configuration (firmware flavour + workload + environment),
2. let Avis profile the fault-free mission and calibrate its invariant
   monitor,
3. run a small SABRE campaign, and
4. print a detailed report for the first unsafe scenario found.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Avis, RunConfiguration
from repro.core.report import unsafe_condition_report
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.workloads.builtin import AutoWorkload


def main() -> None:
    config = RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: AutoWorkload(altitude=15.0),
    )
    avis = Avis(config, profiling_runs=2, budget_units=25)

    print("Profiling the fault-free mission ...")
    profiles = avis.profile()
    print(f"  mission duration: {profiles[0].duration_s:.1f} s")
    print(f"  operating modes:  {[t.label for t in profiles[0].mode_transitions]}")
    print(f"  liveliness calibration: {avis.monitor.liveliness.calibration.describe()}")
    print()

    print("Running a SABRE campaign (25 simulation budget) ...")
    campaign = avis.check()
    print(f"  simulations executed:      {campaign.simulations}")
    print(f"  unsafe scenarios found:    {campaign.unsafe_scenario_count}")
    print(f"  root-cause bugs implicated: {sorted(campaign.triggered_bug_ids)}")
    print()

    if campaign.unsafe_results:
        print("Detailed report for the first unsafe scenario:")
        print(unsafe_condition_report(campaign.unsafe_results[0]))
    else:
        print("No unsafe scenario found within this small budget; try a larger one.")


if __name__ == "__main__":
    main()
