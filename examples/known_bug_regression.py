#!/usr/bin/env python3
"""Re-insert previously known bugs and check that Avis rediscovers them.

This is the Table V experiment in miniature: the previously reported
ArduPilot bug APM-4679 (an accelerometer failure during the takeoff
climb) is re-inserted into the firmware, Avis runs a small SABRE
campaign, and the script reports whether an unsafe condition attributable
to the re-inserted bug was found and after how many simulations.

Run with:  python examples/known_bug_regression.py
"""

from __future__ import annotations

from repro.core.avis import Avis
from repro.core.config import RunConfiguration
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.firmware.bugs import KNOWN_BUGS
from repro.workloads.builtin import WaypointFenceWorkload

REINSERTED_BUG = "APM-4679"


def main() -> None:
    descriptor = next(bug for bug in KNOWN_BUGS if bug.bug_id == REINSERTED_BUG)
    print(f"Re-inserting {descriptor.bug_id}: {descriptor.summary}")
    print()

    config = RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: WaypointFenceWorkload(altitude=15.0, box_side=15.0),
        reinserted_bugs=(REINSERTED_BUG,),
    )
    avis = Avis(config, profiling_runs=2, budget_units=30)
    campaign = avis.check()

    simulations = campaign.simulations_to_find(REINSERTED_BUG)
    print(f"Simulations executed:           {campaign.simulations}")
    print(f"Unsafe scenarios found:         {campaign.unsafe_scenario_count}")
    print(f"Bugs implicated:                {sorted(campaign.triggered_bug_ids)}")
    if simulations is not None:
        print(f"{REINSERTED_BUG} was rediscovered after {simulations} simulations "
              f"(the paper's Table V reports 21 for this bug).")
    else:
        print(f"{REINSERTED_BUG} was not rediscovered within this budget; "
              f"increase budget_units and re-run.")


if __name__ == "__main__":
    main()
