#!/usr/bin/env python3
"""Parallel campaigns: the engine's backends, cache, and campaign grid.

Three stages, each building on the previous one:

1. run one random-injection campaign serially, then again through a
   4-worker process pool, and show the results are identical;
2. re-run the campaign against the orchestrator's result cache and show
   the repeat costs (almost) no simulation time;
3. shard a small (strategy x budget) campaign grid across workers --
   the Python-API equivalent of ``python -m repro.engine``;
4. run SABRE itself -- the paper's feedback-driven headline strategy --
   through the batch protocol: each transition dequeue fans out as one
   concurrent batch, and the campaign stays bit-identical to serial.

Run with:  python examples/parallel_campaign.py
"""

from __future__ import annotations

import time

from repro import Avis, RunConfiguration
from repro.core.strategies import AvisStrategy, RandomInjection, StratifiedBFI
from repro.engine import ProcessPoolBackend, SerialBackend
from repro.engine.grid import CampaignGrid, GridCell
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.workloads.builtin import AutoWorkload


def make_config() -> RunConfiguration:
    return RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: AutoWorkload(altitude=10.0, init_wait_ms=1000.0),
        max_sim_time_s=90.0,
    )


def timed_campaign(backend, label: str):
    avis = Avis(make_config(), profiling_runs=2, budget_units=12, backend=backend)
    avis.profile()
    started = time.perf_counter()
    campaign = avis.check(strategy=RandomInjection(rng_seed=5))
    elapsed = time.perf_counter() - started
    print(f"  {label:>12}: {campaign.summary().strip()}  [{elapsed:.1f}s]")
    return avis, campaign


def main() -> None:
    print("1. Serial vs. 4-worker process pool (identical results):")
    _, serial_campaign = timed_campaign(SerialBackend(), "serial")
    avis, pooled_campaign = timed_campaign(ProcessPoolBackend(max_workers=4), "4 workers")
    assert pooled_campaign.unsafe_scenario_count == serial_campaign.unsafe_scenario_count
    assert [r.scenario for r in pooled_campaign.results] == [
        r.scenario for r in serial_campaign.results
    ]

    print("\n2. Result cache: the same campaign again is (almost) free:")
    started = time.perf_counter()
    repeat = avis.check(strategy=RandomInjection(rng_seed=5))
    elapsed = time.perf_counter() - started
    print(f"  {'cached':>12}: {repeat.summary().strip()}  [{elapsed:.1f}s]")
    print(f"  cache stats : {avis.cache.stats}")

    print("\n3. A small campaign grid, sharded across workers:")
    cells = [
        GridCell(
            cell_id=f"ardupilot/auto/{name}",
            config=make_config(),
            strategy_factory=factory,
            budget_units=10,
        )
        for name, factory in (
            ("random", lambda: RandomInjection(rng_seed=5)),
            ("stratified-bfi", StratifiedBFI),
        )
    ]
    outcome = CampaignGrid(cells, max_workers=2).run(
        on_progress=lambda cell_id, c: print(f"  done {cell_id}: {c.summary().strip()}")
    )
    totals = outcome.summary()["totals"]
    print(f"  grid totals : {totals} in {outcome.wall_seconds:.1f}s "
          f"across {outcome.workers} worker(s)")

    print("\n4. Batched SABRE: the headline strategy, dequeue-parallel:")

    def sabre_campaign(backend, label):
        avis = Avis(make_config(), profiling_runs=2, budget_units=10, backend=backend)
        avis.profile()
        started = time.perf_counter()
        campaign = avis.check(strategy=AvisStrategy(max_scenarios_per_dequeue=4))
        elapsed = time.perf_counter() - started
        stats = avis.engine.last_stats
        print(f"  {label:>12}: {campaign.summary().strip()}  [{elapsed:.1f}s, "
              f"{stats['proposed']} scenarios in {stats['rounds']} rounds]")
        return campaign

    serial_sabre = sabre_campaign(SerialBackend(), "serial")
    pooled_sabre = sabre_campaign(ProcessPoolBackend(max_workers=4), "4 workers")
    assert [r.scenario for r in pooled_sabre.results] == [
        r.scenario for r in serial_sabre.results
    ]
    assert pooled_sabre.triggered_bug_ids == serial_sabre.triggered_bug_ids
    print("  bit-identical: same scenarios, same order, same found-bug set")


if __name__ == "__main__":
    main()
