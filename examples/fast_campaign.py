#!/usr/bin/env python3
"""The fast simulation core: same campaign, same verdicts, less time.

Runs a small convoy campaign (beacon dropouts on the lead) twice --
once on the reference stepper every verdict is pinned to, once on the
adaptive quiescence-skipping stepper -- and shows:

1. the verdicts are identical: outcome, collision count and the
   injection/recovery record do not depend on the stepping strategy;
2. the adaptive run is measurably faster, because sensor reads and
   firmware updates are fused across micro-steps while the simulation
   is quiescent (reference cadence resumes near fault windows, mode
   transitions and close-proximity flight);
3. the observability counters that explain where the time went:
   ``sim.macro_steps`` fused windows covering ``sim.micro_steps``
   physics ticks, with ``sim.boundary_refinements`` fallbacks to
   single-stepping.

The command-line equivalent of the adaptive leg is::

    python -m repro.engine --workload convoy --fleet-size 2 \
        --stepper adaptive

Run with:  python examples/fast_campaign.py
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro import RunConfiguration
from repro.core.runner import TestRunner
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.hinj.faults import FaultScenario, TrafficFaultKind, TrafficFaultSpec
from repro.obs.runtime import Observability, observed
from repro.workloads.fleet import ConvoyFollowWorkload


def make_config() -> RunConfiguration:
    # stepper="reference" is the default; spelled out because this
    # example is about the difference.
    return RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: ConvoyFollowWorkload(),
        fleet_size=2,
        max_sim_time_s=160.0,
        stepper="reference",
    )


def make_scenarios() -> list:
    """Recovering beacon dropouts on the lead, staggered along the run."""
    return [
        FaultScenario(
            [
                TrafficFaultSpec(
                    0, TrafficFaultKind.DROPOUT, 9.0 + 4.0 * index, duration_s=12.0
                )
            ]
        )
        for index in range(3)
    ]


def verdict(result) -> tuple:
    outcome = result.workload_result.outcome.value if result.workload_result else "n/a"
    return (
        outcome,
        len(result.collisions),
        len(result.traffic_injections),
        sum(1 for record in result.traffic_injections if record.recovered),
    )


def run_campaign(config: RunConfiguration, scenarios) -> tuple:
    """Returns (verdicts, wall seconds, counter snapshot)."""
    verdicts = []
    with observed(Observability()) as obs:
        started = time.perf_counter()
        for scenario in scenarios:
            result = TestRunner(config).run(scenario)
            verdicts.append(verdict(result))
        elapsed = time.perf_counter() - started
    return verdicts, elapsed, obs.metrics.snapshot()["counters"]


def main() -> None:
    config = make_config()
    scenarios = make_scenarios()

    print(f"Convoy campaign, {len(scenarios)} beacon-dropout scenarios:")
    reference_verdicts, reference_s, _ = run_campaign(config, scenarios)
    print(f"  reference stepper : {reference_s:.2f}s "
          f"({reference_s / len(scenarios):.2f}s/sim)")

    adaptive_verdicts, adaptive_s, counters = run_campaign(
        replace(config, stepper="adaptive"), scenarios
    )
    print(f"  adaptive stepper  : {adaptive_s:.2f}s "
          f"({adaptive_s / len(scenarios):.2f}s/sim, "
          f"{reference_s / adaptive_s:.2f}x)")

    assert adaptive_verdicts == reference_verdicts, "steppers must agree"
    print("\nIdentical verdicts (outcome, collisions, injections, recoveries):")
    for scenario, signature in zip(scenarios, adaptive_verdicts):
        print(f"  {scenario.describe()} -> {signature}")

    macro = int(counters.get("sim.macro_steps", 0))
    micro = int(counters.get("sim.micro_steps", 0))
    refinements = int(counters.get("sim.boundary_refinements", 0))
    print(f"\nWhere the adaptive time went ({len(scenarios)} runs pooled):")
    print(f"  micro-steps simulated : {micro} (every physics tick still runs)")
    print(f"  fused macro-windows   : {macro} "
          "(one sensor read + firmware update each)")
    print(f"  boundary refinements  : {refinements} "
          "(fault windows, mode changes, proximity)")


if __name__ == "__main__":
    main()
