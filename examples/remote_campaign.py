#!/usr/bin/env python3
"""The distributed campaign fabric, end to end on one machine.

Four stages, each building on the previous one:

1. describe a campaign as a :class:`repro.CampaignRequest` and run it
   in-process through :class:`repro.CampaignClient` -- the declarative
   twin of the ``python -m repro.engine`` flags;
2. run the same request over the remote execution backend (a loopback
   fleet of forked TCP workers) and show the records are bit-identical;
3. share one content-addressed result cache between two campaigns
   through a :class:`CacheServer` -- the second campaign runs warm;
4. start a campaign service daemon, submit two jobs from two clients,
   and follow their multiplexed record streams.

Run with:  python examples/remote_campaign.py
"""

from __future__ import annotations

import tempfile
import threading

from repro import Avis, CampaignClient, CampaignRequest, RunConfiguration
from repro.core.strategies import RandomInjection
from repro.engine.cache import ResultCache
from repro.engine.cache_remote import CacheServer, RemoteCacheStore
from repro.engine.service import CampaignService
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.workloads.builtin import AutoWorkload


def main() -> None:
    request = CampaignRequest(
        strategies=("random",), budgets=(8.0,), workers=1
    )

    print("1. One declarative request, run in-process:")
    records = CampaignClient().run(request)
    for record in records:
        print(f"  {record['cell']}: {record['simulations']} simulations, "
              f"{record['unsafe_scenarios']} unsafe")

    print("\n2. The same request on the remote backend (loopback fleet):")
    remote_request = CampaignRequest(
        strategies=("random",), budgets=(8.0,), workers=1,
        backend="remote:2",  # self-spawned fleet of 2 forked TCP workers
    )
    remote_records = CampaignClient().run(remote_request)
    same = all(
        (a["simulations"], a["unsafe_scenarios"], a["triggered_bugs"])
        == (b["simulations"], b["unsafe_scenarios"], b["triggered_bugs"])
        for a, b in zip(records, remote_records)
    )
    print(f"  bit-identical to in-process: {same}")

    print("\n3. A shared cache server warming a second campaign:")
    config = RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: AutoWorkload(altitude=10.0),
        max_sim_time_s=90.0,
    )
    with tempfile.TemporaryDirectory() as cache_dir:
        with CacheServer(ResultCache(directory=cache_dir)) as server:
            print(f"  cache server on {server.endpoint}")
            for label in ("cold", "warm"):
                store = RemoteCacheStore(server.address)
                avis = Avis(config, profiling_runs=2, budget_units=6.0,
                            cache=store)
                avis.profile()
                campaign = avis.check(strategy=RandomInjection(rng_seed=5))
                print(f"  {label}: {campaign.simulations} simulations, "
                      f"{store.hits} hits / {store.misses} misses")
                store.close()

    print("\n4. A campaign service, two clients, multiplexed streams:")
    with CampaignService() as service:
        print(f"  service on {service.endpoint}")
        first = CampaignClient(service.endpoint)
        second = CampaignClient(service.endpoint)
        job_a = first.submit(CampaignRequest(strategies=("random",),
                                             budgets=(6.0,), workers=1))
        job_b = second.submit(CampaignRequest(strategies=("random",),
                                              budgets=(7.0,), workers=1))

        def follow(client: CampaignClient, job_id: str) -> None:
            for record in client.watch(job_id, timeout=600.0):
                print(f"  {job_id} streamed {record['cell']}: "
                      f"{record['simulations']} simulations")

        threads = [
            threading.Thread(target=follow, args=(first, job_a)),
            threading.Thread(target=follow, args=(second, job_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for row in first.status()["jobs"]:
            print(f"  {row['job']}: {row['state']} "
                  f"({row['records']} record(s))")


if __name__ == "__main__":
    main()
