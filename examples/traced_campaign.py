#!/usr/bin/env python3
"""Observability walkthrough: trace, meter and flight-record a campaign.

Four stages:

1. run a SABRE campaign under an installed observability runtime and
   dump the metrics snapshot -- engine rounds, cache traffic, backend
   tasks, SABRE prune reasons, per-phase harness time;
2. export the span trace as Chrome trace-event JSON (drop the file on
   chrome://tracing or https://ui.perfetto.dev to browse it) and print
   the same data through the ``python -m repro.obs report`` aggregator;
3. read one run's flight recorder: phase seconds plus the timestamped
   fault-injection and mode-transition events;
4. show inertness -- the identical campaign without a runtime produces
   bit-identical results and carries no instrumentation at all.

Run with:  python examples/traced_campaign.py
"""

from __future__ import annotations

import json
import os
import tempfile

from repro import Avis, RunConfiguration
from repro.core.strategies import AvisStrategy
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.obs.report import build_report, render_text
from repro.obs.runtime import Observability, observed
from repro.workloads.builtin import AutoWorkload


def make_config() -> RunConfiguration:
    return RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: AutoWorkload(altitude=10.0, init_wait_ms=1000.0),
        max_sim_time_s=90.0,
    )


def run_campaign():
    avis = Avis(make_config(), profiling_runs=1, budget_units=8)
    return avis.check(strategy=AvisStrategy())


def main() -> None:
    print("1. A SABRE campaign under an observability runtime:")
    with observed(Observability()) as obs:
        campaign = run_campaign()
    print(f"  {campaign.summary().strip()}")
    snapshot = obs.metrics.snapshot()
    for key in sorted(snapshot["counters"]):
        print(f"  {key} = {snapshot['counters'][key]:g}")

    print("\n2. The span trace, exported and summarized:")
    with tempfile.TemporaryDirectory() as scratch:
        trace_path = os.path.join(scratch, "trace.json")
        metrics_path = os.path.join(scratch, "metrics.json")
        obs.tracer.write_chrome(trace_path)
        obs.metrics.write_json(metrics_path)
        print(f"  (open {os.path.basename(trace_path)} in chrome://tracing)")
        report = build_report(trace_path, metrics_path, top=6)
        print("  " + render_text(report).replace("\n", "\n  "))

    print("\n3. One run's flight recorder:")
    traced_run = campaign.results[0]
    log = traced_run.flight_log
    for phase in sorted(log.phase_seconds):
        print(f"  {phase}: {log.phase_seconds[phase]:.3f}s")
    for event in log.events[:8]:
        print(f"  t={event.time_s:7.2f}s  {event.kind}  {event.detail}")
    if log.dropped:
        print(f"  ({log.dropped} older events dropped from the ring)")

    print("\n4. Inertness: the same campaign without a runtime:")
    plain = run_campaign()
    assert [r.scenario for r in plain.results] == [
        r.scenario for r in campaign.results
    ]
    assert all(r.flight_log is None for r in plain.results)
    print("  identical scenarios, no flight logs, nothing recorded.")
    print(
        "  (grid equivalent: python -m repro.engine --trace trace.json "
        "--metrics-json metrics.json)"
    )


if __name__ == "__main__":
    main()
