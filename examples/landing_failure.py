#!/usr/bin/env python3
"""Reproduce the paper's Figure 1 scenario: an IMU failure while landing.

The accelerometer is failed just as the return-to-launch descent hands
over to the landing mode.  The (buggy) fail-safe switches to GPS-driven
altitude, whose reference is far too coarse near the ground, and the
vehicle descends fast into the terrain.  The script prints the altitude
traces of the golden and fault-injected runs side by side and the
invariant violations the monitor recorded, then replays the scenario to
demonstrate the transition-anchored replay of Section IV-D.

Run with:  python examples/landing_failure.py
"""

from __future__ import annotations

from repro.analysis.figures import case_study_figure1
from repro.core.avis import Avis
from repro.core.replay import BugReplayer
from repro.core.report import unsafe_condition_report
from repro.core.config import RunConfiguration
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.workloads.builtin import WaypointFenceWorkload


def print_trace_table(case) -> None:
    """Print the two altitude traces on a shared, down-sampled time base."""
    print(f"{'time (s)':>9}  {'golden alt (m)':>15}  {'faulted alt (m)':>16}")
    faulted_by_index = dict(zip(range(len(case.faulted.times)), case.faulted.altitudes))
    for index in range(0, len(case.golden.times), 20):
        golden_alt = case.golden.altitudes[index]
        faulted_alt = faulted_by_index.get(index)
        faulted_text = f"{faulted_alt:16.2f}" if faulted_alt is not None else " " * 12 + "down"
        print(f"{case.golden.times[index]:9.1f}  {golden_alt:15.2f}  {faulted_text}")


def main() -> None:
    print("Running the Figure 1 case study (accelerometer failure during landing) ...")
    case = case_study_figure1()
    print_trace_table(case)
    print()
    print(f"Faulted run crashed:           {case.crashed}")
    print(f"Unsafe condition detected:     {case.unsafe}")
    print(f"Root-cause bugs (ground truth): {case.faulted_run.triggered_bugs}")
    print()
    print(unsafe_condition_report(case.faulted_run))

    print()
    print("Replaying the recorded scenario (anchored to mode transitions) ...")
    config = RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: WaypointFenceWorkload(),
    )
    avis = Avis(config, profiling_runs=2)
    replayer = BugReplayer(config, avis.monitor)
    outcome = replayer.replay(case.faulted_run, reference=avis.profiling_results[0])
    print(f"Replay plan: {outcome.plan.describe()}")
    print(f"Unsafe condition reproduced on replay: {outcome.reproduced}")


if __name__ == "__main__":
    main()
