#!/usr/bin/env python3
"""Print the Section III bug-study findings from the reconstructed dataset.

Recomputes Findings 1-3 and the three panels of Figure 3 from the
per-bug records and prints them next to the numbers the paper reports.

Run with:  python examples/bug_study_report.py
"""

from __future__ import annotations

from repro.bugstudy import build_review, summarize


def main() -> None:
    review = build_review()
    summary = summarize(list(review.analysed))

    print("Bug review bookkeeping (Section III):")
    print(f"  reports reviewed:            {review.total_reviewed} "
          f"({review.ardupilot_reports} ArduPilot + {review.px4_reports} PX4)")
    print(f"  excluded (tooling):          {review.excluded_tooling}")
    print(f"  excluded (dupes/unclear):    {review.excluded_duplicates_or_unclear}")
    print(f"  analysed:                    {review.analysed_count}  (paper: 215)")
    print()

    print("Finding 1 -- sensor bugs are common:")
    print(f"  sensor bugs share of all bugs:    {summary.root_cause_shares['sensor']:.0%}  (paper: 20%)")
    print(f"  semantic bugs share of all bugs:  {summary.root_cause_shares['semantic']:.0%}  (paper: 68%)")
    print(f"  sensor share of crash/fly-away:   {summary.sensor_share_of_serious:.0%}  (paper: 40%)")
    print()

    print("Finding 2 -- sensor bugs are reproducible:")
    print(f"  reproducible under default settings: "
          f"{summary.sensor_default_reproducible_share:.0%}  (paper: 47%)")
    print()

    print("Finding 3 -- sensor bugs are serious:")
    print(f"  sensor bugs with serious symptoms:   {summary.sensor_serious_share:.0%}  (paper: ~34%)")
    print(f"  semantic bugs that are asymptomatic: {summary.semantic_asymptomatic_share:.0%}  (paper: 90%)")
    print()

    print("Figure 3(A) -- bugs per root cause:")
    for cause, count in summary.figure3a_rows():
        print(f"  {cause:10s} {count:4d}")
    print("Figure 3(B) -- sensor-bug reproducibility:")
    for condition, count in summary.figure3b_rows():
        print(f"  {condition:18s} {count:4d}")
    print("Figure 3(C) -- sensor-bug outcomes:")
    for outcome, count in summary.figure3c_rows():
        print(f"  {outcome:18s} {count:4d}")


if __name__ == "__main__":
    main()
