#!/usr/bin/env python3
"""Fleet campaigns: checking a multi-vehicle convoy for separation bugs.

Three stages, each building on the previous one:

1. fly the two-vehicle convoy fault-free and show the calibrated
   minimum-separation invariant the profiling runs produce;
2. inject a battery failure on the convoy lead mid-corridor *plus* a
   beacon dropout: the lead's fail-safe return flies head-on through
   the slot the beacon-blind follower is holding, and the monitor
   reports a ``separation`` unsafe condition (with live beacons the
   follower retreats and the same battery failure stays separated);
3. run a short SABRE campaign over the namespaced fleet fault space --
   the Python-API equivalent of
   ``python -m repro.engine --workload convoy --fleet-size 2``.

Run with:  python examples/fleet_campaign.py
"""

from __future__ import annotations

from repro import Avis, RunConfiguration
from repro.core.runner import TestRunner
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.hinj.faults import (
    FaultScenario,
    FaultSpec,
    TrafficFaultKind,
    TrafficFaultSpec,
)
from repro.sensors.base import SensorId, SensorType
from repro.workloads.fleet import ConvoyFollowWorkload


def make_config() -> RunConfiguration:
    return RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: ConvoyFollowWorkload(),
        fleet_size=2,
        max_sim_time_s=160.0,
    )


def main() -> None:
    config = make_config()

    print("1. Profiling the fault-free convoy calibrates the invariant:")
    avis = Avis(config, profiling_runs=2, budget_units=12)
    profiles = avis.profile()
    golden_min = min(run.min_separation_m for run in profiles)
    print(f"  golden minimum separation : {golden_min:.2f} m")
    print(f"  calibrated threshold      : "
          f"{avis.monitor.separation_threshold_m:.2f} m")

    print("\n2. A battery failure plus a beacon dropout on the lead sends "
          "it back through the beacon-blind follower:")
    scenario = FaultScenario(
        [
            FaultSpec(SensorId(SensorType.BATTERY, 0, vehicle=0), 18.0),
            TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 18.0),
        ]
    )
    runner = TestRunner(config, monitor=avis.monitor)
    avis.monitor.begin_run()
    result = runner.run(scenario)
    print(f"  scenario   : {scenario.describe()}")
    print(f"  min sep    : {result.min_separation_m:.2f} m")
    for condition in result.unsafe_conditions:
        print(f"  unsafe     : {condition.describe()}")

    print("\n3. A short SABRE campaign over the fleet fault space:")
    campaign = avis.check()
    print(f"  {campaign.summary().strip()}")
    for unsafe in campaign.unsafe_results:
        kinds = ", ".join(c.kind.value for c in unsafe.unsafe_conditions)
        print(f"  {unsafe.scenario.describe()} -> {kinds}")


if __name__ == "__main__":
    main()
