#!/usr/bin/env python3
"""Heterogeneous fleets over a faultable traffic channel.

Four stages:

1. build a per-vehicle fleet -- an ArduPilot Iris lead with a PX4 Solo
   wing -- from :class:`VehicleSpec` and fly the beacon-coordinated
   convoy fault-free;
2. freeze the lead's beacon broadcast mid-corridor: the follower tracks
   a plausible-but-stale ghost while the real lead flies back through
   its slot, and the monitor reports a ``separation`` unsafe condition;
3. run a SABRE campaign whose fault space includes the coordination
   fault family (``Avis(traffic_faults=True)``);
4. re-run it with the separation-aware dequeue
   (``AvisStrategy(separation_aware=True)``) and compare how many
   simulations each ordering needed to reach the first separation
   violation.

The CLI equivalent of stages 3-4::

    python -m repro.engine --workload convoy \
        --vehicle firmware=ardupilot --vehicle firmware=px4,airframe=solo \
        --traffic-faults --separation-aware --strategy avis --budget 14

Run with:  python examples/heterogeneous_fleet.py
"""

from __future__ import annotations

from repro import Avis, RunConfiguration
from repro.core.config import VehicleSpec
from repro.core.monitor import UnsafeConditionKind
from repro.core.runner import TestRunner
from repro.core.strategies import AvisStrategy
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.firmware.px4 import Px4Firmware
from repro.hinj.faults import (
    FaultScenario,
    TrafficFailure,
    TrafficFaultKind,
    TrafficFaultSpec,
)
from repro.sim.vehicle import SOLO_QUADCOPTER
from repro.workloads.fleet import ConvoyFollowWorkload


def make_config() -> RunConfiguration:
    return RunConfiguration(
        workload_factory=lambda: ConvoyFollowWorkload(),
        vehicles=(
            VehicleSpec(firmware_class=ArduPilotFirmware),
            VehicleSpec(firmware_class=Px4Firmware, airframe=SOLO_QUADCOPTER),
        ),
        max_sim_time_s=160.0,
    )


def first_separation_index(campaign) -> str:
    for index, result in enumerate(campaign.results, start=1):
        if any(
            condition.kind == UnsafeConditionKind.SEPARATION
            for condition in result.unsafe_conditions
        ):
            return str(index)
    return "not found"


def main() -> None:
    config = make_config()
    specs = ", ".join(spec.describe() for spec in config.vehicle_specs)
    print(f"1. A heterogeneous convoy ({specs}) flies fault-free:")
    avis = Avis(config, profiling_runs=2, budget_units=14, traffic_faults=True)
    profiles = avis.profile()
    golden_min = min(run.min_separation_m for run in profiles)
    print(f"  golden minimum separation : {golden_min:.2f} m")
    print(f"  calibrated threshold      : "
          f"{avis.monitor.separation_threshold_m:.2f} m")

    print("\n2. Freezing the lead's beacons mid-corridor strands the "
          "follower on a stale ghost:")
    scenario = FaultScenario([TrafficFaultSpec(0, TrafficFaultKind.FREEZE, 25.0)])
    runner = TestRunner(config, monitor=avis.monitor)
    avis.monitor.begin_run()
    result = runner.run(scenario)
    print(f"  scenario   : {scenario.describe()}")
    print(f"  min sep    : {result.min_separation_m:.2f} m")
    for condition in result.unsafe_conditions:
        print(f"  unsafe     : {condition.describe()}")

    print("\n3. Uniform SABRE over the beacon-dropout fault space:")
    failures = [TrafficFailure(v, TrafficFaultKind.DROPOUT) for v in range(2)]
    uniform = avis.check(
        strategy=AvisStrategy(failures=failures, max_scenarios_per_dequeue=4)
    )
    print(f"  {uniform.summary().strip()}")
    print(f"  first separation violation at simulation: "
          f"{first_separation_index(uniform)}")

    print("\n4. Separation-aware SABRE dequeues tight-geometry windows "
          "first:")
    aware = avis.check(
        strategy=AvisStrategy(
            failures=failures,
            max_scenarios_per_dequeue=4,
            separation_aware=True,
        )
    )
    print(f"  {aware.summary().strip()}")
    print(f"  first separation violation at simulation: "
          f"{first_separation_index(aware)}")


if __name__ == "__main__":
    main()
