"""The fast simulation core: SoA batched physics + adaptive stepping.

Pins the two contracts the ``stepper`` knob rests on:

* **Bit-identity** -- the SoA fleet core (`FleetPhysics`, either
  kernel) reproduces the reference per-object integrator bit for bit:
  states, event logs and cache keys are *equal*, not approximately
  equal, across single-vehicle, fleet, traffic-fault and burst
  scenarios, with and without numpy.
* **Verdict equivalence** -- the quiescence-skipping adaptive stepper
  reaches the same safe/unsafe verdicts as the reference loop on the
  committed end-to-end scenarios (the convoy recovery-window hazard and
  the burst-vs-latched pair), while fusing most of its control periods.
"""

import math
from dataclasses import replace

import pytest

from repro.core.avis import Avis
from repro.core.config import RunConfiguration
from repro.core.monitor import UnsafeConditionKind
from repro.core.runner import TestRunner
from repro.engine.cache import config_fingerprint, scenario_key
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.hinj.faults import (
    FaultScenario,
    FaultSpec,
    TrafficFaultKind,
    TrafficFaultSpec,
)
from repro.obs import runtime as obs_runtime
from repro.obs.runtime import Observability, observed
from repro.sensors.base import SensorId, SensorType
from repro.sim.environment import default_environment
from repro.sim.fleet_physics import FleetPhysics, numpy_available
from repro.sim.physics import ActuatorCommand, QuadrotorPhysics
from repro.sim.planner import StepPlanner
from repro.sim.simulator import SimulationClock, Simulator
from repro.sim.vehicle import IRIS_QUADCOPTER
from repro.workloads.builtin import AutoWorkload
from repro.workloads.fleet import ConvoyFollowWorkload
from repro.workloads.framework import Target, WorkloadOutcome

GPS = SensorId(SensorType.GPS, 0)

DT = 0.01

#: Kernels to pin against the reference integrator on this host.
BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])


def scripted_command(step: int, phase_shift: int = 0) -> ActuatorCommand:
    """A deterministic command tape exercising every physics branch:
    disarmed rest, full-throttle climb, banked cruise with yaw, a cut
    throttle (free fall to a hard impact) and a disarmed tail."""
    t = (step + phase_shift) * DT
    if t < 0.2:
        return ActuatorCommand()
    if t < 2.0:
        return ActuatorCommand(throttle=0.9, armed=True)
    if t < 3.0:
        return ActuatorCommand(
            throttle=0.55,
            target_roll=-0.1,
            target_pitch=0.2,
            target_yaw_rate=0.4,
            armed=True,
        )
    if t < 6.0:
        return ActuatorCommand(throttle=0.0, armed=True)
    return ActuatorCommand()


def reference_states(steps: int, fleet_size: int = 1, dt: float = DT):
    """Trajectories from one ``QuadrotorPhysics`` object per vehicle."""
    environment = default_environment()
    engines = []
    for vehicle in range(fleet_size):
        engine = QuadrotorPhysics(
            airframe=IRIS_QUADCOPTER, environment=environment, dt=dt
        )
        if vehicle:
            engine.teleport((0.0, vehicle * 8.0, 0.0))
        engines.append(engine)
    trajectory = []
    for step in range(steps):
        trajectory.append(
            [
                engines[v].step(scripted_command(step, phase_shift=17 * v))
                for v in range(fleet_size)
            ]
        )
    return trajectory, engines


def fleet_states(steps: int, fleet_size: int = 1, backend: str = "python", dt: float = DT):
    """The same trajectories from one batched ``FleetPhysics``."""
    fleet = FleetPhysics(
        airframes=[IRIS_QUADCOPTER] * fleet_size,
        environment=default_environment(),
        dt=dt,
        backend=backend,
    )
    for vehicle in range(1, fleet_size):
        fleet.teleport(vehicle, (0.0, vehicle * 8.0, 0.0))
    trajectory = []
    for step in range(steps):
        trajectory.append(
            fleet.step_all(
                [
                    scripted_command(step, phase_shift=17 * v)
                    for v in range(fleet_size)
                ]
            )
        )
    return trajectory, fleet


class TestFleetPhysicsKernel:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_vehicle_matches_reference_bit_for_bit(self, backend):
        reference, engines = reference_states(900)
        batched, fleet = fleet_states(900, backend=backend)
        assert batched == reference  # dataclass equality: exact floats
        assert fleet.time == engines[0].time
        assert fleet.last_impact_speed(0) == engines[0].last_impact_speed

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fleet_matches_reference_objects(self, backend):
        reference, engines = reference_states(900, fleet_size=3)
        batched, fleet = fleet_states(900, fleet_size=3, backend=backend)
        assert batched == reference
        for vehicle, engine in enumerate(engines):
            assert fleet.last_impact_speed(vehicle) == engine.last_impact_speed

    @pytest.mark.skipif(not numpy_available(), reason="numpy kernel absent")
    def test_python_and_numpy_kernels_bit_identical(self):
        python_run, _ = fleet_states(900, fleet_size=3, backend="python")
        numpy_run, _ = fleet_states(900, fleet_size=3, backend="numpy")
        assert python_run == numpy_run

    def test_step_held_equals_repeated_step_all(self):
        one_by_one, _ = fleet_states(400, fleet_size=2)
        fleet = FleetPhysics(
            airframes=[IRIS_QUADCOPTER] * 2,
            environment=default_environment(),
            dt=DT,
            backend="python",
        )
        fleet.teleport(1, (0.0, 8.0, 0.0))
        # Re-drive the same tape, but fused: commands are constant within
        # each scripted phase, so holding them is exactly re-sending them.
        step = 0
        held = []
        while step < 400:
            commands = [scripted_command(step, phase_shift=17 * v) for v in range(2)]
            stride = 1
            while (
                step + stride < 400
                and stride < 5
                and all(
                    scripted_command(step + stride, phase_shift=17 * v) == commands[v]
                    for v in range(2)
                )
            ):
                stride += 1
            fleet.step_held(commands, stride)
            held.append(fleet.snapshots())
            step += stride
        assert held[-1] == one_by_one[-1]
        assert fleet.time == one_by_one[-1][0].time

    def test_backend_selection_and_validation(self, monkeypatch):
        with pytest.raises(ValueError):
            FleetPhysics(
                airframes=[IRIS_QUADCOPTER],
                environment=default_environment(),
                backend="fortran",
            )
        monkeypatch.setattr("repro.sim.fleet_physics._np", None)
        with pytest.raises(ValueError):
            FleetPhysics(
                airframes=[IRIS_QUADCOPTER],
                environment=default_environment(),
                backend="numpy",
            )
        fallback = FleetPhysics(
            airframes=[IRIS_QUADCOPTER], environment=default_environment()
        )
        assert fallback.backend == "python"

    @pytest.mark.skipif(not numpy_available(), reason="numpy kernel absent")
    def test_small_fleets_auto_pick_the_python_kernel(self, monkeypatch):
        small = FleetPhysics(
            airframes=[IRIS_QUADCOPTER] * 2, environment=default_environment()
        )
        assert small.backend == "python"
        monkeypatch.setattr("repro.sim.fleet_physics.NUMPY_MIN_FLEET", 2)
        wide = FleetPhysics(
            airframes=[IRIS_QUADCOPTER] * 2, environment=default_environment()
        )
        assert wide.backend == "numpy"

    def test_command_count_validated(self):
        fleet = FleetPhysics(
            airframes=[IRIS_QUADCOPTER] * 2, environment=default_environment()
        )
        with pytest.raises(ValueError):
            fleet.step_all([ActuatorCommand()])
        with pytest.raises(ValueError):
            fleet.step_held([ActuatorCommand()], 3)


class TestTouchdownRecords:
    def _fly_and_drop(self, fleet, steps=700):
        for step in range(steps):
            fleet.step_all([scripted_command(step)])

    def test_hard_impact_recorded_with_reference_speed_and_time(self):
        fleet = FleetPhysics(
            airframes=[IRIS_QUADCOPTER], environment=default_environment(), dt=DT
        )
        self._fly_and_drop(fleet)
        touchdowns = fleet.drain_touchdowns()
        hard = [t for t in touchdowns if t.speed >= 2.0]
        assert hard, "the scripted free fall must land hard"
        touchdown = hard[-1]
        assert touchdown.vehicle == 0
        assert touchdown.speed == fleet.last_impact_speed(0)
        # The timestamp sits on the step grid and the contact point on
        # the terrain.
        assert touchdown.time == pytest.approx(
            round(touchdown.time / DT) * DT, abs=1e-9
        )
        assert touchdown.position[2] == default_environment().terrain_height(
            touchdown.position[0], touchdown.position[1]
        )
        assert fleet.drain_touchdowns() == []

    def test_touchdown_inside_fused_macro_step_keeps_exact_timestamp(self):
        """A hard impact mid-window is attributed to its exact micro-step."""
        reference = FleetPhysics(
            airframes=[IRIS_QUADCOPTER], environment=default_environment(), dt=DT
        )
        self._fly_and_drop(reference)
        expected = reference.drain_touchdowns()

        fused = FleetPhysics(
            airframes=[IRIS_QUADCOPTER], environment=default_environment(), dt=DT
        )
        step = 0
        while step < 700:
            stride = min(5, 700 - step)
            command = scripted_command(step)
            if any(
                scripted_command(step + k) != command for k in range(1, stride)
            ):
                stride = 1
            fused.step_held([command], stride)
            step += stride
        assert fused.drain_touchdowns() == expected
        assert fused.snapshots() == reference.snapshots()


class TestDtEdgeCases:
    def test_clock_non_default_dt(self):
        clock = SimulationClock(dt=0.05)
        for _ in range(7):
            clock.advance()
        assert clock.ticks == 7
        assert clock.time == 7 * 0.05

    def test_nonpositive_dt_rejected_everywhere(self):
        with pytest.raises(ValueError):
            SimulationClock(dt=0.0)
        with pytest.raises(ValueError):
            QuadrotorPhysics(
                airframe=IRIS_QUADCOPTER, environment=default_environment(), dt=-0.01
            )
        with pytest.raises(ValueError):
            FleetPhysics(
                airframes=[IRIS_QUADCOPTER], environment=default_environment(), dt=0.0
            )

    @pytest.mark.parametrize("dt", [0.15, 0.2])
    def test_attitude_alpha_clamps_when_dt_exceeds_time_constant(self, dt):
        """At dt >= the attitude time constant the first-order lag clamps
        at alpha = 1: the attitude snaps to the commanded target instead
        of overshooting past it."""
        engine = QuadrotorPhysics(
            airframe=IRIS_QUADCOPTER, environment=default_environment(), dt=dt
        )
        engine.teleport((0.0, 0.0, 30.0))
        command = ActuatorCommand(
            throttle=0.6, target_roll=0.3, target_pitch=-0.2, armed=True
        )
        state = engine.step(command)
        assert state.attitude.roll == command.target_roll
        assert state.attitude.pitch == command.target_pitch

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fleet_physics_matches_reference_at_coarse_dt(self, backend):
        dt = 0.2  # alpha clamp active in every step
        reference, _ = reference_states(60, fleet_size=2, dt=dt)
        batched, _ = fleet_states(60, fleet_size=2, backend=backend, dt=dt)
        assert batched == reference


class TestStepPlanner:
    def test_quiescent_far_from_boundaries(self):
        planner = StepPlanner(dt=0.02, event_times=[10.0])
        assert planner.quiescent(2.0, 2.1)
        assert planner.plan(2.0, 5) == 5
        assert planner.macro_steps == 1
        assert planner.micro_steps == 5

    def test_refines_ahead_of_a_boundary(self):
        planner = StepPlanner(dt=0.02, event_times=[10.0], horizon_s=0.3)
        assert not planner.quiescent(9.65, 9.75)
        assert planner.plan(9.65, 5) == 1
        assert planner.boundary_refinements == 1

    def test_refines_through_the_settle_window_after_a_boundary(self):
        planner = StepPlanner(dt=0.02, event_times=[10.0], settle_s=0.75)
        assert not planner.quiescent(10.3, 10.4)
        assert planner.quiescent(10.76, 10.86)

    def test_mode_transition_opens_a_settle_window(self):
        planner = StepPlanner(dt=0.02, settle_s=0.75)
        assert planner.plan(5.0, 5) == 5
        planner.note_transition(5.1)
        assert planner.plan(5.2, 5) == 1
        assert planner.plan(5.86, 5) == 5

    def test_caller_refine_forces_reference_cadence(self):
        planner = StepPlanner(dt=0.02)
        assert planner.plan(1.0, 5, refine=True) == 1
        assert planner.boundary_refinements == 1

    def test_requested_caps_the_stride(self):
        planner = StepPlanner(dt=0.02)
        assert planner.plan(0.0, 3) == 3
        assert planner.plan(0.0, 1) == 1
        # A requested single step is not a refinement, just a short window.
        assert planner.boundary_refinements == 0

    def test_add_events_keeps_boundaries_sorted(self):
        planner = StepPlanner(dt=0.02, event_times=[20.0])
        planner.add_events([5.0, None, 30.0])
        assert planner.event_times == [5.0, 20.0, 30.0]
        assert not planner.quiescent(4.9, 5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepPlanner(dt=0.0)
        with pytest.raises(ValueError):
            StepPlanner(dt=0.02, max_stride=0)


class TestSimulatorSoA:
    def _drive(self, simulator, steps=700):
        for step in range(steps):
            simulator.step_fleet(
                [
                    scripted_command(step, phase_shift=17 * v)
                    for v in range(simulator.fleet_size)
                ]
            )

    def test_soa_simulator_is_bit_identical_to_reference(self):
        reference = Simulator(dt=DT, fleet_size=2, stepper="reference")
        batched = Simulator(dt=DT, fleet_size=2, stepper="soa")
        self._drive(reference)
        self._drive(batched)
        assert batched.states == reference.states
        assert batched.collisions == reference.collisions
        assert batched.fence_breaches == reference.fence_breaches
        assert batched.proximity_events == reference.proximity_events
        assert batched.min_separation_m == reference.min_separation_m
        assert batched.time == reference.time
        assert batched.safety_events() == reference.safety_events()
        assert reference.collisions, "the scripted drop must record a collision"

    def test_physics_property_guarded_under_soa(self):
        batched = Simulator(stepper="soa")
        with pytest.raises(AttributeError):
            _ = batched.physics
        assert batched.fleet is not None
        reference = Simulator(stepper="reference")
        assert reference.fleet is None
        assert reference.physics is not None

    @pytest.mark.parametrize("stepper", ["reference", "soa"])
    def test_teleport_vehicle_updates_snapshot(self, stepper):
        simulator = Simulator(dt=DT, fleet_size=2, stepper=stepper)
        simulator.teleport_vehicle(1, (3.0, 4.0, 25.0), velocity=(1.0, 0.0, 0.0))
        state = simulator.state_of(1)
        assert state.position == (3.0, 4.0, 25.0)
        assert state.velocity == (1.0, 0.0, 0.0)
        assert not state.on_ground

    def test_unknown_stepper_rejected(self):
        with pytest.raises(ValueError):
            Simulator(stepper="warp")


class TestRunConfigurationStepper:
    def test_default_and_validation(self):
        config = RunConfiguration(firmware_class=ArduPilotFirmware)
        assert config.stepper == "reference"
        with pytest.raises(ValueError):
            RunConfiguration(firmware_class=ArduPilotFirmware, stepper="warp")

    def test_with_noise_seed_preserves_stepper(self):
        config = RunConfiguration(firmware_class=ArduPilotFirmware, stepper="adaptive")
        assert config.with_noise_seed(7).stepper == "adaptive"


class TestCacheKeys:
    def _config(self, stepper):
        return RunConfiguration(firmware_class=ArduPilotFirmware, stepper=stepper)

    def test_soa_shares_cache_keys_with_reference(self):
        scenario = FaultScenario([FaultSpec(GPS, 2.0)])
        assert scenario_key(self._config("soa"), "auto", scenario) == scenario_key(
            self._config("reference"), "auto", scenario
        )
        assert "stepper" not in config_fingerprint(self._config("soa"), "auto")

    def test_adaptive_gets_its_own_fingerprint_term(self):
        scenario = FaultScenario([FaultSpec(GPS, 2.0)])
        assert "stepper=adaptive" in config_fingerprint(
            self._config("adaptive"), "auto"
        )
        assert scenario_key(self._config("adaptive"), "auto", scenario) != scenario_key(
            self._config("reference"), "auto", scenario
        )


def auto_config(stepper="reference", **overrides):
    return RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: AutoWorkload(altitude=8.0, init_wait_ms=1000.0),
        max_sim_time_s=90.0,
        stepper=stepper,
        **overrides,
    )


def convoy_config(stepper="reference", **overrides):
    return RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: ConvoyFollowWorkload(),
        fleet_size=2,
        max_sim_time_s=60.0,
        stepper=stepper,
        **overrides,
    )


def assert_identical_results(reference, batched):
    """Every observable of the two runs is *equal*, not approximately."""
    assert batched.trace == reference.trace
    assert batched.mode_transitions == reference.mode_transitions
    assert batched.collisions == reference.collisions
    assert batched.fence_breaches == reference.fence_breaches
    assert batched.injections == reference.injections
    assert batched.failsafe_events == reference.failsafe_events
    assert batched.triggered_bugs == reference.triggered_bugs
    assert batched.workload_result.outcome == reference.workload_result.outcome
    assert batched.steps == reference.steps
    assert batched.duration_s == reference.duration_s
    assert batched.min_separation_m == reference.min_separation_m
    assert batched.vehicle_traces == reference.vehicle_traces
    assert batched.traffic_injections == reference.traffic_injections


class TestHarnessBitIdentity:
    """Full runs: reference stepper vs the SoA core, equal in every field."""

    def test_single_vehicle_mission(self):
        reference = TestRunner(auto_config("reference")).run()
        batched = TestRunner(auto_config("soa")).run()
        assert reference.workload_result.passed
        assert_identical_results(reference, batched)

    def test_single_vehicle_burst_fault(self):
        scenario = FaultScenario([FaultSpec(GPS, 6.0, duration_s=4.0)])
        reference = TestRunner(auto_config("reference")).run(scenario)
        batched = TestRunner(auto_config("soa")).run(scenario)
        assert reference.injections, "the burst fault must inject"
        assert_identical_results(reference, batched)

    def test_convoy_with_traffic_fault(self):
        scenario = FaultScenario(
            [TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 10.0, duration_s=5.0)]
        )
        reference = TestRunner(convoy_config("reference")).run(scenario)
        batched = TestRunner(convoy_config("soa")).run(scenario)
        assert reference.traffic_injections, "the dropout must inject"
        assert_identical_results(reference, batched)

    @pytest.mark.skipif(not numpy_available(), reason="numpy kernel absent")
    def test_python_backend_matches_numpy_backend_end_to_end(self, monkeypatch):
        # Small fleets auto-pick the python kernel; drop the cutover to
        # force the numpy kernel through a whole harness run.
        monkeypatch.setattr("repro.sim.fleet_physics.NUMPY_MIN_FLEET", 1)
        with_numpy = TestRunner(auto_config("soa")).run()
        monkeypatch.setattr("repro.sim.fleet_physics._np", None)
        without_numpy = TestRunner(auto_config("soa")).run()
        assert_identical_results(with_numpy, without_numpy)


class TestAdaptiveRun:
    def test_mission_passes_and_fuses_windows(self):
        with observed(Observability()) as obs:
            result = TestRunner(auto_config("adaptive")).run()
        assert result.workload_result.outcome == WorkloadOutcome.PASSED
        assert result.flight_log is not None
        assert result.flight_log.stepper == "adaptive"
        snapshot = obs.metrics.snapshot()["counters"]
        assert snapshot["sim.macro_steps"] > 0
        assert snapshot["sim.micro_steps"] >= result.steps
        assert "sim.boundary_refinements" in snapshot

    def test_reference_flight_log_labels_its_stepper(self):
        with observed(Observability()):
            result = TestRunner(auto_config("reference")).run()
        assert result.flight_log.stepper == "reference"
        assert obs_runtime.current() is None

    def test_burst_vs_latched_verdicts_match_reference(self):
        """The burst-vs-latched pair reaches the same verdicts adaptively."""
        for scenario in (
            FaultScenario([FaultSpec(GPS, 6.0, duration_s=4.0)]),
            FaultScenario([FaultSpec(GPS, 6.0)]),
        ):
            reference = TestRunner(auto_config("reference")).run(scenario)
            adaptive = TestRunner(auto_config("adaptive")).run(scenario)
            assert (
                adaptive.workload_result.outcome
                == reference.workload_result.outcome
            )
            assert bool(adaptive.collisions) == bool(reference.collisions)
            assert sorted(adaptive.triggered_bugs) == sorted(
                reference.triggered_bugs
            )
            assert [
                (record.sensor_id, record.scheduled_time, record.duration_s)
                for record in adaptive.injections
            ] == [
                (record.sensor_id, record.scheduled_time, record.duration_s)
                for record in reference.injections
            ]


@pytest.fixture(scope="module")
def hazard_config() -> RunConfiguration:
    """The canonical two-vehicle convoy (matches the committed hazard)."""
    return RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: ConvoyFollowWorkload(),
        fleet_size=2,
        max_sim_time_s=160.0,
    )


@pytest.fixture(scope="module")
def hazard_monitor(hazard_config):
    avis = Avis(hazard_config, profiling_runs=2, budget_units=20.0)
    avis.profile()
    return avis.monitor


class TestAdaptiveVerdictEquivalence:
    """The committed convoy recovery-window hazard, re-run adaptively.

    The adaptive stepper must reproduce both halves of the canonical
    verdict pair (``tests/test_intermittent_faults.py``): the recovering
    beacon dropout breaks separation, its latched equivalent does not.
    """

    DROPOUT_START_S = 16.3
    DROPOUT_DURATION_S = 20.0
    BATTERY_FAIL_S = 39.3

    def _scenario(self, duration_s):
        return FaultScenario(
            [
                TrafficFaultSpec(
                    0,
                    TrafficFaultKind.DROPOUT,
                    self.DROPOUT_START_S,
                    duration_s=duration_s,
                ),
                FaultSpec(
                    SensorId(SensorType.BATTERY, 0, vehicle=0), self.BATTERY_FAIL_S
                ),
            ]
        )

    def _run_adaptive(self, hazard_config, hazard_monitor, scenario):
        config = replace(hazard_config, stepper="adaptive")
        runner = TestRunner(config, monitor=hazard_monitor)
        hazard_monitor.begin_run(scenario)
        return runner.run(scenario)

    def test_recovering_dropout_still_breaks_separation(
        self, hazard_config, hazard_monitor
    ):
        result = self._run_adaptive(
            hazard_config, hazard_monitor, self._scenario(self.DROPOUT_DURATION_S)
        )
        kinds = {condition.kind for condition in result.unsafe_conditions}
        assert UnsafeConditionKind.SEPARATION in kinds
        assert result.min_separation_m < hazard_monitor.separation_threshold_m

    def test_latched_equivalent_still_stays_separated(
        self, hazard_config, hazard_monitor
    ):
        result = self._run_adaptive(
            hazard_config, hazard_monitor, self._scenario(None)
        )
        kinds = {condition.kind for condition in result.unsafe_conditions}
        assert UnsafeConditionKind.SEPARATION not in kinds
        assert result.min_separation_m > hazard_monitor.separation_threshold_m


class TestCliStepper:
    def test_stepper_threads_into_configs_and_cell_ids(self):
        from repro.engine.cli import build_cells, build_parser

        args = build_parser().parse_args(
            ["--workload", "auto", "convoy", "--fleet-size", "2",
             "--stepper", "adaptive"]
        )
        cells = build_cells(args)
        assert cells
        for cell in cells:
            assert cell.config.stepper == "adaptive"
            assert "+adaptive" in cell.cell_id

    def test_default_keeps_classic_cell_ids(self):
        from repro.engine.cli import build_cells, build_parser

        args = build_parser().parse_args(["--workload", "auto"])
        for cell in build_cells(args):
            assert cell.config.stepper == "reference"
            assert "+reference" not in cell.cell_id
            assert "+soa" not in cell.cell_id


class _StubHarness:
    """The minimal surface ``Target`` binds to, with planner hooks."""

    dt = 0.02

    def __init__(self, stride=4):
        self.time = 0.0
        self.planned = None
        self.strides = []
        self._stride = stride

    def add_planned_events(self, times):
        self.planned = tuple(times)

    def wait_stride(self):
        return self._stride

    def step(self, count=1):
        self.strides.append(count)
        self.time += count * self.dt

    def should_abort(self):
        return False


class _ScheduledWorkload(Target):
    def scheduled_event_times(self):
        return (12.5, 40.0)

    def test(self):  # pragma: no cover - never run here
        self.pass_test()


class TestWorkloadPlannerHooks:
    def test_bind_registers_scheduled_events(self):
        harness = _StubHarness()
        workload = _ScheduledWorkload()
        workload.bind(harness)
        assert harness.planned == (12.5, 40.0)

    def test_default_schedule_is_empty(self):
        assert Target().scheduled_event_times() == ()

    def test_wait_until_polls_at_the_harness_stride(self):
        harness = _StubHarness(stride=4)
        workload = _ScheduledWorkload()
        workload.bind(harness)
        workload.wait_until(lambda: harness.time >= 0.3, timeout_s=10.0)
        assert set(harness.strides) == {4}

    def test_wait_until_steps_singly_without_the_hook(self):
        harness = _StubHarness()
        del _StubHarness.wait_stride  # type: ignore[attr-defined]
        try:
            workload = _ScheduledWorkload()
            workload.bind(harness)
            workload.wait_until(lambda: harness.time >= 0.1, timeout_s=10.0)
            assert set(harness.strides) == {1}
        finally:
            _StubHarness.wait_stride = lambda self: self._stride
