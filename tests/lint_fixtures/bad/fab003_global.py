# repro-lint: module=repro.sim.fixture_global
"""Known-bad: module-global rebinding in a worker-imported module (FAB003)."""

_STATE = None


def set_state(value) -> None:
    global _STATE
    _STATE = value
