# repro-lint: module=repro.engine.fixture_socket_lock
"""Known-bad: blocking socket I/O while a lock is held (FAB002)."""

import threading

_send_lock = threading.Lock()


def send_payload(sock, payload: bytes) -> None:
    with _send_lock:
        sock.sendall(payload)
