# repro-lint: module=repro.sim.fixture_obs_import
"""Known-bad: an eager non-gate repro.obs import in the core (OBS002)."""

from repro.obs.recorder import FlightLog

__all__ = ["FlightLog"]
