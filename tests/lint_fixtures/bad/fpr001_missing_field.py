# repro-lint: module=repro.core.fixture_fpr
"""Known-bad: a registered dataclass field the fingerprint skips (FPR001).

``VehicleSpec`` is one of the registered behaviour-bearing classes; this
local double declares a ``trim_offset`` field that its local
``config_fingerprint`` never renders and that has no exemption entry.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class VehicleSpec:
    firmware_class: str
    airframe: str
    trim_offset: float


def config_fingerprint(spec: VehicleSpec) -> str:
    return f"firmware={spec.firmware_class}|airframe={spec.airframe}"
