# repro-lint: module=repro.engine.fixture_listdir
"""Known-bad: an unsorted directory listing consumed in order (DET005)."""

import os


def entry_names(directory: str) -> list:
    names = []
    for name in os.listdir(directory):
        names.append(name)
    return names
