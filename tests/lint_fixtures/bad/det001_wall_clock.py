# repro-lint: module=repro.sim.fixture_wall_clock
"""Known-bad: a wall-clock read inside the simulation core (DET001)."""

import time


def step_duration() -> float:
    started = time.time()
    return time.time() - started
