# repro-lint: module=repro.sim.fixture_entropy
"""Known-bad: an entropy source inside the simulation core (DET002)."""

import uuid


def fresh_run_id() -> str:
    return uuid.uuid4().hex
