# repro-lint: module=repro.engine.fixture_thread
"""Known-bad: a thread without an explicit daemon= flag (FAB001)."""

import threading


def start_worker(target) -> threading.Thread:
    worker = threading.Thread(target=target, name="worker")
    worker.start()
    return worker
