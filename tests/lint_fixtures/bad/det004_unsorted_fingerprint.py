# repro-lint: module=repro.core.fixture_unsorted
"""Known-bad: unsorted dict-view iteration on a fingerprint path (DET004)."""


def config_fingerprint(values: dict) -> str:
    parts = []
    for name in values.keys():
        parts.append(name)
    return "|".join(parts)
