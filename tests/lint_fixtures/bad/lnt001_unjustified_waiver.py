# repro-lint: module=repro.sim.fixture_waiver
"""Known-bad: a waiver without a justification (LNT001).

The DET001 finding itself is suppressed (the author clearly meant the
waiver) but the missing ``-- why`` is reported so silent suppressions
cannot accumulate.
"""

import time


def wall_clock() -> float:
    return time.time()  # repro-lint: disable=DET001
