# repro-lint: module=repro.engine.fixture_obs_fpr
"""Known-bad: a fingerprint routine touching observability (OBS003).

The gate itself is used correctly (guarded), so only OBS003 fires: a
cache key must neither depend on nor feed the instruments.
"""

from repro.obs import runtime as obs_runtime


def scenario_fingerprint(spec: object) -> str:
    obs = obs_runtime.current()
    if obs is not None:
        obs.metrics.counter("fingerprints").inc()
    return repr(spec)
