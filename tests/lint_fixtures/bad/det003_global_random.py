# repro-lint: module=repro.firmware.fixture_random
"""Known-bad: the unseeded process-global RNG in the core (DET003)."""

import random


def jitter() -> float:
    return random.random()
