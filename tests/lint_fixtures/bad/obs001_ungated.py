# repro-lint: module=repro.core.fixture_obs_gate
"""Known-bad: the obs runtime used without a None gate (OBS001)."""

from repro.obs import runtime as obs_runtime


def record_step(step: int) -> None:
    obs = obs_runtime.current()
    obs.metrics.counter("steps").inc(step)
