# repro-lint: module=repro.sim.fixture_justified
"""Known-good: a deliberate violation with a justified waiver.

The DET001 finding is suppressed and -- because the waiver carries its
``-- why`` -- no LNT001 meta finding is emitted either.
"""

import time


def measured_wall_clock() -> float:
    return time.time()  # repro-lint: disable=DET001 -- measured for display only, never hashed or recorded
