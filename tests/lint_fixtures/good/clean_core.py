# repro-lint: module=repro.sim.fixture_clean
"""Known-good: every house pattern done right -- zero findings.

Seeded RNG instance, sorted set/dict iteration on the fingerprint path,
sorted directory listing, a None-gated obs runtime, an explicit daemon
flag, and socket I/O outside the lock.
"""

import os
import random
import threading

from repro.obs import runtime as obs_runtime

_lock = threading.Lock()


def noise_stream(seed: int) -> random.Random:
    return random.Random(seed)


def config_fingerprint(values: dict) -> str:
    parts = []
    for name in sorted(values.keys()):
        parts.append(f"{name}={values[name]!r}")
    return "|".join(parts)


def entry_names(directory: str) -> list:
    return sorted(os.listdir(directory))


def record_step(step: int) -> None:
    obs = obs_runtime.current()
    if obs is not None:
        obs.metrics.counter("steps").inc(step)


def start_worker(target) -> threading.Thread:
    worker = threading.Thread(target=target, name="worker", daemon=True)
    worker.start()
    return worker


def send_payload(sock, payload: bytes) -> None:
    with _lock:
        staged = bytes(payload)
    sock.sendall(staged)
