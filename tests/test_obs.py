"""Tests for the observability layer (metrics, tracing, flight recorder).

The load-bearing property is *inertness*: with no runtime installed the
instrumented code paths must behave bit-identically to the seed, and
with a runtime installed the campaign outcomes must still not change --
observability only reads clocks and state the run already produced.
"""

import dataclasses
import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.core.avis import Avis
from repro.core.runner import TestRunner
from repro.core.strategies import RandomInjection
from repro.core.strategies.avis_strategy import AvisStrategy
from repro.hinj.faults import FaultScenario, FaultSpec
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS_S,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.runtime import Observability, observed
from repro.obs.trace import Tracer, load_trace_events, validate_chrome_trace
from repro.sensors.base import SensorId, SensorType

GPS = SensorId(SensorType.GPS, 0)


class FakeClock:
    """A deterministic clock advancing one second per reading."""

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_key_by_name_and_sorted_labels(self):
        registry = MetricsRegistry()
        registry.counter("engine.rounds", strategy="avis", backend="serial").inc()
        # Same labels in a different keyword order: same instrument.
        registry.counter("engine.rounds", backend="serial", strategy="avis").inc(2)
        registry.counter("engine.rounds", strategy="random", backend="serial").inc()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {
            "engine.rounds{backend=serial,strategy=avis}": 3.0,
            "engine.rounds{backend=serial,strategy=random}": 1.0,
        }

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)
        with pytest.raises(ValueError):
            registry.counter("")

    def test_gauges_keep_the_last_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("sabre.queue_depth")
        gauge.set(7)
        gauge.set(3)
        gauge.inc(-1)
        assert registry.snapshot()["gauges"] == {"sabre.queue_depth": 2}

    def test_histogram_buckets_observations_against_fixed_boundaries(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t", buckets=(0.1, 1.0))
        for value in (0.05, 0.1, 0.5, 5.0):
            histogram.observe(value)
        rendered = registry.snapshot()["histograms"]["t"]
        assert rendered["count"] == 4
        assert rendered["sum"] == pytest.approx(5.65)
        assert rendered["buckets"] == {"le=0.1": 2, "le=1": 1, "le=+Inf": 1}

    def test_histogram_reregistration_with_other_boundaries_raises(self):
        registry = MetricsRegistry()
        registry.histogram("t", buckets=(0.1, 1.0)).observe(0.2)
        # Same boundaries: fine, same instrument.
        assert registry.histogram("t", buckets=(0.1, 1.0)).count == 1
        with pytest.raises(ValueError):
            registry.histogram("t", buckets=(0.5, 1.0))
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("empty", buckets=())

    def test_snapshot_json_is_deterministic(self):
        def populate(registry):
            registry.counter("cache.hits").inc(3)
            registry.gauge("depth", worker="a").set(2)
            registry.histogram("lat", buckets=DEFAULT_TIME_BUCKETS_S).observe(0.2)

        first, second = MetricsRegistry(), MetricsRegistry()
        populate(first)
        populate(second)
        assert first.to_json() == second.to_json()

    def test_merge_snapshots_adds_counters_and_keeps_gauge_maxima(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("cache.hits").inc(2)
        b.counter("cache.hits").inc(3)
        b.counter("cache.misses").inc(1)
        a.gauge("depth").set(5)
        b.gauge("depth").set(3)
        a.histogram("t", buckets=(1.0,)).observe(0.5)
        b.histogram("t", buckets=(1.0,)).observe(2.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"] == {"cache.hits": 5.0, "cache.misses": 1.0}
        assert merged["gauges"] == {"depth": 5}
        assert merged["histograms"]["t"]["count"] == 2
        assert merged["histograms"]["t"]["buckets"] == {"le=1": 1, "le=+Inf": 1}

    def test_merge_snapshots_rejects_mismatched_boundaries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("t", buckets=(1.0,)).observe(0.5)
        b.histogram("t", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            merge_snapshots([a.snapshot(), b.snapshot()])


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_nesting_with_injected_clock(self):
        tracer = Tracer(clock=FakeClock(), pid=0)
        with tracer.span("outer", kind="round"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events  # completion order: inner first
        assert inner["name"] == "inner" and inner["depth"] == 1
        assert outer["name"] == "outer" and outer["depth"] == 0
        # Clock readings: outer start=0, inner start=1, inner end=2,
        # outer end=3 -- the spans nest by construction.
        assert inner["ts_s"] == 1.0 and inner["dur_s"] == 1.0
        assert outer["ts_s"] == 0.0 and outer["dur_s"] == 3.0
        assert outer["args"] == {"kind": "round"}

    def test_traces_are_deterministic_under_a_fake_clock(self):
        def record(tracer):
            with tracer.span("simulate", scenario="gps fails"):
                tracer.instant("fault", sensor="gps0")

        first = Tracer(clock=FakeClock(), pid=0)
        second = Tracer(clock=FakeClock(), pid=0)
        record(first)
        record(second)
        assert first.events == second.events
        assert json.dumps(first.chrome_trace(), sort_keys=True) == json.dumps(
            second.chrome_trace(), sort_keys=True
        )

    def test_span_args_can_be_attached_mid_span(self):
        tracer = Tracer(clock=FakeClock(), pid=0)
        with tracer.span("simulate") as args:
            args["unsafe"] = True
        assert tracer.events[0]["args"] == {"unsafe": True}

    def test_non_scalar_args_become_reprs(self):
        tracer = Tracer(clock=FakeClock(), pid=0)
        tracer.instant("x", value=[1, 2])
        assert tracer.events[0]["args"] == {"value": "[1, 2]"}

    def test_chrome_trace_round_trip(self, tmp_path):
        tracer = Tracer(clock=FakeClock(), pid=0)
        with tracer.span("outer"):
            tracer.instant("mark")
        path = tmp_path / "trace.json"
        tracer.write_chrome(str(path))
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) == []
        events = load_trace_events(str(path))
        assert [event["name"] for event in events] == ["mark", "outer"]
        # Chrome timestamps are microseconds.
        assert events[1]["ts"] == 0.0 and events[1]["dur"] == 2e6

    def test_jsonl_round_trip_converts_to_chrome_schema(self, tmp_path):
        tracer = Tracer(clock=FakeClock(), pid=0)
        with tracer.span("outer"):
            pass
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        events = load_trace_events(str(path))
        assert events[0]["name"] == "outer"
        assert events[0]["ts"] == 0.0 and events[0]["dur"] == 1e6
        assert validate_chrome_trace({"traceEvents": events}) == []

    def test_validate_chrome_trace_reports_problems(self):
        assert validate_chrome_trace([]) == ["trace document is not a JSON object"]
        assert validate_chrome_trace({}) == ["traceEvents is missing or not a list"]
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "Q", "ts": "soon", "pid": 0, "tid": 0}]}
        )
        assert any("missing name" in problem for problem in problems)
        assert any("unexpected phase" in problem for problem in problems)
        assert any("ts is not numeric" in problem for problem in problems)

    def test_extend_adopts_foreign_events(self):
        worker = Tracer(clock=FakeClock(), pid=7)
        with worker.span("cell"):
            pass
        parent = Tracer(clock=FakeClock(), pid=0)
        parent.extend(worker.events)
        assert parent.events[0]["name"] == "cell"
        assert parent.events[0]["pid"] == 7


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_keeps_the_newest_events(self):
        recorder = FlightRecorder(capacity=2)
        for index in range(5):
            recorder.record(float(index), "mode.transition", detail=f"e{index}")
        assert recorder.dropped == 3
        log = recorder.seal()
        assert [event.detail for event in log.events] == ["e3", "e4"]
        assert log.dropped == 3 and log.capacity == 2

    def test_phase_seconds_accumulate(self):
        recorder = FlightRecorder()
        recorder.add_phase("physics", 0.25)
        recorder.add_phase("physics", 0.5)
        recorder.add_phase("provision", 1.0)
        log = recorder.seal()
        assert log.phase_seconds == {"physics": 0.75, "provision": 1.0}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_log_renders_to_json_safely(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record(1.5, "fault.injected", detail="gps0", vehicle="v0")
        rendered = recorder.seal().as_dict()
        assert rendered["events"] == [
            {"time_s": 1.5, "kind": "fault.injected", "detail": "gps0",
             "vehicle": "v0"}
        ]
        json.dumps(rendered)  # must be serialisable as-is


# ----------------------------------------------------------------------
# Runtime switch
# ----------------------------------------------------------------------
class TestRuntime:
    def test_inert_by_default(self):
        assert obs_runtime.current() is None

    def test_observed_restores_the_previous_runtime(self):
        outer = Observability()
        with observed(outer):
            assert obs_runtime.current() is outer
            with pytest.raises(RuntimeError):
                with observed(Observability()) as inner:
                    assert obs_runtime.current() is inner
                    raise RuntimeError("boom")
            # The raise inside the inner block must not leak it.
            assert obs_runtime.current() is outer
        assert obs_runtime.current() is None

    def test_install_and_uninstall(self):
        obs = Observability(recorder_capacity=8)
        try:
            assert obs_runtime.install(obs) is obs
            assert obs_runtime.current() is obs
            assert obs.new_recorder().capacity == 8
        finally:
            obs_runtime.uninstall()
        assert obs_runtime.current() is None


# ----------------------------------------------------------------------
# Bit-identity: tracing must never change campaign outcomes
# ----------------------------------------------------------------------
def _campaign_digest(campaign):
    """Everything outcome-shaped about a campaign, flight logs excluded
    (their presence is exactly what tracing adds)."""
    return (
        campaign.simulations,
        campaign.labels,
        campaign.budget_spent,
        [
            (
                result.scenario.describe(),
                result.found_unsafe_condition,
                result.duration_s,
                result.steps,
                tuple(sorted(result.triggered_bugs)),
            )
            for result in campaign.results
        ],
    )


def _run_campaign(config, strategy_factory, budget, backend=None):
    avis = Avis(config, profiling_runs=1, budget_units=budget, backend=backend)
    try:
        return avis.check(strategy=strategy_factory())
    finally:
        # Spec-built backends are engine-owned, so the engine closes them.
        avis.engine.close()


class TestBitIdentity:
    def test_serial_campaign_identical_with_tracing_on_and_off(
        self, short_auto_config
    ):
        plain = _run_campaign(short_auto_config, RandomInjection, 3.0)
        with observed(Observability()):
            traced = _run_campaign(short_auto_config, RandomInjection, 3.0)
        assert _campaign_digest(traced) == _campaign_digest(plain)
        # Tracing-off runs carry no flight log at all; traced runs do.
        assert all(result.flight_log is None for result in plain.results)
        assert all(result.flight_log is not None for result in traced.results)

    def test_pool_matches_serial_with_tracing_on(self, short_auto_config):
        serial = _run_campaign(short_auto_config, RandomInjection, 3.0)
        with observed(Observability()):
            pooled = _run_campaign(
                short_auto_config, RandomInjection, 3.0, backend="pool:2"
            )
        assert _campaign_digest(pooled) == _campaign_digest(serial)

    def test_sabre_batched_campaign_identical_with_tracing_on(
        self, short_auto_config
    ):
        plain = _run_campaign(short_auto_config, AvisStrategy, 4.0)
        with observed(Observability()) as obs:
            traced = _run_campaign(short_auto_config, AvisStrategy, 4.0)
        assert _campaign_digest(traced) == _campaign_digest(plain)
        # The SABRE counters recorded something while tracing was on.
        counters = obs.metrics.snapshot()["counters"]
        assert any(key.startswith("sabre.proposed") for key in counters)

    def test_sabre_report_untouched_by_instrumentation(self, short_auto_config):
        plain_strategy = AvisStrategy()
        traced_strategy = AvisStrategy()
        _run_campaign(short_auto_config, lambda: plain_strategy, 4.0)
        with observed(Observability()):
            _run_campaign(short_auto_config, lambda: traced_strategy, 4.0)
        assert dataclasses.astuple(traced_strategy.last_search.report) == (
            dataclasses.astuple(plain_strategy.last_search.report)
        )


# ----------------------------------------------------------------------
# Flight log content
# ----------------------------------------------------------------------
class TestFlightLogContent:
    def test_injected_fault_and_phases_are_recorded(self, short_auto_config):
        scenario = FaultScenario([FaultSpec(GPS, 5.0)])
        with observed(Observability()) as obs:
            result = TestRunner(short_auto_config).run(scenario)
        log = result.flight_log
        assert log is not None
        kinds = {event.kind for event in log.events}
        assert "fault.injected" in kinds
        times = [event.time_s for event in log.events]
        assert times == sorted(times)
        for phase in ("provision", "sensor_read", "control", "physics",
                      "monitor"):
            assert log.phase_seconds.get(phase, 0.0) > 0.0
        # The per-run phases also land in the metrics registry...
        counters = obs.metrics.snapshot()["counters"]
        assert counters.get("run.phase_seconds{phase=physics}", 0.0) > 0.0
        # ...as do the flight-event kind counts.
        assert counters.get(
            "run.flight_events{kind=fault.injected}", 0.0
        ) >= 1.0

    def test_untraced_runs_carry_no_flight_log(self, golden_auto_run):
        assert golden_auto_run.flight_log is None


# ----------------------------------------------------------------------
# CLI round trips
# ----------------------------------------------------------------------
class TestObservabilityCli:
    CAMPAIGN_ARGS = [
        "--strategy", "random",
        "--workload", "auto",
        "--budget", "2",
        "--workers", "1",
        "--quiet",
    ]

    def test_engine_cli_emits_valid_trace_metrics_and_stats(self, tmp_path):
        from repro.engine.cli import main

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        stats = tmp_path / "stats.json"
        out = tmp_path / "grid.json"
        code = main(
            self.CAMPAIGN_ARGS
            + ["--trace", str(trace), "--metrics-json", str(metrics),
               "--stats-json", str(stats), "--json", str(out)]
        )
        assert code == 0
        # The trace is schema-valid Chrome JSON covering the campaign.
        document = json.loads(trace.read_text())
        assert validate_chrome_trace(document) == []
        names = {event["name"] for event in document["traceEvents"]}
        assert {"grid.run", "avis.check", "simulate"} <= names
        # The metrics snapshot covers the engine, cache and backend.
        counters = json.loads(metrics.read_text())["counters"]
        assert any(key.startswith("engine.rounds") for key in counters)
        assert any(key.startswith("cache.") for key in counters)
        assert any(key.startswith("backend.worker_tasks") for key in counters)
        # Stats carry the per-cell engine/cache counters plus totals.
        stats_document = json.loads(stats.read_text())
        assert stats_document["totals"]["engine"]["rounds"] >= 1
        assert "misses" in stats_document["totals"]["cache"]
        (cell_stats,) = stats_document["cells"].values()
        assert cell_stats["engine"]["proposed"] >= 1
        # The grid summary records wall_s and metrics per campaign.
        summary = json.loads(out.read_text())
        campaign = summary["campaigns"][0]
        assert campaign["wall_s"] > 0.0
        assert "counters" in campaign["metrics"]
        assert summary["totals"]["engine"]["executed"] >= 1

    def test_report_cli_round_trip(self, tmp_path, capsys):
        from repro.engine.cli import main as engine_main
        from repro.obs.report import main as report_main

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert engine_main(
            self.CAMPAIGN_ARGS
            + ["--trace", str(trace), "--metrics-json", str(metrics),
               "--json", str(tmp_path / "grid.json")]
        ) == 0
        capsys.readouterr()
        code = report_main(
            ["report", str(trace), "--metrics", str(metrics),
             "--validate", "--json"]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert captured.startswith(f"valid: {trace}")
        report = json.loads(captured.split("\n", 1)[1])
        assert report["trace"]["events"] > 0
        span_names = [row["name"] for row in report["trace"]["spans"]]
        assert "simulate" in span_names
        assert report["metrics"]["cache"]["misses"] >= 1
        assert any(
            key.startswith("run.phase_seconds")
            for key in report["metrics"]["phase_seconds"]
        )

    def test_report_cli_rejects_invalid_traces(self, tmp_path, capsys):
        from repro.obs.report import main as report_main

        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "Q"}]}')
        assert report_main(["report", str(bad), "--validate"]) == 1
        assert "invalid:" in capsys.readouterr().out

    def test_resume_ignores_the_new_stream_fields(self, tmp_path):
        from repro.engine.cli import main

        stream = tmp_path / "stream.jsonl"
        out = tmp_path / "grid.json"
        # A traced run streams records that carry wall_s and metrics.
        assert main(
            self.CAMPAIGN_ARGS
            + ["--stream", str(stream), "--trace", str(tmp_path / "t.json"),
               "--metrics-json", str(tmp_path / "m.json"),
               "--json", str(out)]
        ) == 0
        record = json.loads(stream.read_text().strip())
        assert "wall_s" in record and "metrics" in record
        # An untraced invocation resumes from the enriched stream...
        assert main(
            self.CAMPAIGN_ARGS + ["--resume", str(stream), "--json", str(out)]
        ) == 0
        assert json.loads(out.read_text())["totals"]["resumed"] == 1
        # ...and a traced invocation resumes from a *pre-observability*
        # stream (simulated by stripping the new fields from the record).
        for key in ("wall_s", "metrics", "engine", "cache"):
            record.pop(key, None)
        old_stream = tmp_path / "old_stream.jsonl"
        old_stream.write_text(json.dumps(record) + "\n")
        assert main(
            self.CAMPAIGN_ARGS
            + ["--resume", str(old_stream),
               "--trace", str(tmp_path / "t2.json"), "--json", str(out)]
        ) == 0
        assert json.loads(out.read_text())["totals"]["resumed"] == 1


# ----------------------------------------------------------------------
# check_regression reporting (satellite: explain passing axes too)
# ----------------------------------------------------------------------
def _load_check_regression():
    """Load the gate script the same way tests/test_perf_gate.py does."""
    if "check_regression" in sys.modules:
        return sys.modules["check_regression"]
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_regression"] = module
    spec.loader.exec_module(module)
    return module


class TestCheckRegressionReporting:
    def _report(self, **seconds):
        report = {"calibration_s": 1.0, "usable_cpus": 1}
        for axis, value in seconds.items():
            if axis == "seconds_per_simulation":
                report[axis] = value
            else:
                report[axis] = {"seconds_per_simulation": value}
        return report

    def test_passing_axes_print_measured_vs_baseline(self):
        check_regression = _load_check_regression()

        failures, notes = check_regression.check_regression(
            self._report(seconds_per_simulation=1.0, sabre=2.0),
            self._report(seconds_per_simulation=1.1, sabre=1.9),
        )
        assert failures == []
        passing = [note for note in notes if "within allowed" in note]
        assert len(passing) == 2
        assert any(
            "measured 1.1000s/sim vs baseline 1.0000s/sim" in note
            for note in passing
        )

    def test_every_failing_axis_is_reported(self):
        check_regression = _load_check_regression()

        failures, _ = check_regression.check_regression(
            self._report(seconds_per_simulation=1.0, sabre=1.0, traffic=1.0),
            self._report(seconds_per_simulation=9.0, sabre=9.0, traffic=1.0),
        )
        assert len(failures) == 2
        assert any("seconds_per_simulation:" in failure for failure in failures)
        assert any(failure.startswith("sabre.") for failure in failures)
