"""Unit tests for the workload framework (against a fake harness)."""

import math

import pytest

from repro.mavlink.gcs import TelemetrySnapshot
from repro.mavlink.messages import MavCommand
from repro.sim.environment import GeoLocation
from repro.workloads.builtin import (
    AutoWorkload,
    PositionHoldBoxWorkload,
    WaypointFenceWorkload,
    default_workloads,
)
from repro.workloads.framework import (
    Target,
    WorkloadFailure,
    WorkloadOutcome,
    WorkloadTimeout,
)


class FakeGcs:
    """Records GCS calls without a real link."""

    def __init__(self):
        self.calls = []
        self.mission_upload_complete = False
        self.mission_upload_failed = False
        self.mission_upload_failure_reason = ""

    def __getattr__(self, name):
        def record(*args, **kwargs):
            self.calls.append((name, args, kwargs))
            if name == "begin_mission_upload":
                self.mission_upload_complete = True

        return record


class FakeHarness:
    """Minimal stand-in for the simulation harness."""

    def __init__(self):
        self.dt = 0.02
        self.time = 0.0
        self.telemetry = TelemetrySnapshot()
        self.gcs = FakeGcs()
        self.home = GeoLocation()
        self.auto_mode_name = "AUTO"
        self.guided_mode_name = "GUIDED"
        self.position_hold_mode_name = "POSHOLD"
        self.land_mode_name = "LAND"
        self.steps_taken = 0
        self.guided_targets = []
        #: Optional callback run after every step (simulates the world).
        self.on_step = None

    def step(self, count: int = 1):
        for _ in range(count):
            self.time += self.dt
            self.steps_taken += 1
            if self.on_step is not None:
                self.on_step(self)

    def should_abort(self):
        return False

    def set_guided_target(self, north, east, altitude):
        self.guided_targets.append((north, east, altitude))


class SimplePassingWorkload(Target):
    def test(self):
        self.wait_time(100)
        self.pass_test()


class FailingWorkload(Target):
    def test(self):
        self.fail_test("deliberate failure")


class ForgetfulWorkload(Target):
    def test(self):
        self.wait_time(20)


class TestTargetLifecycle:
    def test_run_requires_binding(self):
        with pytest.raises(RuntimeError):
            SimplePassingWorkload().run()

    def test_passing_workload(self):
        workload = SimplePassingWorkload()
        workload.bind(FakeHarness())
        result = workload.run()
        assert result.outcome == WorkloadOutcome.PASSED
        assert result.passed

    def test_failure_is_reported(self):
        workload = FailingWorkload()
        workload.bind(FakeHarness())
        result = workload.run()
        assert result.outcome == WorkloadOutcome.FAILED
        assert "deliberate" in result.reason

    def test_missing_pass_test_counts_as_failure(self):
        workload = ForgetfulWorkload()
        workload.bind(FakeHarness())
        result = workload.run()
        assert result.outcome == WorkloadOutcome.FAILED


class TestWaitPrimitives:
    def test_wait_time_advances_simulation(self):
        harness = FakeHarness()
        workload = SimplePassingWorkload()
        workload.bind(harness)
        workload.wait_time(1000)
        assert harness.time == pytest.approx(1.0, abs=0.05)

    def test_wait_until_timeout_raises(self):
        harness = FakeHarness()
        workload = SimplePassingWorkload()
        workload.bind(harness)
        with pytest.raises(WorkloadTimeout):
            workload.wait_until(lambda: False, timeout_s=0.5, description="never")

    def test_wait_altitude_uses_telemetry(self):
        harness = FakeHarness()

        def climb(h):
            h.telemetry.relative_altitude += 0.05

        harness.on_step = climb
        workload = SimplePassingWorkload()
        workload.bind(harness)
        workload.wait_altitude(5.0, tolerance=0.5, timeout_s=30.0)
        assert harness.telemetry.relative_altitude >= 4.5

    def test_arm_system_completely_re_requests(self):
        harness = FakeHarness()
        attempts = []

        def arm_later(h):
            arm_calls = [c for c in h.gcs.calls if c[0] == "arm"]
            attempts.append(len(arm_calls))
            if len(arm_calls) >= 2 and h.time > 2.0:
                h.telemetry.armed = True

        harness.on_step = arm_later
        workload = SimplePassingWorkload()
        workload.bind(harness)
        workload.arm_system_completely(timeout_s=20.0)
        assert harness.telemetry.armed
        assert len([c for c in harness.gcs.calls if c[0] == "arm"]) >= 2


class TestMissionBuilders:
    def setup_method(self):
        self.harness = FakeHarness()
        self.workload = SimplePassingWorkload()
        self.workload.bind(self.harness)

    def test_takeoff_and_land_fragments(self):
        takeoff = self.workload.takeoff_mission(20.0, 40.0, -83.0, 270.0)
        land = self.workload.land_mission()
        assert takeoff[0].command == MavCommand.NAV_TAKEOFF
        assert takeoff[0].altitude == 20.0
        assert land[0].command == MavCommand.NAV_LAND

    def test_waypoint_mission_converts_offsets(self):
        items = self.workload.waypoint_mission([(10.0, 0.0), (10.0, 10.0)], altitude=15.0)
        assert len(items) == 2
        assert all(item.command == MavCommand.NAV_WAYPOINT for item in items)
        home = self.harness.home
        north, east = home.local_offset_to(
            GeoLocation(items[0].latitude, items[0].longitude, home.altitude_msl_m)
        )
        assert north == pytest.approx(10.0, abs=0.1)
        assert east == pytest.approx(0.0, abs=0.1)

    def test_rtl_fragment(self):
        assert self.workload.rtl_mission()[0].command == MavCommand.NAV_RETURN_TO_LAUNCH

    def test_goto_sets_guided_target(self):
        self.workload.goto(5.0, -3.0, 12.0)
        assert self.harness.guided_targets == [(5.0, -3.0, 12.0)]


class TestBuiltinWorkloads:
    def test_default_workloads_are_the_paper_pair(self):
        workloads = default_workloads()
        assert len(workloads) == 2
        assert isinstance(workloads[0], PositionHoldBoxWorkload)
        assert isinstance(workloads[1], WaypointFenceWorkload)

    def test_names_are_stable(self):
        assert AutoWorkload().display_name == "auto"
        assert WaypointFenceWorkload().display_name == "waypoint-fence"
        assert PositionHoldBoxWorkload().display_name == "position-hold-box"

    def test_parameters_are_configurable(self):
        workload = WaypointFenceWorkload(altitude=12.0, box_side=15.0)
        assert workload.altitude == 12.0
        assert workload.box_side == 15.0
