"""Integration tests: full simulated missions through the test runner."""

import pytest

from repro.core.config import RunConfiguration
from repro.core.runner import TestRunner
from repro.firmware.px4 import Px4Firmware
from repro.hinj.faults import FaultScenario, FaultSpec
from repro.sensors.base import SensorId, SensorType
from repro.workloads.builtin import AutoWorkload
from repro.workloads.framework import WorkloadOutcome


class TestGoldenRuns:
    def test_auto_mission_passes(self, golden_auto_run):
        assert golden_auto_run.workload_passed
        assert golden_auto_run.workload_result.outcome == WorkloadOutcome.PASSED
        assert golden_auto_run.is_golden

    def test_auto_mission_visits_expected_modes(self, golden_auto_run):
        labels = [transition.label for transition in golden_auto_run.mode_transitions]
        assert "preflight" in labels
        assert "takeoff" in labels
        assert "land" in labels
        assert "landed" in labels

    def test_auto_mission_reaches_target_altitude(self, golden_auto_run):
        peak = max(sample.altitude for sample in golden_auto_run.trace)
        assert peak == pytest.approx(8.0, abs=1.5)
        assert golden_auto_run.trace[-1].altitude < 0.5

    def test_no_collisions_or_failsafes_in_golden_run(self, golden_auto_run):
        assert golden_auto_run.collisions == []
        assert golden_auto_run.triggered_bugs == []
        assert golden_auto_run.firmware_process_alive

    def test_trace_and_transition_bookkeeping(self, golden_auto_run):
        assert golden_auto_run.steps > 100
        assert len(golden_auto_run.trace) > 20
        assert golden_auto_run.mode_label_at(0.1) == "preflight"
        final_label = golden_auto_run.mode_label_at(golden_auto_run.duration_s)
        assert final_label in ("landed", "preflight")

    def test_waypoint_mission_passes_and_flies_box(self, golden_waypoint_run):
        assert golden_waypoint_run.workload_passed
        labels = [t.label for t in golden_waypoint_run.mode_transitions]
        assert "waypoint-1" in labels and "waypoint-4" in labels
        assert "rtl" in labels

    def test_px4_flavour_flies_the_same_mission(self, short_px4_config):
        result = TestRunner(short_px4_config).run()
        assert result.workload_passed
        assert result.firmware_name == "px4"

    def test_runs_are_reproducible_for_equal_seeds(self, short_auto_config):
        first = TestRunner(short_auto_config).run()
        second = TestRunner(short_auto_config).run()
        assert first.duration_s == pytest.approx(second.duration_s, abs=0.05)
        assert [t.label for t in first.mode_transitions] == [
            t.label for t in second.mode_transitions
        ]

    def test_noise_seed_changes_details_but_not_outcome(self, short_auto_config):
        base = TestRunner(short_auto_config).run()
        other = TestRunner(short_auto_config).run(noise_seed=5)
        assert other.workload_passed
        assert base.duration_s != other.duration_s or base.trace != other.trace


class TestFaultInjectionRuns:
    def test_benign_backup_failure_completes_mission(self, short_auto_config):
        scenario = FaultScenario([FaultSpec(SensorId(SensorType.GYROSCOPE, 1), 3.0)])
        result = TestRunner(short_auto_config).run(scenario)
        assert result.workload_passed
        assert result.triggered_bugs == []
        assert result.injections and result.injections[0].sensor_id.instance == 1

    def test_barometer_failure_at_takeoff_triggers_latent_bug(self, short_auto_config):
        golden = TestRunner(short_auto_config).run()
        takeoff_time = next(
            t.time for t in golden.mode_transitions if t.label == "takeoff"
        )
        scenario = FaultScenario(
            [FaultSpec(SensorId(SensorType.BAROMETER, 0), takeoff_time)]
        )
        result = TestRunner(short_auto_config).run(scenario)
        assert "APM-16027" in result.triggered_bugs
        assert not result.workload_passed

    def test_disabled_bug_behaves_correctly(self, short_auto_config):
        from repro.core.config import RunConfiguration

        config = RunConfiguration(
            firmware_class=short_auto_config.firmware_class,
            workload_factory=short_auto_config.workload_factory,
            max_sim_time_s=short_auto_config.max_sim_time_s,
            disabled_bugs=("APM-16027",),
        )
        golden = TestRunner(config).run()
        takeoff_time = next(
            t.time for t in golden.mode_transitions if t.label == "takeoff"
        )
        scenario = FaultScenario(
            [FaultSpec(SensorId(SensorType.BAROMETER, 0), takeoff_time)]
        )
        result = TestRunner(config).run(scenario)
        assert result.triggered_bugs == []

    def test_gyro_failure_at_takeoff_crashes_px4(self, short_px4_config):
        golden = TestRunner(short_px4_config).run()
        takeoff_time = next(
            t.time for t in golden.mode_transitions if t.label == "takeoff"
        )
        scenario = FaultScenario(
            [FaultSpec(SensorId(SensorType.GYROSCOPE, 0), takeoff_time)]
        )
        result = TestRunner(short_px4_config).run(scenario)
        assert "PX4-17057" in result.triggered_bugs
        assert result.collisions
