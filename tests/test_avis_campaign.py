"""Integration tests for Avis campaigns, replay and reporting."""

import pytest

from repro.core.avis import Avis, CampaignResult, ProfilingError
from repro.core.config import RunConfiguration
from repro.core.replay import BugReplayer, build_replay_plan, resolve_plan
from repro.core.report import campaign_table, per_mode_table, unsafe_condition_report
from repro.core.runner import TestRunner
from repro.core.strategies import RandomInjection
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.hinj.faults import FaultScenario, FaultSpec
from repro.sensors.base import SensorId, SensorType
from repro.workloads.builtin import AutoWorkload
from repro.workloads.framework import Target


class TestProfiling:
    def test_profiling_builds_monitor_and_mode_graph(self, waypoint_avis):
        assert len(waypoint_avis.profiling_results) == 2
        assert all(run.workload_passed for run in waypoint_avis.profiling_results)
        graph = waypoint_avis.monitor.mode_graph
        assert "takeoff" in graph.modes
        assert waypoint_avis.monitor.liveliness.calibration.threshold > 0.0

    def test_profiling_error_for_impossible_workload(self):
        class ImpossibleWorkload(Target):
            def test(self):
                self.wait_altitude(1000.0, timeout_s=2.0)
                self.pass_test()

        config = RunConfiguration(
            firmware_class=ArduPilotFirmware,
            workload_factory=ImpossibleWorkload,
            max_sim_time_s=20.0,
        )
        with pytest.raises(ProfilingError):
            Avis(config, profiling_runs=1).profile()


class TestCampaign:
    def test_sabre_campaign_finds_unsafe_scenarios(self, waypoint_avis):
        campaign = waypoint_avis.check(budget_units=25)
        assert isinstance(campaign, CampaignResult)
        assert campaign.simulations <= 25
        assert campaign.unsafe_scenario_count >= 1
        assert campaign.triggered_bug_ids
        assert campaign.efficiency > 0.0
        # Every unsafe scenario maps back to a registry bug (no false
        # positives, as in the paper's evaluation).
        for result in campaign.unsafe_results:
            assert result.triggered_bugs

    def test_per_mode_counts_cover_table4_categories(self, waypoint_avis):
        campaign = waypoint_avis.check(budget_units=12)
        assert set(campaign.per_mode_counts) >= {"takeoff", "manual", "waypoint", "land"}
        assert sum(campaign.per_mode_counts.values()) == campaign.unsafe_scenario_count

    def test_simulations_to_find_reports_first_hit(self, waypoint_avis):
        campaign = waypoint_avis.check(budget_units=25)
        found = sorted(campaign.triggered_bug_ids)
        assert found
        first = campaign.simulations_to_find(found[0])
        assert first is not None and 1 <= first <= campaign.simulations
        assert campaign.simulations_to_find("APM-0000") is None

    def test_campaign_tables_render(self, waypoint_avis):
        campaign = waypoint_avis.check(strategy=RandomInjection(rng_seed=2), budget_units=8)
        table = campaign_table([campaign])
        modes = per_mode_table([campaign])
        assert "random" in table
        assert "unsafe #" in table
        assert "takeoff #" in modes
        assert campaign.summary()


class TestReplayAndReport:
    def test_replay_plan_round_trip(self, golden_waypoint_run, short_waypoint_config, waypoint_avis):
        takeoff_time = next(
            t.time for t in golden_waypoint_run.mode_transitions if t.label == "takeoff"
        )
        scenario = FaultScenario(
            [FaultSpec(SensorId(SensorType.BAROMETER, 0), takeoff_time)]
        )
        runner = TestRunner(short_waypoint_config, monitor=waypoint_avis.monitor)
        original = runner.run(scenario)
        assert original.found_unsafe_condition

        plan = build_replay_plan(original)
        assert plan.faults and plan.faults[0].sensor_id.sensor_type == SensorType.BAROMETER
        resolved = resolve_plan(plan, golden_waypoint_run)
        assert len(resolved) == 1

        replayer = BugReplayer(short_waypoint_config, waypoint_avis.monitor)
        outcome = replayer.replay(original, reference=golden_waypoint_run)
        assert outcome.reproduced
        assert "barometer" in outcome.plan.describe()

    def test_unsafe_condition_report_contains_key_sections(
        self, short_waypoint_config, waypoint_avis, golden_waypoint_run
    ):
        takeoff_time = next(
            t.time for t in golden_waypoint_run.mode_transitions if t.label == "takeoff"
        )
        scenario = FaultScenario(
            [FaultSpec(SensorId(SensorType.BAROMETER, 0), takeoff_time)]
        )
        runner = TestRunner(short_waypoint_config, monitor=waypoint_avis.monitor)
        result = runner.run(scenario)
        report = unsafe_condition_report(result)
        assert "UNSAFE CONDITION REPORT" in report
        assert "Injected faults" in report
        assert "Operating-mode transitions" in report
        assert "APM-16027" in report

    def test_report_for_golden_run(self, golden_waypoint_run):
        report = unsafe_condition_report(golden_waypoint_run)
        assert "golden run" in report
        assert "(none)" in report
