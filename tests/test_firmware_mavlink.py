"""Integration tests for the firmware's MAVLink handling (no workload).

These drive a firmware instance directly through the link -- the same
path the workload framework uses -- and step the lock-step loop by hand.
"""

import pytest

from repro.firmware.ardupilot import ArduPilotFirmware
from repro.mavlink.gcs import GroundControlStation
from repro.mavlink.link import MavLink
from repro.mavlink.messages import MavCommand
from repro.mavlink.mission import MissionPlan, mission_item
from repro.sensors.suite import iris_sensor_suite
from repro.sim.simulator import Simulator


class Bench:
    """A minimal hand-stepped firmware + simulator + GCS bench."""

    def __init__(self):
        self.simulator = Simulator(dt=0.02)
        self.suite = iris_sensor_suite()
        self.link = MavLink()
        self.gcs = GroundControlStation(self.link)
        self.firmware = ArduPilotFirmware(
            suite=self.suite, link=self.link, dt=0.02
        )

    def step(self, count=1):
        for _ in range(count):
            self.link.advance()
            self.gcs.poll(self.simulator.time)
            readings = self.suite.read_all(self.simulator.state, self.simulator.time)
            command = self.firmware.update(readings, self.simulator.time)
            self.simulator.step(command)


@pytest.fixture()
def bench():
    return Bench()


class TestCommandHandling:
    def test_arm_via_gcs(self, bench):
        bench.step(10)
        bench.gcs.arm()
        bench.step(10)
        assert bench.firmware.armed
        assert bench.gcs.telemetry.armed  # heartbeat reflects the armed state

    def test_disarm_refused_then_allowed(self, bench):
        bench.step(5)
        bench.gcs.arm()
        bench.step(5)
        bench.gcs.disarm()
        bench.step(5)
        assert not bench.firmware.armed

    def test_guided_takeoff_command(self, bench):
        bench.step(10)
        bench.gcs.arm()
        bench.step(10)
        bench.gcs.command_takeoff(5.0)
        bench.step(400)
        assert bench.firmware.estimate.altitude > 3.0
        assert bench.firmware.operating_mode_label in ("takeoff", "guided")

    def test_set_mode_by_flavour_name(self, bench):
        bench.step(5)
        bench.gcs.set_mode("LOITER")
        bench.step(5)
        assert bench.firmware.flight_mode.value == "loiter"

    def test_unknown_mode_rejected_with_status_text(self, bench):
        bench.step(5)
        bench.gcs.set_mode("WARPDRIVE")
        bench.step(5)
        assert any(
            "rejected" in text for text in bench.gcs.telemetry.status_messages
        )

    def test_auto_mode_requires_a_mission(self, bench):
        bench.step(5)
        bench.gcs.arm()
        bench.step(5)
        bench.gcs.set_mode("AUTO")
        bench.step(5)
        assert bench.firmware.flight_mode.value != "auto"


class TestMissionUploadThroughFirmware:
    def test_upload_and_start(self, bench):
        bench.step(10)
        plan = MissionPlan(
            items=[
                mission_item(0, MavCommand.NAV_TAKEOFF, altitude=6.0),
                mission_item(1, MavCommand.NAV_LAND),
            ]
        )
        bench.gcs.begin_mission_upload(plan)
        bench.step(30)
        assert bench.gcs.mission_upload_complete
        bench.gcs.arm()
        bench.step(10)
        bench.gcs.set_mode("AUTO")
        bench.gcs.start_mission()
        bench.step(150)
        assert bench.firmware.estimate.altitude > 1.0
        # The mission executes: by now the vehicle is climbing (takeoff item)
        # or already past it (auto / land items of this two-item mission).
        assert bench.firmware.flight_mode.value in ("auto", "takeoff", "land")

    def test_telemetry_reports_mission_progress(self, bench):
        bench.step(10)
        plan = MissionPlan(
            items=[
                mission_item(0, MavCommand.NAV_TAKEOFF, altitude=4.0),
                mission_item(1, MavCommand.NAV_LAND),
            ]
        )
        bench.gcs.begin_mission_upload(plan)
        bench.step(30)
        bench.gcs.arm()
        bench.step(10)
        bench.gcs.start_mission()
        bench.step(600)
        assert 0 in bench.gcs.telemetry.reached_items


class TestModeTransitionsReporting:
    def test_label_history_matches_hinj(self, bench):
        bench.step(10)
        bench.gcs.arm()
        bench.step(10)
        bench.gcs.command_takeoff(4.0)
        bench.step(300)
        labels = [label for _, label in bench.firmware.label_history]
        assert labels[0] == "preflight"
        assert "takeoff" in labels
