"""Tests for the campaign submission API and the public surface."""

import json
import warnings

import pytest

import repro
from repro.engine.api import CampaignClient, CampaignRequest, build_cells
from repro.engine.grid import (
    STREAM_SCHEMA_VERSION,
    cell_fingerprint,
    validate_stream_record,
)


class TestCampaignRequest:
    def test_defaults_match_the_flagless_cli(self):
        from repro.engine.cli import build_cells as cli_build_cells
        from repro.engine.cli import build_parser

        args = build_parser().parse_args([])
        via_cli = cli_build_cells(args)
        via_request = CampaignRequest().cells()
        assert [c.cell_id for c in via_cli] == [c.cell_id for c in via_request]
        assert [cell_fingerprint(c) for c in via_cli] == [
            cell_fingerprint(c) for c in via_request
        ]

    def test_cli_flags_and_request_expand_identically(self):
        from repro.engine.cli import build_cells as cli_build_cells
        from repro.engine.cli import build_parser

        argv = [
            "--firmware", "ardupilot", "px4",
            "--workload", "convoy", "waypoint",
            "--strategy", "avis",
            "--budget", "8", "--fleet-size", "2",
            "--traffic-faults", "--separation-aware",
            "--burst-duration", "5",
            "--backend", "pool:2", "--stepper", "soa",
        ]
        args = build_parser().parse_args(argv)
        via_cli = cli_build_cells(args)
        request = CampaignRequest(
            firmwares=("ardupilot", "px4"),
            workloads=("convoy", "waypoint"),
            strategies=("avis",),
            budgets=(8.0,),
            fleet_size=2,
            traffic_faults=True,
            separation_aware=True,
            burst_durations=(5.0,),
            backend="pool:2",
            stepper="soa",
        )
        via_request = build_cells(request)
        assert [c.cell_id for c in via_cli] == [c.cell_id for c in via_request]
        assert [cell_fingerprint(c) for c in via_cli] == [
            cell_fingerprint(c) for c in via_request
        ]
        assert all(c.backend_spec == "pool:2" for c in via_request)

    def test_round_trips_through_json(self):
        request = CampaignRequest(
            strategies=("random",), budgets=(5.0, 10.0),
            vehicles=("firmware=px4,airframe=solo",),
            backend="remote:127.0.0.1:7800", cache="remote:127.0.0.1:7801",
            workers=2,
        )
        clone = CampaignRequest.from_json(request.to_json())
        assert clone == request
        # JSON spells tuples as lists; __post_init__ restores tuples.
        assert isinstance(clone.budgets, tuple)

    def test_from_dict_ignores_unknown_keys(self):
        payload = CampaignRequest(strategies=("random",)).to_dict()
        payload["from_the_future"] = {"anything": 1}
        request = CampaignRequest.from_dict(payload)
        assert request.strategies == ("random",)
        assert not hasattr(request, "from_the_future")

    def test_fabric_fields_never_enter_fingerprints(self):
        plain = CampaignRequest(strategies=("random",), budgets=(5.0,))
        fabricked = CampaignRequest(
            strategies=("random",), budgets=(5.0,),
            backend="pool:4", cache="remote:127.0.0.1:7801", workers=3,
        )
        assert [cell_fingerprint(c) for c in plain.cells()] == [
            cell_fingerprint(c) for c in fabricked.cells()
        ]

    @pytest.mark.parametrize("bad", [
        dict(firmwares=("betaflight",)),
        dict(strategies=("simulated-annealing",)),
        dict(workloads=("convoy",)),  # needs fleet_size >= 2
        dict(traffic_faults=True),  # needs a fleet workload
        dict(strategies=("random",), burst_durations=(5.0,)),
        dict(strategies=("random",), per_dequeue=4),
        dict(strategies=("random",), separation_aware=True),
        dict(stepper="rk4"),
    ])
    def test_invalid_matrices_are_rejected(self, bad):
        with pytest.raises(ValueError):
            build_cells(CampaignRequest(**bad))


class TestPublicSurface:
    def test_package_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_engine_all_resolves(self):
        import repro.engine as engine

        for name in engine.__all__:
            assert getattr(engine, name) is not None, name

    def test_lazy_exports_are_the_canonical_objects(self):
        from repro.engine.api import CampaignRequest as canonical

        assert repro.CampaignRequest is canonical
        with pytest.raises(AttributeError):
            repro.NoSuchExport

    def test_backend_instance_shim_warns_spec_does_not(self):
        from repro.engine.backends import SerialBackend
        from repro.engine.campaign import CampaignEngine

        with pytest.warns(DeprecationWarning, match="backend spec string"):
            CampaignEngine(backend=SerialBackend())
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            CampaignEngine(backend="serial")
            CampaignEngine()


class TestInProcessClient:
    def test_run_returns_schema_stamped_records(self, tmp_path):
        stream_path = tmp_path / "run.jsonl"
        seen = []
        records = CampaignClient().run(
            CampaignRequest(strategies=("random",), budgets=(3.0,), workers=1),
            stream_path=str(stream_path),
            on_record=seen.append,
        )
        assert len(records) == 1 and seen == records
        record = records[0]
        assert record["schema"] == STREAM_SCHEMA_VERSION
        assert record["simulations"] == 3
        assert validate_stream_record(record) == []
        streamed = json.loads(stream_path.read_text())
        assert streamed["fingerprint"] == record["fingerprint"]

    def test_submit_in_process_is_an_error(self):
        from repro.engine.api import ServiceError

        with pytest.raises(ServiceError):
            CampaignClient().submit(CampaignRequest())


class TestStreamSchema:
    def test_records_without_schema_are_version_one_and_valid(self):
        record = {
            "cell": "ardupilot/waypoint/random/5", "fingerprint": "ab" * 8,
            "firmware": "ardupilot", "workload": "waypoint",
            "strategy": "RandomInjection", "simulations": 5,
            "unsafe_scenarios": 0, "budget_spent": 5,
            "triggered_bugs": [],
        }
        assert validate_stream_record(record) == []

    def test_future_schema_versions_are_reported(self):
        record = {"schema": STREAM_SCHEMA_VERSION + 1, "cell": "x"}
        problems = validate_stream_record(record)
        assert any("schema" in problem for problem in problems)

    def test_resume_accepts_pre_schema_records(self, tmp_path):
        """--resume keeps working against PR-6-era (schema-less) streams."""
        from repro.engine.grid import (
            CampaignGrid,
            filter_completed,
            load_completed_cells,
        )

        request = CampaignRequest(
            strategies=("random",), budgets=(3.0,), workers=1
        )
        records = CampaignClient().run(request)
        legacy = dict(records[0])
        legacy.pop("schema")
        stream_path = tmp_path / "legacy.jsonl"
        stream_path.write_text(json.dumps(legacy) + "\n")

        cells = request.cells()
        completed = filter_completed(
            cells, load_completed_cells(str(stream_path))
        )
        assert set(completed) == {cells[0].cell_id}
        outcome = CampaignGrid(cells, max_workers=1).run(completed=completed)
        assert outcome.resumed_cells == 1 and not outcome.results
