"""Unit tests for the CI perf-regression gate (benchmarks/check_regression.py)."""

import importlib.util
import json
import sys
from pathlib import Path

_GATE_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_regression", _GATE_PATH)
check_regression_module = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_regression", check_regression_module)
_spec.loader.exec_module(check_regression_module)

check_regression = check_regression_module.check_regression
main = check_regression_module.main


def report(
    seconds=1.0,
    fleet2=2.0,
    traffic=2.5,
    burst=2.5,
    sabre=1.5,
    calibration=0.1,
    cpus=1,
    speedup2=1.0,
    sabre_speedup=1.0,
    adaptive_traffic=2.4,
    adaptive_burst=2.2,
    physics_rate=1000.0,
):
    return {
        "usable_cpus": cpus,
        "calibration_s": calibration,
        "seconds_per_simulation": seconds,
        "speedup_workers2": speedup2,
        "fleet_scaling": {
            "fleet2": {"seconds_per_simulation": fleet2},
        },
        "traffic": {
            "seconds_per_simulation": traffic,
            "seconds_per_simulation_adaptive": traffic / adaptive_traffic,
            "adaptive_speedup": adaptive_traffic,
        },
        "burst": {
            "seconds_per_simulation": burst,
            "seconds_per_simulation_adaptive": burst / adaptive_burst,
            "adaptive_speedup": adaptive_burst,
        },
        "sabre": {
            "seconds_per_simulation": sabre,
            "speedup_pool4": sabre_speedup,
        },
        "physics": {
            "fleet1": {"reference_steps_per_s": physics_rate},
            "fleet2": {
                "reference_steps_per_s": physics_rate * 0.6,
                "adaptive_steps_per_s": physics_rate * 1.5,
            },
        },
    }


class TestSecondsGate:
    def test_identical_reports_pass(self):
        failures, _ = check_regression(report(), report())
        assert failures == []

    def test_within_tolerance_passes(self):
        failures, _ = check_regression(report(seconds=1.0), report(seconds=1.2))
        assert failures == []

    def test_regression_beyond_tolerance_fails(self):
        failures, _ = check_regression(report(seconds=1.0), report(seconds=1.3))
        assert any("seconds_per_simulation" in failure for failure in failures)

    def test_fleet_axis_is_gated(self):
        failures, _ = check_regression(report(fleet2=1.0), report(fleet2=1.4))
        assert any("fleet_scaling.fleet2" in failure for failure in failures)

    def test_sabre_axis_is_gated(self):
        failures, _ = check_regression(report(sabre=1.0), report(sabre=1.4))
        assert any("sabre.seconds_per_simulation" in f for f in failures)

    def test_traffic_axis_is_gated(self):
        failures, _ = check_regression(report(traffic=1.0), report(traffic=1.4))
        assert any("traffic.seconds_per_simulation" in f for f in failures)

    def test_burst_axis_is_gated(self):
        failures, _ = check_regression(report(burst=1.0), report(burst=1.4))
        assert any("burst.seconds_per_simulation" in f for f in failures)

    def test_adaptive_seconds_are_gated_as_timing_axes(self):
        # seconds_per_simulation_adaptive regressing past tolerance
        # trips the gate even while the speedup ratio stays above 2x
        # (both steppers slowing down together is still a regression).
        slow = report(traffic=5.0)
        slow["traffic"]["seconds_per_simulation"] = report()["traffic"][
            "seconds_per_simulation"
        ]
        failures, _ = check_regression(report(), slow)
        assert any("traffic.seconds_per_simulation_adaptive" in f for f in failures)

    def test_baseline_without_burst_axis_still_passes(self):
        # Baselines committed before the burst axis existed must not
        # fail the gate when the current report carries the new field.
        old_baseline = report()
        del old_baseline["burst"]
        failures, _ = check_regression(old_baseline, report())
        assert failures == []

    def test_baseline_without_adaptive_or_physics_axes_still_passes(self):
        old_baseline = report()
        del old_baseline["physics"]
        del old_baseline["traffic"]["adaptive_speedup"]
        del old_baseline["traffic"]["seconds_per_simulation_adaptive"]
        failures, _ = check_regression(old_baseline, report())
        assert failures == []

    def test_missing_current_metric_fails(self):
        # An axis the baseline measures but the fresh report lacks is a
        # hard failure: a silently dropped benchmark would otherwise
        # read as a pass forever.
        current = report()
        del current["sabre"]
        failures, _ = check_regression(report(), current)
        assert any("sabre.seconds_per_simulation" in f for f in failures)
        assert any("missing from the current report" in f for f in failures)


class TestCalibrationScaling:
    def test_slower_runner_is_not_flagged(self):
        # The current machine is 2x slower overall (calibration doubled):
        # doubled campaign timings are expected, not a regression.
        failures, notes = check_regression(
            report(seconds=1.0, calibration=0.1),
            report(seconds=2.0, calibration=0.2, physics_rate=500.0),
        )
        assert failures == []
        assert any("scaled by 2.00x" in note for note in notes)

    def test_faster_hardware_cannot_mask_a_regression(self):
        # Calibration halved (machine 2x faster) but the campaign got
        # barely faster: relative to the machine, that is a regression.
        failures, _ = check_regression(
            report(seconds=1.0, calibration=0.2),
            report(seconds=0.9, calibration=0.1),
        )
        assert any("seconds_per_simulation" in failure for failure in failures)


class TestSpeedupGating:
    def test_single_core_skips_speedup_assertions(self):
        failures, notes = check_regression(
            report(), report(cpus=1, speedup2=0.5, sabre_speedup=0.5)
        )
        assert failures == []
        assert any("speedup assertions skipped" in note for note in notes)

    def test_multi_core_asserts_speedup_floor(self):
        failures, _ = check_regression(report(), report(cpus=4, speedup2=0.7))
        assert any("speedup_workers2" in failure for failure in failures)

    def test_multi_core_healthy_speedups_pass(self):
        failures, _ = check_regression(
            report(), report(cpus=4, speedup2=1.8, sabre_speedup=1.6)
        )
        assert failures == []


class TestAdaptiveFloors:
    def test_adaptive_speedup_below_two_x_fails_even_on_one_core(self):
        # The 2x adaptive floor compares two serial runs, so it is
        # asserted regardless of usable_cpus.
        failures, _ = check_regression(report(), report(cpus=1, adaptive_traffic=1.5))
        assert any("traffic.adaptive_speedup" in f for f in failures)
        assert any("1.50x is below the 2.00x floor" in f for f in failures)

    def test_burst_adaptive_floor_is_gated_too(self):
        failures, _ = check_regression(report(), report(adaptive_burst=1.9))
        assert any("burst.adaptive_speedup" in f for f in failures)

    def test_missing_adaptive_speedup_fails_when_baseline_has_it(self):
        current = report()
        del current["traffic"]["adaptive_speedup"]
        failures, _ = check_regression(report(), current)
        assert any(
            "traffic.adaptive_speedup" in f and "missing" in f for f in failures
        )

    def test_healthy_adaptive_speedups_pass(self):
        failures, notes = check_regression(
            report(), report(adaptive_traffic=2.3, adaptive_burst=2.1)
        )
        assert failures == []
        assert any("traffic.adaptive_speedup: 2.30x >= 2.00x" in n for n in notes)


class TestPhysicsFloors:
    def test_physics_rate_regression_fails(self):
        failures, _ = check_regression(
            report(physics_rate=1000.0), report(physics_rate=500.0)
        )
        assert any("physics.fleet1.reference_steps_per_s" in f for f in failures)

    def test_physics_rate_scales_with_calibration(self):
        # 2x slower machine: floor halves, so 550 steps/s against a
        # 1000 steps/s baseline still clears 1000 / 2 / 1.25 = 400.
        failures, _ = check_regression(
            report(physics_rate=1000.0, calibration=0.1),
            report(physics_rate=550.0, calibration=0.2, seconds=2.0),
        )
        assert not any("physics" in f for f in failures)

    def test_missing_physics_entry_fails(self):
        current = report()
        del current["physics"]["fleet2"]
        failures, _ = check_regression(report(), current)
        assert any("physics.fleet2" in f and "missing" in f for f in failures)

    def test_all_steppers_in_an_entry_are_gated(self):
        current = report()
        current["physics"]["fleet2"]["adaptive_steps_per_s"] = 100.0
        failures, _ = check_regression(report(), current)
        assert any("physics.fleet2.adaptive_steps_per_s" in f for f in failures)


class TestCli:
    def test_main_passes_on_committed_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(json.dumps(report()))
        current.write_text(json.dumps(report(seconds=1.1)))
        assert main(["--baseline", str(baseline), "--current", str(current)]) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_main_fails_on_regression(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(json.dumps(report(seconds=1.0)))
        current.write_text(json.dumps(report(seconds=2.0)))
        assert main(["--baseline", str(baseline), "--current", str(current)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_main_reports_unreadable_baseline(self, tmp_path, capsys):
        current = tmp_path / "current.json"
        current.write_text(json.dumps(report()))
        code = main(
            ["--baseline", str(tmp_path / "missing.json"), "--current", str(current)]
        )
        assert code == 2

    def test_tolerance_flag_widens_the_gate(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(json.dumps(report(seconds=1.0)))
        current.write_text(json.dumps(report(seconds=1.6)))
        args = ["--baseline", str(baseline), "--current", str(current)]
        assert main(args) == 1
        assert main(args + ["--tolerance", "0.75"]) == 0

    def test_committed_baseline_is_gate_clean(self):
        # The committed baseline must parse and pass the gate against
        # itself; comparing against a live BENCH_engine.json is CI's job
        # (a stale local artifact from another machine must not fail
        # plain `pytest`).
        repo_root = Path(__file__).resolve().parent.parent
        baseline = repo_root / "BENCH_baseline.json"
        assert baseline.exists(), "BENCH_baseline.json must be committed"
        assert main(["--current", str(baseline)]) == 0
