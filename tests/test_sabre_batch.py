"""Batched SABRE: dequeue-level parallel exploration must be bit-identical.

The campaign engine drives ``AvisStrategy`` through the batch protocol:
each transition dequeue expands into up to ``max_scenarios_per_dequeue``
independent candidates that are simulated concurrently, with feedback
(found-bug pruning, queue re-seeding) applied between rounds in the
sequential order.  These tests pin the PR 1 determinism contract for the
paper's headline strategy: the batched path reproduces the sequential
``explore()`` loop bit-for-bit -- same scenarios in the same order, same
budget trajectory, same pruning statistics, same found-bug set, same
cache keys -- at every budget, batch width, and fleet size.

The exhaustive matrix runs against the stub fault space (instant
"simulations"), real-simulator coverage runs a small budget end to end
through the ``"serial"`` and ``"pool:N"`` backend specs.
"""

import dataclasses
from types import SimpleNamespace

import pytest

from test_sabre_strategies import StubRunner, make_session, profiling_run

from repro.core.avis import Avis
from repro.core.config import RunConfiguration
from repro.core.runner import TestRunner
from repro.core.sabre import SabreSearch
from repro.core.session import BudgetAccount, ExplorationSession
from repro.core.strategies import AvisStrategy, BayesianFaultInjection
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.sensors.suite import iris_sensor_suite
from repro.workloads.fleet import MultiPadTakeoffLandWorkload


def make_fleet_session(budget_units=50.0, runner=None, fleet_size=2):
    """A stub session whose fault space is namespaced per vehicle."""
    runner = runner if runner is not None else StubRunner()
    runner.config = SimpleNamespace(fleet_size=fleet_size)
    return ExplorationSession(
        runner=runner,
        budget=BudgetAccount(total_units=budget_units),
        profiling_run=profiling_run(),
        suite=iris_sensor_suite(),
    )


def drive_batched(search: SabreSearch, batch_size: int) -> None:
    """Drive the proposal machine the way the campaign engine does:
    execute every proposed scenario, ingest results in proposal order."""
    session = search.session
    runner = session.runner
    while True:
        batch = search.propose_batch(batch_size)
        if not batch:
            return
        results = [runner.run(scenario) for scenario in batch]
        for scenario, result in zip(batch, results):
            session.ingest_result(scenario, result)


def signature(session: ExplorationSession):
    return [
        (str(result.scenario), result.found_unsafe_condition)
        for result in session.results
    ]


class TestStubBitIdentity:
    """The exhaustive (budget x per-dequeue x batch-width) matrix."""

    @pytest.mark.parametrize("budget", [4.0, 16.0, 64.0])
    @pytest.mark.parametrize("per_dequeue", [1, 4])
    @pytest.mark.parametrize("batch_size", [1, 8])
    def test_batched_matches_sequential(self, budget, per_dequeue, batch_size):
        sequential_session = make_session(budget_units=budget, runner=StubRunner())
        sequential = SabreSearch(
            sequential_session, max_scenarios_per_dequeue=per_dequeue
        )
        sequential.run()

        batched_session = make_session(budget_units=budget, runner=StubRunner())
        batched = SabreSearch(batched_session, max_scenarios_per_dequeue=per_dequeue)
        drive_batched(batched, batch_size)

        assert signature(batched_session) == signature(sequential_session)
        assert dataclasses.astuple(batched.report) == dataclasses.astuple(
            sequential.report
        )
        assert (
            batched_session.budget.spent_units
            == sequential_session.budget.spent_units
        )
        assert (
            batched_session.budget.simulations
            == sequential_session.budget.simulations
        )
        seq_stats = sequential.pruner.statistics
        bat_stats = batched.pruner.statistics
        assert (
            bat_stats.found_bug_pruned,
            bat_stats.symmetry_pruned,
            bat_stats.duplicate_pruned,
        ) == (
            seq_stats.found_bug_pruned,
            seq_stats.symmetry_pruned,
            seq_stats.duplicate_pruned,
        )

    @pytest.mark.parametrize("budget", [4.0, 16.0, 64.0])
    def test_fleet_fault_space_matches_sequential(self, budget):
        """fleet_size=2: the per-vehicle namespaced fault space batches
        identically (vehicle-0 GPS failures stay the unsafe trigger)."""
        sequential_session = make_fleet_session(budget_units=budget)
        sequential = SabreSearch(sequential_session, max_scenarios_per_dequeue=4)
        sequential.run()

        batched_session = make_fleet_session(budget_units=budget)
        batched = SabreSearch(batched_session, max_scenarios_per_dequeue=4)
        drive_batched(batched, 8)

        assert signature(batched_session) == signature(sequential_session)
        assert dataclasses.astuple(batched.report) == dataclasses.astuple(
            sequential.report
        )

    def test_unbounded_dequeue_matches_sequential(self):
        sequential_session = make_session(budget_units=30.0, runner=StubRunner())
        SabreSearch(sequential_session, max_scenarios_per_dequeue=None).run()
        batched_session = make_session(budget_units=30.0, runner=StubRunner())
        drive_batched(
            SabreSearch(batched_session, max_scenarios_per_dequeue=None), 8
        )
        assert signature(batched_session) == signature(sequential_session)

    def test_found_bug_dependent_candidates_wait_for_feedback(self):
        """A strict superset of an in-flight scenario must not be proposed
        in the same round -- its admission depends on that outcome."""
        session = make_session(budget_units=50.0, runner=StubRunner())
        search = SabreSearch(session, max_scenarios_per_dequeue=None)
        batch = search.propose_batch(1000)
        fault_sets = [frozenset(scenario) for scenario in batch]
        for index, faults in enumerate(fault_sets):
            for earlier in fault_sets[:index]:
                assert not earlier < faults, (
                    "batch contains a strict superset of an earlier "
                    "in-flight scenario"
                )


class TestBatchedBfi:
    def test_bfi_batched_matches_sequential(self):
        sequential_session = make_session(budget_units=12.0, runner=StubRunner())
        sequential = BayesianFaultInjection(candidate_granularity_s=1.0)
        sequential.explore(sequential_session)

        batched_session = make_session(budget_units=12.0, runner=StubRunner())
        batched = BayesianFaultInjection(candidate_granularity_s=1.0)
        runner = batched_session.runner
        while True:
            batch = batched.propose_batch(batched_session, 8)
            if not batch:
                break
            for scenario in batch:
                batched_session.ingest_result(scenario, runner.run(scenario))
                batched.simulations_run += 1

        assert signature(batched_session) == signature(sequential_session)
        assert (
            batched_session.budget.spent_units
            == sequential_session.budget.spent_units
        )
        assert batched.labels_issued == sequential.labels_issued
        assert batched.simulations_run == sequential.simulations_run

    def test_bfi_online_learning_defers_model_updates(self):
        """With learn_online the model evolves with every outcome, so a
        round closes per in-flight scenario -- and still matches the
        sequential loop's trajectory exactly."""
        def run(strategy, session, batched):
            if not batched:
                strategy.explore(session)
                return
            runner = session.runner
            while True:
                batch = strategy.propose_batch(session, 8)
                if not batch:
                    return
                assert len(batch) == 1  # feedback barrier per scenario
                for scenario in batch:
                    session.ingest_result(scenario, runner.run(scenario))
                    strategy.simulations_run += 1

        sequential_session = make_session(budget_units=12.0, runner=StubRunner())
        sequential = BayesianFaultInjection(
            candidate_granularity_s=1.0, learn_online=True
        )
        run(sequential, sequential_session, batched=False)

        batched_session = make_session(budget_units=12.0, runner=StubRunner())
        batched = BayesianFaultInjection(
            candidate_granularity_s=1.0, learn_online=True
        )
        run(batched, batched_session, batched=True)

        assert signature(batched_session) == signature(sequential_session)
        assert batched.labels_issued == sequential.labels_issued
        assert (
            batched_session.budget.spent_units
            == sequential_session.budget.spent_units
        )


class TestBatchSupport:
    def test_avis_strategy_has_batch_support(self):
        # Regression: the paper's headline strategy must never fall back
        # to the sequential path in the parallel campaign engine again.
        strategy = AvisStrategy()
        assert strategy.has_batch_support
        assert strategy.supports_batching

    def test_plain_bfi_has_batch_support(self):
        assert BayesianFaultInjection().has_batch_support

    def test_strategy_reuse_restarts_search(self):
        """A strategy instance reused for a second campaign restarts its
        transition queue instead of resuming the first campaign's."""
        strategy = AvisStrategy(max_scenarios_per_dequeue=4)
        first = make_session(budget_units=6.0, runner=StubRunner())
        second = make_session(budget_units=6.0, runner=StubRunner())
        for session in (first, second):
            runner = session.runner
            while True:
                batch = strategy.propose_batch(session, 8)
                if not batch:
                    break
                for scenario in batch:
                    session.ingest_result(scenario, runner.run(scenario))
        assert signature(first) == signature(second)


class TestEndToEnd:
    """Real simulator, real engine, real backends."""

    BUDGET = 6.0

    def _sequential_reference(self, avis, per_dequeue, cache=None):
        session = ExplorationSession(
            runner=TestRunner(avis.config, monitor=avis.monitor),
            budget=BudgetAccount(total_units=self.BUDGET),
            profiling_run=avis.profiling_results[0],
            suite=iris_sensor_suite(noise_seed=avis.config.noise_seed),
            cache=cache,
        )
        AvisStrategy(max_scenarios_per_dequeue=per_dequeue).explore(session)
        return session

    @pytest.mark.parametrize("per_dequeue", [1, 4])
    def test_pool_campaign_matches_sequential(self, short_auto_config, per_dequeue):
        avis = Avis(
            short_auto_config,
            profiling_runs=2,
            budget_units=self.BUDGET,
            backend="pool:4",
        )
        try:
            avis.profile()
            batched = avis.check(
                strategy=AvisStrategy(max_scenarios_per_dequeue=per_dequeue)
            )

            reference = Avis(
                short_auto_config, profiling_runs=2, budget_units=self.BUDGET
            )
            reference.profile()
            sequential = self._sequential_reference(
                reference, per_dequeue, cache=reference.cache
            )

            assert [str(r.scenario) for r in batched.results] == [
                str(r.scenario) for r in sequential.results
            ]
            assert [r.found_unsafe_condition for r in batched.results] == [
                r.found_unsafe_condition for r in sequential.results
            ]
            assert batched.simulations == sequential.budget.simulations
            assert batched.budget_spent == pytest.approx(
                sequential.budget.spent_units
            )
            # The found-bug set and the Table IV per-mode counts agree.
            sequential_bugs = set()
            for result in sequential.unsafe_results:
                sequential_bugs.update(result.triggered_bugs)
            assert batched.triggered_bug_ids == sequential_bugs
            # Cache keys are content-addressed, so equality states that
            # the very same (config, scenario) pairs were simulated.
            assert avis.cache.keys() == reference.cache.keys()
            # The batched path really batched (several scenarios per
            # round, executed through the backend).
            stats = avis.engine.last_stats
            assert stats["rounds"] >= 1
            assert stats["proposed"] == batched.simulations
            if per_dequeue > 1:
                assert stats["rounds"] < batched.simulations
        finally:
            avis.engine.close()

    def test_fleet_pool_campaign_matches_serial(self):
        config = RunConfiguration(
            firmware_class=ArduPilotFirmware,
            workload_factory=lambda: MultiPadTakeoffLandWorkload(fleet_size=2),
            fleet_size=2,
            max_sim_time_s=160.0,
        )

        def campaign(backend):
            avis = Avis(
                config, profiling_runs=2, budget_units=4.0, backend=backend
            )
            avis.profile()
            result = avis.check(
                strategy=AvisStrategy(max_scenarios_per_dequeue=4)
            )
            avis.engine.close()
            return result, avis.cache.keys()

        serial_result, serial_keys = campaign("serial")
        pool_result, pool_keys = campaign("pool:4")

        assert [str(r.scenario) for r in pool_result.results] == [
            str(r.scenario) for r in serial_result.results
        ]
        assert pool_result.per_mode_counts == serial_result.per_mode_counts
        assert pool_result.triggered_bug_ids == serial_result.triggered_bug_ids
        assert pool_result.budget_spent == serial_result.budget_spent
        assert pool_keys == serial_keys

    def test_engine_reports_per_mode_counts_identically(self, short_auto_config):
        """per_mode_counts is derived from result order; one more guard
        that batched recording preserves it."""
        avis = Avis(short_auto_config, profiling_runs=2, budget_units=self.BUDGET)
        avis.profile()
        batched = avis.check(strategy=AvisStrategy(max_scenarios_per_dequeue=4))
        reference = Avis(
            short_auto_config, profiling_runs=2, budget_units=self.BUDGET
        )
        reference.profile()
        sequential = self._sequential_reference(reference, 4)
        expected = {"takeoff": 0, "manual": 0, "waypoint": 0, "land": 0}
        from repro.core.monitor import mode_category_of

        for result in sequential.results:
            if result.found_unsafe_condition:
                category = mode_category_of(result.unsafe_conditions[0])
                expected[category] = expected.get(category, 0) + 1
        assert batched.per_mode_counts == expected
