"""Tests for the campaign service daemon and its clients."""

import json
import threading

import pytest

from repro.engine.api import CampaignClient, CampaignRequest, ServiceError
from repro.engine.grid import (
    STREAM_SCHEMA_VERSION,
    load_completed_cells,
    validate_campaign_stream,
)
from repro.engine.service import CampaignService
from repro.obs.report import main as obs_main


def _tiny_request(budget=3.0):
    return CampaignRequest(
        strategies=("random",), budgets=(budget,), workers=1
    )


class TestCampaignService:
    def test_two_clients_complete_both_jobs(self, tmp_path):
        stream_path = tmp_path / "service.jsonl"
        with CampaignService(stream_path=str(stream_path)) as service:
            first = CampaignClient(service.endpoint)
            second = CampaignClient(service.endpoint)
            job_a = first.submit(_tiny_request(3.0))
            job_b = second.submit(_tiny_request(4.0))
            assert job_a != job_b

            collected = {}

            def follow(client, job_id):
                collected[job_id] = list(client.watch(job_id, timeout=300.0))

            threads = [
                threading.Thread(target=follow, args=(first, job_a)),
                threading.Thread(target=follow, args=(second, job_b)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300.0)
            assert collected[job_a][0]["simulations"] == 3
            assert collected[job_b][0]["simulations"] == 4
            assert all(
                record["schema"] == STREAM_SCHEMA_VERSION
                for records in collected.values()
                for record in records
            )

            # FIFO: the first-submitted job finished no later than the
            # second started producing.
            status = first.status()
            rows = {row["job"]: row for row in status["jobs"]}
            assert rows[job_a]["state"] == "done"
            assert rows[job_b]["state"] == "done"
            assert rows[job_a]["finished_at"] <= rows[job_b]["finished_at"]

            single = second.status(job_a)
            assert single["job"]["records"] == 1
            assert single["summary"]["totals"]["campaigns"] == 1

        # The server-side stream holds both jobs' records and passes
        # the stream validator -- service records ARE stream records.
        assert len(stream_path.read_text().splitlines()) == 2
        assert validate_campaign_stream(str(stream_path)) == []

    def test_streamed_records_validate_through_obs_report(
        self, tmp_path, capsys
    ):
        stream_path = tmp_path / "service.jsonl"
        with CampaignService(stream_path=str(stream_path)) as service:
            CampaignClient(service.endpoint).run(_tiny_request())
        assert obs_main(["report", "--validate", str(stream_path)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_service_stream_resumes_a_grid(self, tmp_path):
        """A service-streamed file is --resume material for the CLI."""
        stream_path = tmp_path / "service.jsonl"
        request = _tiny_request()
        with CampaignService(stream_path=str(stream_path)) as service:
            CampaignClient(service.endpoint).run(request)
        from repro.engine.grid import CampaignGrid, filter_completed

        cells = request.cells()
        completed = filter_completed(
            cells, load_completed_cells(str(stream_path))
        )
        assert set(completed) == {cells[0].cell_id}
        outcome = CampaignGrid(cells, max_workers=1).run(completed=completed)
        assert outcome.resumed_cells == 1
        assert not outcome.results  # nothing re-ran

    def test_malformed_requests_are_rejected_at_submit(self):
        with CampaignService() as service:
            client = CampaignClient(service.endpoint)
            with pytest.raises(ServiceError):
                client.submit(
                    CampaignRequest(strategies=("not-a-strategy",))
                )
            with pytest.raises(ServiceError):
                client.submit(CampaignRequest(traffic_faults=True))
            # The daemon survives rejections and still runs real work.
            records = client.run(_tiny_request())
            assert len(records) == 1

    def test_unknown_job_and_op_report_errors(self):
        with CampaignService() as service:
            client = CampaignClient(service.endpoint)
            with pytest.raises(ServiceError):
                client.status("job-999999")
            with pytest.raises(ServiceError):
                list(client.watch("job-999999"))

    def test_max_jobs_stops_the_service(self):
        service = CampaignService(max_jobs=1).start()
        try:
            records = CampaignClient(service.endpoint).run(_tiny_request())
            assert len(records) == 1
            assert service._stopping.wait(timeout=30.0)
        finally:
            service.close()

    def test_failed_job_reports_failure(self, monkeypatch):
        import repro.engine.service as service_module

        def explode(request, on_record=None):
            raise RuntimeError("sharding exploded")

        monkeypatch.setattr(service_module, "run_campaign", explode)
        with CampaignService() as service:
            client = CampaignClient(service.endpoint)
            job_id = client.submit(_tiny_request())
            with pytest.raises(ServiceError, match="sharding exploded"):
                list(client.watch(job_id, timeout=60.0))
            row = client.status(job_id)["job"]
            assert row["state"] == "failed"


class TestServiceCli:
    def test_submit_and_status_against_live_service(self, tmp_path, capsys):
        from repro.engine.cli import main

        stream_path = tmp_path / "client.jsonl"
        with CampaignService() as service:
            rc = main([
                "submit", "--address", service.endpoint,
                "--strategy", "random", "--budget", "3",
                "--workers", "1", "--quiet",
                "--stream", str(stream_path),
            ])
            assert rc == 0
            out = capsys.readouterr().out
            payload = json.loads(out)
            assert payload["job"] == "job-000001"
            assert payload["records"][0]["simulations"] == 3

            rc = main(["status", "--address", service.endpoint])
            assert rc == 0
            table = json.loads(capsys.readouterr().out)
            assert table["jobs"][0]["state"] == "done"
        assert validate_campaign_stream(str(stream_path)) == []

    def test_submit_no_wait_prints_job_id(self, capsys):
        from repro.engine.cli import main

        with CampaignService(max_jobs=1) as service:
            rc = main([
                "submit", "--address", service.endpoint,
                "--strategy", "random", "--budget", "3",
                "--workers", "1", "--no-wait", "--quiet",
            ])
            assert rc == 0
            assert capsys.readouterr().out.strip() == "job-000001"
            # Let the daemon drain the job before closing.
            assert service._stopping.wait(timeout=300.0)

    def test_submit_reports_connection_failure(self, capsys):
        from repro.engine.cli import main

        rc = main([
            "submit", "--address", "127.0.0.1:9",
            "--strategy", "random", "--budget", "3",
        ])
        assert rc == 1
        assert "submit failed" in capsys.readouterr().err
