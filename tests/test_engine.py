"""Tests for the parallel campaign engine (backends, cache, grid)."""

import json

import pytest

from conftest import make_run_result

from repro.core.avis import Avis
from repro.core.strategies import (
    DepthFirstSearch,
    RandomInjection,
    SearchStrategy,
    StratifiedBFI,
)
from repro.core.strategies.avis_strategy import AvisStrategy
from repro.engine.cache import ResultCache, config_fingerprint, scenario_key
from repro.engine.grid import CampaignGrid, GridCell
from repro.hinj.faults import FaultScenario, FaultSpec
from repro.sensors.base import SensorId, SensorType


class TestBatchProtocol:
    def test_default_propose_batch_is_unsupported(self):
        class Sequential(SearchStrategy):
            def explore(self, session):
                pass

        strategy = Sequential()
        assert not strategy.supports_batching
        assert strategy.propose_batch(None, 4) is None

    def test_batchable_strategies_advertise_support(self):
        assert RandomInjection().supports_batching
        assert DepthFirstSearch().supports_batching
        assert StratifiedBFI().supports_batching
        # The paper's headline strategy batches too (dequeue-level
        # parallel expansion); see tests/test_sabre_batch.py.
        assert AvisStrategy().supports_batching

    def test_depth_first_batches_follow_enumeration_order(self, waypoint_avis):
        from repro.core.runner import TestRunner
        from repro.core.session import BudgetAccount, ExplorationSession

        session = ExplorationSession(
            runner=TestRunner(waypoint_avis.config),
            budget=BudgetAccount(total_units=100.0),
            profiling_run=waypoint_avis.profiling_results[0],
        )
        strategy = DepthFirstSearch()
        first = strategy.propose_batch(session, 3)
        second = strategy.propose_batch(session, 3)
        expected = []
        for scenario in DepthFirstSearch.enumerate_scenarios(
            session.sensor_ids, strategy._times(session)
        ):
            if not scenario.is_empty and scenario not in expected:
                expected.append(scenario)
            if len(expected) >= 6:
                break
        assert first + second == expected


class TestSequentialEquivalence:
    """The engine's batched path must match the strategies' own
    sequential explore() loops -- scenarios, budget trajectory, and all."""

    def _sequential_reference(self, avis, strategy, budget_units):
        from repro.core.runner import TestRunner
        from repro.core.session import BudgetAccount, ExplorationSession
        from repro.sensors.suite import iris_sensor_suite

        session = ExplorationSession(
            runner=TestRunner(avis.config, monitor=avis.monitor),
            budget=BudgetAccount(total_units=budget_units),
            profiling_run=avis.profiling_results[0],
            suite=iris_sensor_suite(noise_seed=avis.config.noise_seed),
        )
        strategy.explore(session)
        return session

    @pytest.mark.parametrize("budget", [3.0, 5.0])
    def test_stratified_bfi_batched_matches_sequential(
        self, short_auto_config, budget
    ):
        # The label/simulate interleaving makes StratifiedBFI the
        # sensitive case: labelling ahead of the simulations must not
        # shift where the budget runs out.
        avis = Avis(short_auto_config, profiling_runs=2, budget_units=budget)
        avis.profile()
        batched = avis.check(strategy=StratifiedBFI())
        reference = self._sequential_reference(avis, StratifiedBFI(), budget)
        assert batched.simulations == len(reference.results)
        assert [r.scenario for r in batched.results] == [
            r.scenario for r in reference.results
        ]
        assert batched.budget_spent == pytest.approx(
            reference.budget.spent_units
        )
        assert batched.labels == reference.budget.labels

    def test_strategy_reuse_across_campaigns_restarts(self, waypoint_avis):
        # A strategy instance reused for a second campaign must restart
        # its enumeration, not resume the first campaign's cursor.
        strategy = DepthFirstSearch()
        first = waypoint_avis.check(strategy=strategy, budget_units=2)
        second = waypoint_avis.check(strategy=strategy, budget_units=2)
        assert [r.scenario for r in first.results] == [
            r.scenario for r in second.results
        ]


class TestResultCache:
    def _scenario(self, time=2.0):
        return FaultScenario([FaultSpec(SensorId(SensorType.GPS, 0), time)])

    def test_keys_are_content_addressed(self, short_auto_config):
        key_a = scenario_key(short_auto_config, "auto", self._scenario())
        key_b = scenario_key(short_auto_config, "auto", self._scenario())
        key_c = scenario_key(short_auto_config, "auto", self._scenario(time=3.0))
        key_d = scenario_key(
            short_auto_config.with_noise_seed(99), "auto", self._scenario()
        )
        assert key_a == key_b
        assert key_a != key_c
        assert key_a != key_d
        assert "noise_seed=0" in config_fingerprint(short_auto_config, "auto")

    def test_workload_fingerprint_includes_parameters(self):
        from repro.core.config import RunConfiguration
        from repro.engine.cache import workload_fingerprint
        from repro.workloads.builtin import AutoWorkload

        def cfg(altitude):
            return RunConfiguration(
                workload_factory=lambda: AutoWorkload(altitude=altitude)
            )

        # Same display name, different parameters: must not collide.
        assert workload_fingerprint(cfg(8.0)) != workload_fingerprint(cfg(12.0))
        assert workload_fingerprint(cfg(8.0)) == workload_fingerprint(cfg(8.0))

    def test_hit_and_miss_counters(self, short_auto_config):
        cache = ResultCache()
        key = scenario_key(short_auto_config, "auto", self._scenario())
        assert cache.get(key) is None
        assert (cache.stats["hits"], cache.stats["misses"], cache.stats["entries"]) == (0, 1, 0)
        result = make_run_result()
        cache.put(key, result)
        assert key in cache
        assert cache.get(key) is result
        assert (cache.stats["hits"], cache.stats["misses"], cache.stats["entries"]) == (1, 1, 1)

    def test_disk_round_trip(self, tmp_path, short_auto_config):
        key = scenario_key(short_auto_config, "auto", self._scenario())
        writer = ResultCache(directory=str(tmp_path))
        writer.put(key, make_run_result(triggered_bugs=["APM-0001"]))
        reader = ResultCache(directory=str(tmp_path))
        restored = reader.get(key)
        assert restored is not None
        assert restored.triggered_bugs == ["APM-0001"]
        assert reader.hits == 1


class TestCacheGc:
    def _fill(self, cache, count):
        for index in range(count):
            cache.put(f"key{index:02d}", make_run_result())

    def _disk_entries(self, tmp_path):
        return sorted(p.name for p in tmp_path.iterdir() if p.suffix == ".pkl")

    def test_max_entries_caps_directory(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path), max_entries=3)
        self._fill(cache, 5)
        assert len(self._disk_entries(tmp_path)) == 3
        assert cache.evictions == 2

    def test_eviction_is_least_recently_used(self, tmp_path):
        import os
        import time as time_module

        # Stage three entries with mtimes firmly in the past, in a known
        # LRU order, then let a bounded cache's next put trigger the GC.
        staging = ResultCache(directory=str(tmp_path))
        self._fill(staging, 3)
        base = time_module.time() - 1000.0
        for index in range(3):
            os.utime(
                tmp_path / f"key{index:02d}.pkl", (base + index, base + index)
            )
        bounded = ResultCache(directory=str(tmp_path), max_entries=2)
        bounded.put("fresh", make_run_result())
        assert self._disk_entries(tmp_path) == ["fresh.pkl", "key02.pkl"]
        assert bounded.evictions == 2
        # Evicted entries are gone for lookups too.
        assert bounded.get("key00") is None

    def test_max_bytes_caps_directory_size(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path), max_bytes=1)
        self._fill(cache, 3)
        # Every put over the cap evicts down to at most one entry (the
        # newest write always survives).
        assert len(self._disk_entries(tmp_path)) <= 1
        assert cache.evictions >= 2

    def test_unbounded_by_default(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        self._fill(cache, 5)
        assert len(self._disk_entries(tmp_path)) == 5
        assert cache.evictions == 0

    def test_version_stamp_invalidates_stale_entries(self, tmp_path):
        from repro.engine.cache import bug_registry_stamp

        writer = ResultCache(directory=str(tmp_path))
        self._fill(writer, 2)
        stamp_file = tmp_path / ResultCache.VERSION_FILENAME
        assert stamp_file.read_text().strip() == bug_registry_stamp()

        # Same registry: entries survive a reopen.
        same = ResultCache(directory=str(tmp_path))
        assert same.invalidated == 0
        assert len(self._disk_entries(tmp_path)) == 2

        # A stamp from a different bug registry: entries are discarded.
        stamp_file.write_text("0" * 64 + "\n")
        reopened = ResultCache(directory=str(tmp_path))
        assert reopened.invalidated == 2
        assert self._disk_entries(tmp_path) == []
        assert stamp_file.read_text().strip() == bug_registry_stamp()

    def test_unstamped_directory_with_entries_is_purged(self, tmp_path):
        # A pre-stamp cache directory gives no way to tell which bug
        # registry produced its entries; they must not be served.
        writer = ResultCache(directory=str(tmp_path))
        self._fill(writer, 2)
        (tmp_path / ResultCache.VERSION_FILENAME).unlink()
        reopened = ResultCache(directory=str(tmp_path))
        assert reopened.invalidated == 2
        assert self._disk_entries(tmp_path) == []

    def test_memory_hits_refresh_lru_order(self, tmp_path):
        import os
        import time as time_module

        cache = ResultCache(directory=str(tmp_path), max_entries=2)
        cache.put("key-a", make_run_result())
        cache.put("key-b", make_run_result())
        base = time_module.time() - 1000.0
        os.utime(tmp_path / "key-a.pkl", (base, base))
        os.utime(tmp_path / "key-b.pkl", (base + 1, base + 1))
        # A memory-layer hit on the oldest entry must refresh its mtime...
        assert cache.get("key-a") is not None
        # ...so the next eviction removes key-b, not the hot key-a.
        cache.put("key-c", make_run_result())
        names = self._disk_entries(tmp_path)
        assert "key-a.pkl" in names
        assert "key-b.pkl" not in names


class TestCacheWriterSafety:
    """A shared cache directory must survive crashed and racing writers."""

    def test_orphan_tmp_spools_are_swept_at_open(self, tmp_path):
        writer = ResultCache(directory=str(tmp_path))
        writer.put("key-a", make_run_result())
        # A writer that died mid-put leaks only its mkstemp spool.
        (tmp_path / "spoolXYZ.tmp").write_bytes(b"half a pickle")
        reopened = ResultCache(directory=str(tmp_path))
        assert not list(tmp_path.glob("*.tmp"))
        assert reopened.get("key-a") is not None

    def test_torn_entry_is_a_miss_and_unlinked(self, tmp_path):
        writer = ResultCache(directory=str(tmp_path))
        writer.put("key-a", make_run_result())
        # Simulate a torn .pkl from a crashed non-atomic writer (an
        # older engine): truncate the entry mid-pickle.
        entry = tmp_path / "key-a.pkl"
        entry.write_bytes(entry.read_bytes()[:10])
        reader = ResultCache(directory=str(tmp_path))
        assert reader.get("key-a") is None
        assert reader.corrupt == 1
        assert reader.stats["corrupt"] == 1
        assert not entry.exists()  # phantom entry unlinked...
        assert "key-a" not in reader
        # ...and the next put rewrites it cleanly.
        reader.put("key-a", make_run_result())
        assert reader.get("key-a") is not None

    def test_concurrent_writers_never_tear_entries(self, tmp_path):
        import threading

        result = make_run_result(triggered_bugs=["APM-0001"])
        errors = []

        def hammer(worker):
            try:
                cache = ResultCache(directory=str(tmp_path))
                for round_index in range(20):
                    cache.put("contested", result)
                    got = cache.get(f"probe-{worker}-{round_index}")
                    assert got is None
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert not list(tmp_path.glob("*.tmp"))
        # A fresh reader sees one intact winning write, not a torn file.
        reader = ResultCache(directory=str(tmp_path))
        restored = reader.get("contested")
        assert restored is not None
        assert restored.triggered_bugs == ["APM-0001"]
        assert reader.corrupt == 0


class TestBackendDeterminism:
    def _campaign(self, config, backend, rng_seed=5, budget=5.0):
        avis = Avis(config, profiling_runs=2, budget_units=budget, backend=backend)
        avis.profile()
        return avis.check(strategy=RandomInjection(rng_seed=rng_seed))

    def test_process_pool_matches_serial(self, short_auto_config):
        serial = self._campaign(short_auto_config, "serial")
        pooled = self._campaign(short_auto_config, "pool:4")
        assert pooled.simulations == serial.simulations
        assert pooled.unsafe_scenario_count == serial.unsafe_scenario_count
        assert pooled.triggered_bug_ids == serial.triggered_bug_ids
        # Not just the counts: the same scenarios, in the same order,
        # with the same per-run verdicts.
        assert [r.scenario for r in pooled.results] == [
            r.scenario for r in serial.results
        ]
        assert [len(r.unsafe_conditions) for r in pooled.results] == [
            len(r.unsafe_conditions) for r in serial.results
        ]

    def test_cache_replays_identical_campaign(self, short_auto_config):
        avis = Avis(short_auto_config, profiling_runs=2, budget_units=4.0)
        avis.profile()
        cold = avis.check(strategy=RandomInjection(rng_seed=3))
        assert avis.cache.misses >= cold.simulations
        warm = avis.check(strategy=RandomInjection(rng_seed=3))
        assert avis.cache.hits >= warm.simulations
        # A hit still charges budget, so the campaigns are identical.
        assert warm.simulations == cold.simulations
        assert warm.unsafe_scenario_count == cold.unsafe_scenario_count
        assert [r.scenario for r in warm.results] == [
            r.scenario for r in cold.results
        ]


class TestCampaignGrid:
    def test_grid_runs_matrix_and_summarises(self, short_auto_config, tmp_path):
        cells = [
            GridCell(
                cell_id=f"ardupilot/auto/random-{seed}",
                config=short_auto_config,
                strategy_factory=lambda seed=seed: RandomInjection(rng_seed=seed),
                budget_units=2.0,
            )
            for seed in (1, 2)
        ]
        seen = []
        outcome = CampaignGrid(cells, max_workers=1).run(
            on_progress=lambda cell_id, campaign: seen.append(cell_id)
        )
        assert sorted(seen) == sorted(c.cell_id for c in cells)
        assert list(outcome.results) == [c.cell_id for c in cells]
        summary = outcome.summary()
        json.dumps(summary)  # must be JSON-serialisable
        assert summary["totals"]["campaigns"] == 2
        assert all(c["simulations"] <= 2 for c in summary["campaigns"])

    def test_grid_rejects_duplicate_cell_ids(self, short_auto_config):
        cell = GridCell(
            cell_id="dup", config=short_auto_config, strategy_factory=RandomInjection
        )
        with pytest.raises(ValueError):
            CampaignGrid([cell, cell])


class TestGridResume:
    def _cells(self, config, seeds):
        return [
            GridCell(
                cell_id=f"ardupilot/auto/random-{seed}",
                config=config,
                strategy_factory=lambda seed=seed: RandomInjection(rng_seed=seed),
                budget_units=2.0,
            )
            for seed in seeds
        ]

    def test_stream_and_resume_skip_completed_cells(self, short_auto_config, tmp_path):
        from repro.engine.grid import load_completed_cells

        stream = tmp_path / "grid.jsonl"
        first = CampaignGrid(
            self._cells(short_auto_config, (1, 2)), max_workers=1
        ).run(stream_path=str(stream))
        assert len(first.results) == 2
        completed = load_completed_cells(str(stream))
        assert sorted(completed) == sorted(first.results)

        # Resume with one extra cell: only the new cell executes, the
        # summary still covers the whole matrix.
        executed = []
        outcome = CampaignGrid(
            self._cells(short_auto_config, (1, 2, 3)), max_workers=1
        ).run(
            on_progress=lambda cell_id, campaign: executed.append(cell_id),
            stream_path=str(stream),
            completed=completed,
        )
        assert executed == ["ardupilot/auto/random-3"]
        assert list(outcome.results) == ["ardupilot/auto/random-3"]
        summary = outcome.summary()
        assert summary["totals"]["campaigns"] == 3
        assert summary["totals"]["resumed"] == 2
        json.dumps(summary)  # must stay JSON-serialisable
        # The stream now records all three cells for a later resume.
        assert len(load_completed_cells(str(stream))) == 3

    def test_resume_reruns_cells_with_changed_configuration(
        self, short_auto_config, short_waypoint_config, tmp_path
    ):
        from repro.engine.grid import load_completed_cells

        stream = tmp_path / "grid.jsonl"
        CampaignGrid(self._cells(short_auto_config, (1,)), max_workers=1).run(
            stream_path=str(stream)
        )
        completed = load_completed_cells(str(stream))
        # Same cell id, different configuration: the streamed result must
        # not be trusted and the cell reruns.
        changed = self._cells(short_waypoint_config, (1,))
        outcome = CampaignGrid(changed, max_workers=1).run(completed=completed)
        assert list(outcome.results) == [changed[0].cell_id]
        assert outcome.resumed_cells == 0

    def test_load_completed_cells_skips_corrupt_lines(self, tmp_path):
        from repro.engine.grid import load_completed_cells

        stream = tmp_path / "grid.jsonl"
        stream.write_text(
            '{"cell": "good", "simulations": 1}\n'
            '{"cell": "truncated", "simulati\n'
            "\n"
        )
        completed = load_completed_cells(str(stream))
        assert sorted(completed) == ["good"]

    def test_cli_resume_round_trip(self, tmp_path):
        from repro.engine.cli import main

        stream = tmp_path / "stream.jsonl"
        out = tmp_path / "grid.json"
        args = [
            "--strategy", "random",
            "--workload", "auto",
            "--budget", "2",
            "--workers", "1",
            "--quiet",
            "--stream", str(stream),
            "--json", str(out),
        ]
        assert main(args) == 0
        assert stream.exists()
        # Second invocation resumes everything: no new work, same totals.
        args_resume = [
            "--strategy", "random",
            "--workload", "auto",
            "--budget", "2",
            "--workers", "1",
            "--quiet",
            "--resume", str(stream),
            "--json", str(out),
        ]
        assert main(args_resume) == 0
        summary = json.loads(out.read_text())
        assert summary["totals"]["campaigns"] == 1
        assert summary["totals"]["resumed"] == 1


class TestEngineCli:
    def test_mixed_classic_and_fleet_grids_build(self):
        from repro.engine.cli import build_cells, build_parser

        args = build_parser().parse_args(
            ["--workload", "auto", "convoy", "--fleet-size", "2"]
        )
        cells = build_cells(args)
        by_workload = {cell.cell_id: cell.config.fleet_size for cell in cells}
        assert all(
            size == (2 if "convoy" in cell_id else 1)
            for cell_id, size in by_workload.items()
        )

    def test_fleet_size_without_fleet_workload_rejected(self):
        from repro.engine.cli import build_cells, build_parser

        args = build_parser().parse_args(["--workload", "auto", "--fleet-size", "3"])
        with pytest.raises(ValueError):
            build_cells(args)

    def test_oversize_fixed_fleet_rejected(self):
        from repro.engine.cli import build_cells, build_parser

        args = build_parser().parse_args(["--workload", "convoy", "--fleet-size", "4"])
        with pytest.raises(ValueError):
            build_cells(args)

    def test_per_dequeue_shapes_avis_cells(self):
        from repro.engine.cli import build_cells, build_parser

        args = build_parser().parse_args(
            ["--strategy", "avis", "random", "--per-dequeue", "4"]
        )
        cells = {cell.cell_id: cell for cell in build_cells(args)}
        avis_id = next(cell_id for cell_id in cells if "avis" in cell_id)
        assert "avis@pd4" in avis_id
        strategy = cells[avis_id].strategy_factory()
        assert strategy.last_search is None
        assert strategy._per_dequeue == 4
        # 0 disables the bound (exact Algorithm 1).
        args = build_parser().parse_args(
            ["--strategy", "avis", "--per-dequeue", "0"]
        )
        strategy = build_cells(args)[0].strategy_factory()
        assert strategy._per_dequeue is None

    def test_per_dequeue_without_avis_rejected(self):
        from repro.engine.cli import build_cells, build_parser

        args = build_parser().parse_args(
            ["--strategy", "random", "--per-dequeue", "4"]
        )
        with pytest.raises(ValueError):
            build_cells(args)
        args = build_parser().parse_args(
            ["--strategy", "avis", "--per-dequeue", "-1"]
        )
        with pytest.raises(ValueError):
            build_cells(args)

    def test_cli_writes_json_summary(self, tmp_path):
        from repro.engine.cli import main

        out = tmp_path / "grid.json"
        code = main(
            [
                "--strategy", "random",
                "--workload", "auto",
                "--budget", "2",
                "--workers", "1",
                "--quiet",
                "--json", str(out),
            ]
        )
        assert code == 0
        summary = json.loads(out.read_text())
        assert summary["totals"]["campaigns"] == 1
        campaign = summary["campaigns"][0]
        assert campaign["strategy"] == "random"
        assert campaign["simulations"] <= 2
