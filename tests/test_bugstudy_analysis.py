"""Tests for the bug-study dataset/analysis and the figure helpers."""

import pytest

from repro.analysis import (
    figure5_search_orders,
    figure6_pruning_counts,
    table1_feature_matrix,
)
from repro.bugstudy import (
    Reproducibility,
    RootCause,
    Symptom,
    build_dataset,
    build_review,
    finding1_sensor_bug_share,
    finding2_reproducibility,
    finding3_severity,
    summarize,
)


class TestBugStudyDataset:
    def test_review_bookkeeping_matches_paper(self):
        review = build_review()
        assert review.total_reviewed == 394
        assert review.ardupilot_reports + review.px4_reports == 394
        assert review.excluded_tooling == 29
        assert review.excluded_duplicates_or_unclear == 150
        assert review.analysed_count == 215

    def test_dataset_has_215_records_with_44_sensor_bugs(self):
        records = build_dataset()
        assert len(records) == 215
        sensor = [r for r in records if r.root_cause == RootCause.SENSOR]
        assert len(sensor) == 44
        assert all(record.sensor_type is not None for record in sensor)

    def test_bug_ids_are_unique(self):
        records = build_dataset()
        assert len({record.bug_id for record in records}) == len(records)


class TestFindings:
    def test_finding1_shares(self):
        shares = finding1_sensor_bug_share()
        assert shares["sensor_share_of_all_bugs"] == pytest.approx(0.20, abs=0.015)
        assert shares["semantic_share_of_all_bugs"] == pytest.approx(0.68, abs=0.015)
        assert shares["sensor_share_of_serious_bugs"] == pytest.approx(0.40, abs=0.03)

    def test_finding2_default_reproducibility(self):
        finding = finding2_reproducibility()
        assert finding["sensor_bug_count"] == 44
        assert finding["default_reproducible_share"] == pytest.approx(0.47, abs=0.02)

    def test_finding3_severity(self):
        finding = finding3_severity()
        assert finding["sensor_serious_share"] == pytest.approx(0.34, abs=0.02)
        assert finding["semantic_asymptomatic_share"] == pytest.approx(0.90, abs=0.02)

    def test_summary_figure_rows(self):
        summary = summarize()
        assert summary.total_bugs == 215
        assert dict(summary.figure3a_rows())["sensor"] == 44
        assert sum(count for _, count in summary.figure3b_rows()) == 44
        assert sum(count for _, count in summary.figure3c_rows()) == 44


class TestAnalysisHelpers:
    def test_figure5_orders_differ_by_strategy(self):
        orders = figure5_search_orders()
        assert set(orders) == {"depth-first", "breadth-first", "sabre"}
        assert orders["depth-first"][0] == "<no faults>"
        # DFS starts at the last time step, BFS at the first, SABRE at the
        # first mode transition.
        assert "t5" in orders["depth-first"][1]
        assert "t1" in orders["breadth-first"][1]
        assert "t1" in orders["sabre"][0]
        assert orders["depth-first"] != orders["breadth-first"]

    def test_figure6_counts_include_paper_example(self):
        rows = figure6_pruning_counts()
        assert (3, 21, 5) in rows
        for _, unpruned, pruned in rows:
            assert pruned <= unpruned

    def test_table1_matrix_matches_paper(self):
        rows = {row[0]: row[1:] for row in table1_feature_matrix()}
        assert rows["avis"] == ("yes", "yes", "yes")
        assert rows["stratified-bfi"] == ("no", "yes", "yes")
        assert rows["bfi"] == ("no", "yes", "no")
        assert rows["random"] == ("no", "no", "yes")
