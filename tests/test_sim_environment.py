"""Unit tests for the environment model."""

import pytest

from repro.sim.environment import (
    Environment,
    FenceRegion,
    GeoLocation,
    Obstacle,
    Wind,
    check_environment_is_default,
    default_environment,
    fenced_environment,
)


class TestObstacle:
    def test_contains_inside_and_outside(self):
        tree = Obstacle("tree", 10.0, 10.0, 2.0, 2.0, 8.0)
        assert tree.contains((10.0, 10.0, 4.0))
        assert not tree.contains((10.0, 10.0, 9.0))
        assert not tree.contains((20.0, 10.0, 4.0))

    def test_horizontal_distance(self):
        tree = Obstacle("tree", 0.0, 0.0, 1.0, 1.0, 5.0)
        assert tree.horizontal_distance((4.0, 0.0, 1.0)) == pytest.approx(3.0)
        assert tree.horizontal_distance((0.5, 0.5, 1.0)) == 0.0


class TestFenceRegion:
    def test_contains(self):
        fence = FenceRegion("nofly", 10.0, 20.0, 10.0, 20.0)
        assert fence.contains((15.0, 15.0, 5.0))
        assert not fence.contains((5.0, 15.0, 5.0))

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            FenceRegion("bad", 20.0, 10.0, 0.0, 5.0)


class TestWind:
    def test_calm_by_default(self):
        assert Wind().is_calm

    def test_constant_wind(self):
        wind = Wind(north_ms=3.0, east_ms=-1.0)
        assert wind.velocity_at(0.0) == (3.0, -1.0)
        assert wind.velocity_at(10.0) == (3.0, -1.0)

    def test_gusts_vary_with_time(self):
        wind = Wind(north_ms=2.0, gust_amplitude_ms=1.0, gust_period_s=4.0)
        assert wind.velocity_at(1.0) != wind.velocity_at(2.0)


class TestGeoLocation:
    def test_offset_round_trip(self):
        home = GeoLocation()
        target = home.offset(100.0, -50.0)
        north, east = home.local_offset_to(target)
        assert north == pytest.approx(100.0, abs=0.01)
        assert east == pytest.approx(-50.0, abs=0.01)

    def test_zero_offset(self):
        home = GeoLocation()
        assert home.local_offset_to(home) == pytest.approx((0.0, 0.0))


class TestEnvironment:
    def test_default_environment_matches_paper_setup(self):
        assert check_environment_is_default(default_environment())

    def test_fenced_environment_is_not_default(self):
        assert not check_environment_is_default(fenced_environment())

    def test_collision_queries(self):
        env = Environment(obstacles=(Obstacle("tower", 5.0, 5.0, 1.0, 1.0, 30.0),))
        assert env.colliding_obstacle((5.0, 5.0, 10.0)) is not None
        assert env.colliding_obstacle((50.0, 5.0, 10.0)) is None

    def test_fence_queries(self):
        env = fenced_environment()
        assert env.breached_fence((20.0, 20.0, 10.0)) is not None
        assert env.breached_fence((0.0, 0.0, 10.0)) is None

    def test_below_ground(self):
        env = default_environment()
        assert env.is_below_ground((0.0, 0.0, -0.1))
        assert not env.is_below_ground((0.0, 0.0, 0.1))

    def test_describe_mentions_contents(self):
        description = fenced_environment().describe()
        assert "fence" in description
