"""Integration tests for heterogeneous fleets, the beacon-driven convoy,
and separation-aware SABRE.

The refactor-seam contracts pinned here:

* ``VehicleSpec`` is a pure refactor: a homogeneous fleet expressed as
  explicit specs is bit-identical (scenarios, order, budget trajectory,
  cache keys) to the scalar-alias configuration.
* A heterogeneous campaign (ArduPilot lead + PX4 follower) runs end to
  end, on the serial and the process-pool backend, with identical
  results -- including through ``python -m repro.engine``.
* Separation-aware SABRE reaches the first separation violation on the
  convoy-follow workload with a beacon-dropout fault space in strictly
  fewer simulations than uniform dequeue ordering at the same budget.
"""

import json

import pytest

from repro.core.avis import Avis
from repro.core.config import RunConfiguration, VehicleSpec
from repro.core.monitor import UnsafeConditionKind
from repro.core.runner import TestRunner
from repro.core.strategies import AvisStrategy, RandomInjection
from repro.engine.cli import build_cells, build_parser, main, parse_vehicle_spec
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.firmware.px4 import Px4Firmware
from repro.hinj.faults import TrafficFailure, TrafficFaultKind
from repro.sim.vehicle import SOLO_QUADCOPTER
from repro.workloads.fleet import ConvoyFollowWorkload, MultiPadTakeoffLandWorkload


def convoy_config(vehicles=None, fleet_size=2):
    kwargs = dict(
        workload_factory=lambda: ConvoyFollowWorkload(),
        max_sim_time_s=160.0,
    )
    if vehicles is not None:
        kwargs["vehicles"] = vehicles
    else:
        kwargs["firmware_class"] = ArduPilotFirmware
        kwargs["fleet_size"] = fleet_size
    return RunConfiguration(**kwargs)


HETEROGENEOUS = (
    VehicleSpec(firmware_class=ArduPilotFirmware),
    VehicleSpec(firmware_class=Px4Firmware),
)


class TestVehicleSpecBitIdentity:
    """Homogeneous fleets before/after VehicleSpec are the same campaign."""

    def _campaign(self, config, budget=3.0):
        avis = Avis(config, profiling_runs=2, budget_units=budget)
        avis.profile()
        result = avis.check(strategy=RandomInjection(rng_seed=11))
        return result, avis.cache.keys()

    def test_explicit_specs_match_scalar_fleet_campaign(self):
        scalar = RunConfiguration(
            firmware_class=ArduPilotFirmware,
            workload_factory=lambda: MultiPadTakeoffLandWorkload(fleet_size=2),
            fleet_size=2,
            max_sim_time_s=160.0,
        )
        explicit = RunConfiguration(
            workload_factory=lambda: MultiPadTakeoffLandWorkload(fleet_size=2),
            vehicles=(VehicleSpec(), VehicleSpec()),
            max_sim_time_s=160.0,
        )
        scalar_result, scalar_keys = self._campaign(scalar)
        explicit_result, explicit_keys = self._campaign(explicit)
        assert [str(r.scenario) for r in explicit_result.results] == [
            str(r.scenario) for r in scalar_result.results
        ]
        assert explicit_result.budget_spent == scalar_result.budget_spent
        assert explicit_result.unsafe_scenario_count == (
            scalar_result.unsafe_scenario_count
        )
        assert explicit_keys == scalar_keys

    def test_single_vehicle_spec_matches_classic_config(self, short_auto_config):
        explicit = RunConfiguration(
            workload_factory=short_auto_config.workload_factory,
            max_sim_time_s=short_auto_config.max_sim_time_s,
            vehicles=(VehicleSpec(),),
        )
        assert explicit.fleet_size == 1
        classic_result, classic_keys = self._campaign(short_auto_config)
        explicit_result, explicit_keys = self._campaign(explicit)
        assert [str(r.scenario) for r in explicit_result.results] == [
            str(r.scenario) for r in classic_result.results
        ]
        assert explicit_result.budget_spent == classic_result.budget_spent
        assert explicit_keys == classic_keys


class TestHeterogeneousConvoy:
    def test_golden_run_passes_with_mixed_firmware(self):
        config = convoy_config(vehicles=HETEROGENEOUS)
        result = TestRunner(config).run()
        assert result.workload_passed
        assert result.vehicle_firmware_names == {0: "ardupilot", 1: "px4"}
        assert result.min_separation_m is not None
        assert result.min_separation_m > 4.0

    def test_pool_matches_serial_on_heterogeneous_convoy(self):
        def campaign(backend):
            avis = Avis(
                convoy_config(vehicles=HETEROGENEOUS),
                profiling_runs=2,
                budget_units=4.0,
                backend=backend,
            )
            avis.profile()
            result = avis.check(strategy=RandomInjection(rng_seed=7))
            keys = avis.cache.keys()
            avis.engine.close()
            return result, keys

        serial_result, serial_keys = campaign("serial")
        pool_result, pool_keys = campaign("pool:2")
        assert [str(r.scenario) for r in pool_result.results] == [
            str(r.scenario) for r in serial_result.results
        ]
        assert [len(r.unsafe_conditions) for r in pool_result.results] == [
            len(r.unsafe_conditions) for r in serial_result.results
        ]
        assert pool_result.budget_spent == serial_result.budget_spent
        assert pool_keys == serial_keys


class TestSeparationAwareSabre:
    """The committed benchmark for the separation-aware dequeue: fewer
    simulations to the first separation violation than uniform ordering,
    end to end on the convoy with a beacon-dropout fault space."""

    BUDGET = 12.0

    @staticmethod
    def _first_separation_index(result, budget):
        for index, run in enumerate(result.results, start=1):
            if any(
                condition.kind == UnsafeConditionKind.SEPARATION
                for condition in run.unsafe_conditions
            ):
                return index
        return int(budget) + 1  # not found within the budget

    def test_separation_aware_finds_violation_in_fewer_simulations(self):
        avis = Avis(convoy_config(), profiling_runs=2, budget_units=self.BUDGET)
        avis.profile()
        failures = [
            TrafficFailure(vehicle, TrafficFaultKind.DROPOUT) for vehicle in range(2)
        ]

        def strategy(separation_aware):
            return AvisStrategy(
                failures=failures,
                separation_aware=separation_aware,
                max_scenarios_per_dequeue=4,
            )

        uniform = avis.check(strategy=strategy(False))
        aware = avis.check(strategy=strategy(True))
        uniform_first = self._first_separation_index(uniform, self.BUDGET)
        aware_first = self._first_separation_index(aware, self.BUDGET)
        # The weighted dequeue must genuinely engage...
        assert aware_first <= self.BUDGET, (
            "separation-aware SABRE found no separation violation at all"
        )
        # ... and reach the violation strictly earlier than FIFO order.
        assert aware_first < uniform_first

    def test_separation_aware_is_inert_without_fleet_profiles(self, waypoint_avis):
        """Single-vehicle campaigns carry no separation data: the flag
        must degrade to the exact uniform (FIFO) campaign."""
        uniform = waypoint_avis.check(
            strategy=AvisStrategy(max_scenarios_per_dequeue=4), budget_units=5.0
        )
        flagged = waypoint_avis.check(
            strategy=AvisStrategy(
                max_scenarios_per_dequeue=4, separation_aware=True
            ),
            budget_units=5.0,
        )
        assert [str(r.scenario) for r in flagged.results] == [
            str(r.scenario) for r in uniform.results
        ]
        assert flagged.budget_spent == uniform.budget_spent


class TestVehicleCli:
    def test_parse_vehicle_spec(self):
        spec = parse_vehicle_spec("firmware=px4,airframe=solo")
        assert spec.firmware_class is Px4Firmware
        assert spec.airframe is SOLO_QUADCOPTER
        assert parse_vehicle_spec("firmware=ardupilot").firmware_class is (
            ArduPilotFirmware
        )
        for bad in ("firmware=apm", "airframe=f16", "colour=red", "px4"):
            with pytest.raises(ValueError):
                parse_vehicle_spec(bad)

    def _args(self, argv):
        return build_parser().parse_args(argv)

    def test_vehicle_cells_define_the_fleet(self):
        cells = build_cells(
            self._args(
                [
                    "--workload", "convoy",
                    "--vehicle", "firmware=ardupilot",
                    "--vehicle", "firmware=px4,airframe=solo",
                    "--strategy", "avis",
                    "--budget", "5",
                    "--traffic-faults",
                    "--separation-aware",
                ]
            )
        )
        assert len(cells) == 1
        cell = cells[0]
        assert cell.cell_id == "ardupilot+px4/convoy@fleet2+traffic/avis+sep/5"
        assert cell.config.is_heterogeneous
        assert cell.config.fleet_size == 2
        assert cell.config.vehicle_spec(1).airframe is SOLO_QUADCOPTER
        assert cell.traffic_faults
        strategy = cell.strategy_factory()
        assert strategy._include_traffic
        assert strategy._separation_aware

    def test_vehicle_cells_are_emitted_once_across_firmware_axis(self):
        cells = build_cells(
            self._args(
                [
                    "--firmware", "ardupilot", "px4",
                    "--workload", "convoy", "waypoint",
                    "--vehicle", "firmware=ardupilot",
                    "--vehicle", "firmware=px4",
                    "--strategy", "random",
                    "--budget", "5",
                ]
            )
        )
        ids = [cell.cell_id for cell in cells]
        assert ids.count("ardupilot+px4/convoy@fleet2/random/5") == 1
        # Classic workloads still iterate the --firmware axis.
        assert "ardupilot/waypoint/random/5" in ids
        assert "px4/waypoint/random/5" in ids

    def test_vehicle_validation_errors(self):
        with pytest.raises(ValueError):
            build_cells(
                self._args(
                    ["--workload", "waypoint", "--vehicle", "firmware=px4",
                     "--vehicle", "firmware=px4"]
                )
            )
        with pytest.raises(ValueError):
            build_cells(
                self._args(["--workload", "convoy", "--vehicle", "firmware=px4"])
            )
        with pytest.raises(ValueError):
            build_cells(
                self._args(
                    ["--workload", "convoy", "--fleet-size", "3",
                     "--vehicle", "firmware=px4", "--vehicle", "firmware=px4"]
                )
            )
        with pytest.raises(ValueError):
            build_cells(self._args(["--workload", "waypoint", "--traffic-faults"]))
        # --traffic-faults only combines with strategies that actually
        # draw from the coordination fault space.
        with pytest.raises(ValueError):
            build_cells(
                self._args(
                    ["--workload", "convoy", "--fleet-size", "2",
                     "--traffic-faults", "--strategy", "bfi"]
                )
            )
        with pytest.raises(ValueError):
            build_cells(
                self._args(
                    ["--workload", "waypoint", "--strategy", "random",
                     "--separation-aware"]
                )
            )

    def test_heterogeneous_campaign_through_engine_cli(self, tmp_path):
        """Acceptance: an ArduPilot-lead + PX4-follower campaign runs end
        to end through ``python -m repro.engine``."""
        out = tmp_path / "hetero.json"
        code = main(
            [
                "--workload", "convoy",
                "--vehicle", "firmware=ardupilot",
                "--vehicle", "firmware=px4",
                "--strategy", "random",
                "--budget", "2",
                "--workers", "1",
                "--quiet",
                "--json", str(out),
            ]
        )
        assert code == 0
        summary = json.loads(out.read_text())
        assert summary["totals"]["campaigns"] == 1
        campaign = summary["campaigns"][0]
        assert campaign["cell"] == "ardupilot+px4/convoy@fleet2/random/2"
        assert campaign["fleet_size"] == 2
        assert campaign["vehicles"] == ["ardupilot/3DR Iris", "px4/3DR Iris"]
        assert campaign["simulations"] == 2
