"""Intermittent faults with recovery semantics, across both fault families.

Covers the recovery-window spec grammar (``duration_s``), the sensor
scheduler/driver recovery path, the traffic channel's recovery
semantics, the latched-default bit-identity guarantee, the burst
enumeration of the search strategies, the monitor's post-recovery
re-convergence tolerance, and the canonical convoy recovery-window
hazard -- plus the traffic-channel canonicalization fixes that ride
along (extra_delay_s canonicalization, complete injection recording
under co-scheduled faults, strict ``latest()`` bounds).
"""

import pytest

from conftest import make_run_result, make_trace

from repro.core.config import RunConfiguration
from repro.core.monitor import (
    InvariantMonitor,
    UnsafeConditionKind,
    recovery_tolerance_windows,
)
from repro.core.pruning import RedundancyPruner, symmetry_signature
from repro.core.replay import build_replay_plan, resolve_plan
from repro.core.runner import TestRunner
from repro.core.sabre import SabreSearch
from repro.core.strategies import (
    AvisStrategy,
    BayesianFaultInjection,
    StratifiedBFI,
)
from repro.engine.cache import scenario_fingerprint, scenario_key
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.hinj.faults import (
    BurstFailure,
    FaultScenario,
    FaultSpec,
    TrafficFailure,
    TrafficFaultKind,
    TrafficFaultSpec,
    burst_failures,
    spec_for,
)
from repro.hinj.scheduler import FaultScheduler
from repro.mavlink.traffic import TrafficChannel
from repro.sensors.base import SensorId, SensorType
from repro.sensors.gps import GpsReceiver
from repro.sensors.suite import iris_sensor_suite
from repro.sim.state import VehicleState
from repro.workloads.fleet import ConvoyFollowWorkload

GPS = SensorId(SensorType.GPS, 0)
BARO = SensorId(SensorType.BAROMETER, 0)


def drive(channel, steps, broadcasters, start_time=0.0):
    """Advance ``channel`` like the harness does."""
    time = start_time
    for _ in range(steps):
        time += channel.dt
        channel.advance()
        if channel.beacon_due():
            for vehicle, state in broadcasters.items():
                position, velocity = state(time)
                channel.broadcast(
                    vehicle, time=time, position=position, velocity=velocity
                )
    return time


def moving_north(speed=2.0, altitude=10.0):
    return lambda t: ((speed * t, 0.0, altitude), (speed, 0.0, 0.0))


class TestWindowedSpecGrammar:
    def test_latched_default_is_none(self):
        assert FaultSpec(GPS, 2.0).duration_s is None
        assert TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 2.0).duration_s is None

    def test_active_window_closes(self):
        fault = FaultSpec(GPS, 2.0, duration_s=3.0)
        assert not fault.active_at(1.9)
        assert fault.active_at(2.0)
        assert fault.active_at(4.9)
        assert not fault.active_at(5.0)
        assert fault.recovers
        assert fault.end_time == 5.0

    def test_latched_fault_never_recovers(self):
        fault = FaultSpec(GPS, 2.0)
        assert fault.active_at(1e9)
        assert not fault.recovers
        assert fault.end_time is None

    def test_duration_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultSpec(GPS, 2.0, duration_s=0.0)
        with pytest.raises(ValueError):
            TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 2.0, duration_s=-1.0)

    def test_windowed_and_latched_specs_are_distinct(self):
        latched = FaultSpec(GPS, 2.0)
        burst = FaultSpec(GPS, 2.0, duration_s=3.0)
        assert latched != burst
        assert len({latched, burst, FaultSpec(GPS, 2.0, duration_s=4.0)}) == 3

    def test_mixed_durations_sort_without_type_errors(self):
        specs = [
            FaultSpec(GPS, 2.0, duration_s=3.0),
            FaultSpec(GPS, 2.0),
            FaultSpec(GPS, 2.0, duration_s=1.0),
            TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 2.0, duration_s=5.0),
            TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 2.0),
        ]
        ordered = sorted(specs)
        # Sensor faults first; shorter windows before longer; latched
        # (infinite window) last within a site.
        assert [getattr(spec, "duration_s", None) for spec in ordered] == [
            1.0, 3.0, None, 5.0, None,
        ]

    def test_describe_mentions_window_only_when_set(self):
        assert "for" not in FaultSpec(GPS, 2.0).describe()
        assert "for 3s" in FaultSpec(GPS, 2.0, duration_s=3.0).describe()
        assert "for 2.5s" in TrafficFaultSpec(
            0, TrafficFaultKind.FREEZE, 1.0, duration_s=2.5
        ).describe()

    def test_for_vehicle_and_shifted_preserve_the_window(self):
        fault = FaultSpec(GPS, 2.0, duration_s=3.0)
        assert fault.for_vehicle(1).duration_s == 3.0
        traffic = TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 2.0, duration_s=4.0)
        assert traffic.for_vehicle(2).duration_s == 4.0
        shifted = FaultScenario([fault, traffic]).shifted(1.5)
        assert [f.duration_s for f in shifted.faults] == [3.0, 4.0]

    def test_recovering_faults_queries(self):
        scenario = FaultScenario(
            [
                FaultSpec(GPS, 2.0),
                FaultSpec(BARO, 3.0, duration_s=2.0),
            ]
        )
        assert scenario.has_recovering_faults
        assert [f.sensor_id for f in scenario.recovering_faults] == [BARO]
        assert not FaultScenario([FaultSpec(GPS, 2.0)]).has_recovering_faults

    def test_should_fail_sees_disjoint_windows_per_sensor(self):
        scenario = FaultScenario(
            [
                FaultSpec(GPS, 2.0, duration_s=1.0),
                FaultSpec(GPS, 6.0, duration_s=1.0),
            ]
        )
        assert scenario.should_fail(GPS, 2.5)
        assert not scenario.should_fail(GPS, 4.0)
        assert scenario.should_fail(GPS, 6.5)
        assert not scenario.should_fail(GPS, 8.0)


class TestExtraDelayCanonicalization:
    """Regression: ``extra_delay_s`` is meaningless for non-DELAY kinds
    and must not split (or alias) scenario identities."""

    def test_non_delay_specs_canonicalize_extra_delay(self):
        plain = TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 5.0)
        tweaked = TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 5.0, extra_delay_s=2.0)
        assert plain == tweaked
        assert hash(plain) == hash(tweaked)
        assert plain.sort_key() == tweaked.sort_key()
        assert plain.label == tweaked.label
        # One scenario, one cache key -- not two explored as distinct.
        assert FaultScenario([plain]) == FaultScenario([tweaked])
        config = RunConfiguration(firmware_class=ArduPilotFirmware, fleet_size=2)
        assert scenario_key(
            config, "convoy", FaultScenario([plain])
        ) == scenario_key(config, "convoy", FaultScenario([tweaked]))

    def test_freeze_canonicalizes_too(self):
        assert TrafficFaultSpec(
            1, TrafficFaultKind.FREEZE, 3.0, extra_delay_s=9.0
        ) == TrafficFaultSpec(1, TrafficFaultKind.FREEZE, 3.0)

    def test_delay_specs_keep_their_parameter(self):
        slow = TrafficFaultSpec(0, TrafficFaultKind.DELAY, 5.0, extra_delay_s=2.0)
        fast = TrafficFaultSpec(0, TrafficFaultKind.DELAY, 5.0, extra_delay_s=0.5)
        assert slow != fast
        assert slow.label != fast.label
        assert slow.extra_delay_s == 2.0

    def test_failure_handles_canonicalize_identically(self):
        assert TrafficFailure(
            0, TrafficFaultKind.DROPOUT, extra_delay_s=7.0
        ) == TrafficFailure(0, TrafficFaultKind.DROPOUT)
        assert TrafficFailure(
            0, TrafficFaultKind.DELAY, extra_delay_s=7.0
        ) != TrafficFailure(0, TrafficFaultKind.DELAY)


class TestLatchedDefaultBitIdentity:
    """With every ``duration_s=None``, hashes, labels, replay plans and
    cache fingerprints render exactly as the pre-window engine did."""

    def test_scenario_fingerprints_unchanged(self):
        scenario = FaultScenario(
            [
                FaultSpec(GPS, 2.0),
                TrafficFaultSpec(1, TrafficFaultKind.DROPOUT, 5.0),
            ]
        )
        assert scenario_fingerprint(scenario) == (
            "gps[0]@2.0;traffic:v1:dropout@5.0"
        )
        delay = FaultScenario(
            [TrafficFaultSpec(0, TrafficFaultKind.DELAY, 3.0, extra_delay_s=2.0)]
        )
        assert scenario_fingerprint(delay) == "traffic:v0:delay+2s@3.0"

    def test_window_term_emitted_only_when_non_default(self):
        burst = FaultScenario([FaultSpec(GPS, 2.0, duration_s=3.0)])
        assert scenario_fingerprint(burst) == "gps[0]@2.0~3.0"
        traffic_burst = FaultScenario(
            [TrafficFaultSpec(1, TrafficFaultKind.DROPOUT, 5.0, duration_s=4.0)]
        )
        assert scenario_fingerprint(traffic_burst) == "traffic:v1:dropout@5.0~4.0"
        # ... so latched scenarios keep their exact cache keys.
        config = RunConfiguration(firmware_class=ArduPilotFirmware)
        explicit_none = FaultScenario([FaultSpec(GPS, 2.0, duration_s=None)])
        assert scenario_key(config, "w", explicit_none) == scenario_key(
            config, "w", FaultScenario([FaultSpec(GPS, 2.0)])
        )

    def test_labels_and_descriptions_unchanged(self):
        assert TrafficFaultSpec(1, TrafficFaultKind.DROPOUT, 3.0).label == (
            "traffic:v1:dropout"
        )
        assert FaultSpec(GPS, 2.5).describe() == "gps[0] fails at t=2.50s"
        assert TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 3.0).describe() == (
            "traffic:v0:dropout at t=3.00s"
        )

    def test_latched_sort_order_unchanged(self):
        specs = [
            TrafficFaultSpec(0, TrafficFaultKind.FREEZE, 1.0),
            FaultSpec(BARO, 9.0),
            FaultSpec(GPS, 2.0),
            TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 5.0),
        ]
        ordered = FaultScenario(specs).faults
        assert [
            f.sensor_id.label if isinstance(f, FaultSpec) else f.label
            for f in ordered
        ] == ["barometer[0]", "gps[0]", "traffic:v0:dropout", "traffic:v0:freeze"]

    def test_symmetry_signatures_still_separate_sites(self):
        suite = iris_sensor_suite()
        role_of = lambda sensor_id: suite.role_of(sensor_id.base)  # noqa: E731
        latched = FaultScenario([FaultSpec(SensorId(SensorType.COMPASS, 1), 5.0)])
        peer = FaultScenario([FaultSpec(SensorId(SensorType.COMPASS, 1), 5.0)])
        burst = FaultScenario(
            [FaultSpec(SensorId(SensorType.COMPASS, 1), 5.0, duration_s=2.0)]
        )
        assert symmetry_signature(latched, role_of) == symmetry_signature(
            peer, role_of
        )
        # A burst is a genuinely different probe: never symmetric with
        # the latched fault at the same site.
        assert symmetry_signature(latched, role_of) != symmetry_signature(
            burst, role_of
        )
        pruner = RedundancyPruner(role_of=role_of)
        pruner.record_explored(latched)
        assert pruner.can_prune(latched)
        assert not pruner.can_prune(burst)

    def test_replay_plan_round_trip_unchanged_for_latched(self):
        original = make_run_result(
            scenario=FaultScenario([FaultSpec(GPS, 0.7)])
        )
        from repro.hinj.scheduler import InjectionRecord

        original.injections = [
            InjectionRecord(sensor_id=GPS, scheduled_time=0.7, injected_time=0.7)
        ]
        plan = build_replay_plan(original)
        assert plan.faults[0].duration_s is None
        resolved = resolve_plan(plan, make_run_result())
        fault = resolved.sensor_faults[0]
        assert fault.duration_s is None
        assert fault.start_time == pytest.approx(0.7)


class TestSchedulerRecovery:
    def test_should_fail_reverts_after_the_window(self):
        scheduler = FaultScheduler(
            FaultScenario([FaultSpec(GPS, 2.0, duration_s=3.0)])
        )
        assert not scheduler.should_fail(GPS, 1.0)
        assert scheduler.should_fail(GPS, 2.5)
        assert scheduler.should_fail(GPS, 4.9)
        assert not scheduler.should_fail(GPS, 5.1)
        record = scheduler.injections[0]
        assert record.duration_s == 3.0
        assert record.recovered
        assert record.recovered_time == pytest.approx(5.1)

    def test_disjoint_windows_record_one_injection_each(self):
        scenario = FaultScenario(
            [
                FaultSpec(GPS, 10.0, duration_s=3.0),
                FaultSpec(GPS, 30.0, duration_s=3.0),
            ]
        )
        scheduler = FaultScheduler(scenario)
        for time in (9.0, 11.0, 14.0, 20.0, 31.0, 34.0):
            scheduler.should_fail(GPS, time)
        records = scheduler.injections
        assert [record.scheduled_time for record in records] == [10.0, 30.0]
        assert [record.recovered_time for record in records] == [14.0, 34.0]
        assert scheduler.injected_sensor_ids == {GPS}
        # Replay plans carry *both* windows.
        result = make_run_result(scenario=scenario)
        result.injections = records
        plan = build_replay_plan(result)
        assert len(plan.faults) == 2
        assert [fault.duration_s for fault in plan.faults] == [3.0, 3.0]

    def test_pending_faults_sees_unapplied_later_windows(self):
        scenario = FaultScenario(
            [
                FaultSpec(GPS, 10.0, duration_s=3.0),
                FaultSpec(GPS, 30.0, duration_s=3.0),
            ]
        )
        scheduler = FaultScheduler(scenario)
        scheduler.should_fail(GPS, 11.0)
        assert scheduler.pending_faults(20.0) == [GPS]

    def test_latched_records_never_recover(self):
        scheduler = FaultScheduler(FaultScenario([FaultSpec(GPS, 2.0)]))
        scheduler.should_fail(GPS, 3.0)
        scheduler.should_fail(GPS, 100.0)
        record = scheduler.injections[0]
        assert not record.recovered
        assert record.recovered_time is None
        assert record.duration_s is None

    def test_driver_recovers_when_the_scheduler_stops_failing(self):
        scheduler = FaultScheduler(
            FaultScenario([FaultSpec(GPS, 2.0, duration_s=3.0)])
        )
        gps = GpsReceiver()
        gps.instrument(scheduler.should_fail)
        state = VehicleState()
        assert not gps.read(state, 1.0).failed
        assert gps.read(state, 2.5).failed
        assert gps.failed
        reading = gps.read(state, 5.5)
        assert not reading.failed
        assert reading.values
        assert gps.healthy

    def test_manual_fail_still_latches_through_a_permissive_hook(self):
        gps = GpsReceiver()
        gps.instrument(lambda sensor_id, time: False)
        gps.fail()
        assert gps.read(VehicleState(), 1.0).failed

    def test_suite_failover_and_failback(self):
        suite = iris_sensor_suite()
        compass0 = SensorId(SensorType.COMPASS, 0)
        scheduler = FaultScheduler(
            FaultScenario([FaultSpec(compass0, 1.0, duration_s=2.0)])
        )
        suite.instrument(scheduler.should_fail)
        state = VehicleState()
        suite.read_all(state, 1.5)
        assert suite.active_instance(SensorType.COMPASS).sensor_id.instance == 1
        suite.read_all(state, 3.5)
        assert suite.active_instance(SensorType.COMPASS).sensor_id.instance == 0


class TestChannelRecovery:
    def _channel(self, faults=()):
        return TrafficChannel(
            fleet_size=2, dt=0.1, beacon_interval_s=0.2, latency_s=0.1,
            faults=faults,
        )

    def test_dropout_recovers_and_beacons_resume(self):
        fault = TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 0.5, duration_s=0.6)
        channel = self._channel(faults=[fault])
        drive(channel, 30, {0: moving_north()})
        beacon = channel.latest(1, 0)
        assert beacon is not None
        assert beacon.time > 1.1, "fresh beacons must flow after recovery"
        record = channel.injections[0]
        assert record.recovered
        assert record.recovered_time >= fault.end_time
        assert "recovered" in record.describe()

    def test_freeze_thaws_back_to_live_payloads(self):
        fault = TrafficFaultSpec(0, TrafficFaultKind.FREEZE, 0.5, duration_s=0.6)
        channel = self._channel(faults=[fault])
        drive(channel, 30, {0: moving_north()})
        beacon = channel.latest(1, 0)
        assert beacon.velocity[0] == pytest.approx(2.0)
        assert beacon.position[0] == pytest.approx(2.0 * beacon.time)

    def test_second_freeze_freezes_at_the_post_recovery_state(self):
        first = TrafficFaultSpec(0, TrafficFaultKind.FREEZE, 0.5, duration_s=0.4)
        second = TrafficFaultSpec(0, TrafficFaultKind.FREEZE, 2.0)
        channel = self._channel(faults=[first, second])
        drive(channel, 40, {0: moving_north()})
        beacon = channel.latest(1, 0)
        assert beacon.velocity == (0.0, 0.0, 0.0)
        # The ghost payload is from just before the *second* window, not
        # the first: the thaw refreshed the pre-fault state.
        assert 3.0 < beacon.position[0] <= 4.0

    def test_delay_reverts_to_base_latency(self):
        fault = TrafficFaultSpec(
            0, TrafficFaultKind.DELAY, 0.0, extra_delay_s=0.5, duration_s=1.0
        )
        delayed = self._channel(faults=[fault])
        healthy = self._channel()
        drive(delayed, 30, {0: moving_north()})
        drive(healthy, 30, {0: moving_north()})
        assert delayed.latest(1, 0).time == healthy.latest(1, 0).time

    def test_latched_faults_never_record_recovery(self):
        fault = TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 0.5)
        channel = self._channel(faults=[fault])
        drive(channel, 30, {0: moving_north()})
        assert not channel.injections[0].recovered


class TestCombinedFaultRecording:
    """Regression: an active dropout must not hide co-scheduled faults
    from the injection log (or the freeze ghost capture)."""

    def _channel(self, faults):
        return TrafficChannel(fleet_size=2, dt=0.1, faults=faults)

    def test_co_scheduled_freeze_is_recorded_under_a_dropout(self):
        dropout = TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 0.5)
        freeze = TrafficFaultSpec(0, TrafficFaultKind.FREEZE, 0.5)
        channel = self._channel([dropout, freeze])
        drive(channel, 20, {0: moving_north()})
        recorded = {record.fault.kind for record in channel.injections}
        assert recorded == {TrafficFaultKind.DROPOUT, TrafficFaultKind.FREEZE}
        # The freeze's ghost payload was captured despite the drop.
        assert 0 in channel._frozen

    def test_co_scheduled_delay_is_recorded_under_a_dropout(self):
        dropout = TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 0.5)
        delay = TrafficFaultSpec(0, TrafficFaultKind.DELAY, 0.5, extra_delay_s=0.5)
        channel = self._channel([dropout, delay])
        drive(channel, 20, {0: moving_north()})
        recorded = {record.fault.kind for record in channel.injections}
        assert recorded == {TrafficFaultKind.DROPOUT, TrafficFaultKind.DELAY}

    def test_dropped_beacons_still_count_and_do_not_deliver(self):
        dropout = TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 0.0)
        freeze = TrafficFaultSpec(0, TrafficFaultKind.FREEZE, 0.0)
        channel = self._channel([dropout, freeze])
        drive(channel, 20, {0: moving_north()})
        assert channel.beacons_dropped > 0
        assert channel.latest(1, 0) is None

    def test_recovered_dropout_reveals_the_surviving_freeze(self):
        dropout = TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 0.0, duration_s=1.0)
        freeze = TrafficFaultSpec(0, TrafficFaultKind.FREEZE, 0.0)
        channel = self._channel([dropout, freeze])
        drive(channel, 30, {0: moving_north()})
        beacon = channel.latest(1, 0)
        # After the dropout window the freeze keeps ghosting: beacons
        # flow again but stay frozen at the first broadcast's payload.
        assert beacon is not None
        assert beacon.velocity == (0.0, 0.0, 0.0)


class TestLatestBounds:
    """Regression: an out-of-range fleet index must raise, not read as
    "no beacon yet" forever."""

    def test_out_of_range_sender_raises(self):
        channel = TrafficChannel(fleet_size=2, dt=0.1)
        with pytest.raises(ValueError, match="sender 2"):
            channel.latest(0, 2)

    def test_out_of_range_receiver_raises(self):
        channel = TrafficChannel(fleet_size=2, dt=0.1)
        with pytest.raises(ValueError, match="receiver -1"):
            channel.latest(-1, 0)

    def test_own_ship_still_rejected(self):
        channel = TrafficChannel(fleet_size=3, dt=0.1)
        with pytest.raises(ValueError, match="itself"):
            channel.latest(1, 1)

    def test_in_range_queries_still_work(self):
        channel = TrafficChannel(fleet_size=3, dt=0.1)
        assert channel.latest(2, 0) is None


class TestShiftedTrafficScenarios:
    """Clamping at 0.0 can collapse previously distinct scenarios."""

    def test_negative_shift_clamps_traffic_faults_to_zero(self):
        scenario = FaultScenario(
            [TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 3.0, duration_s=2.0)]
        )
        shifted = scenario.shifted(-5.0)
        fault = shifted.traffic_faults[0]
        assert fault.start_time == 0.0
        assert fault.duration_s == 2.0

    def test_clamping_collapses_distinct_scenarios(self):
        early = FaultScenario([TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 1.0)])
        late = FaultScenario([TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 2.0)])
        assert early != late
        assert early.shifted(-3.0) == late.shifted(-3.0)

    def test_clamping_collapses_mixed_family_scenarios_consistently(self):
        scenario = FaultScenario(
            [
                FaultSpec(GPS, 1.0),
                TrafficFaultSpec(1, TrafficFaultKind.FREEZE, 2.0),
            ]
        )
        collapsed = scenario.shifted(-10.0)
        assert len(collapsed) == 2
        assert all(fault.start_time == 0.0 for fault in collapsed.faults)


class TestReplayRoundTrip:
    def _recorded_result(self, duration_s):
        from repro.hinj.scheduler import InjectionRecord
        from repro.mavlink.traffic import TrafficInjectionRecord

        original = make_run_result()
        original.injections = [
            InjectionRecord(
                sensor_id=GPS,
                scheduled_time=0.6,
                injected_time=0.7,
                duration_s=duration_s,
            )
        ]
        original.traffic_injections = [
            TrafficInjectionRecord(
                fault=TrafficFaultSpec(
                    0, TrafficFaultKind.DROPOUT, 0.6, duration_s=duration_s
                ),
                scheduled_time=0.6,
                injected_time=0.7,
            )
        ]
        return original

    @pytest.mark.parametrize("duration_s", [None, 4.0])
    def test_plan_round_trips_the_window(self, duration_s):
        plan = build_replay_plan(self._recorded_result(duration_s))
        assert [fault.duration_s for fault in plan.faults] == [duration_s] * 2
        resolved = resolve_plan(plan, make_run_result())
        sensor = resolved.sensor_faults[0]
        traffic = resolved.traffic_faults[0]
        assert sensor.duration_s == duration_s
        assert traffic.duration_s == duration_s
        assert sensor.start_time == pytest.approx(0.7)
        assert traffic.start_time == pytest.approx(0.7)

    def test_plan_description_mentions_the_window(self):
        plan = build_replay_plan(self._recorded_result(4.0))
        assert "for 4s" in plan.describe()
        latched = build_replay_plan(self._recorded_result(None))
        assert "for 4s" not in latched.describe()


class TestBurstHandles:
    def test_burst_failure_labels_and_specs(self):
        burst = BurstFailure(GPS, 3.0)
        assert burst.label == "gps[0]~3s"
        spec = burst.spec_at(7.0)
        assert isinstance(spec, FaultSpec)
        assert (spec.start_time, spec.duration_s) == (7.0, 3.0)
        traffic = BurstFailure(TrafficFailure(1, TrafficFaultKind.DROPOUT), 2.0)
        assert traffic.label == "traffic:v1:dropout~2s"
        traffic_spec = traffic.spec_at(5.0)
        assert isinstance(traffic_spec, TrafficFaultSpec)
        assert traffic_spec.duration_s == 2.0

    def test_burst_handles_do_not_nest_and_need_positive_durations(self):
        with pytest.raises(ValueError):
            BurstFailure(BurstFailure(GPS, 3.0), 2.0)
        with pytest.raises(ValueError):
            BurstFailure(GPS, 0.0)

    def test_spec_for_windows_every_handle_kind(self):
        assert spec_for(GPS, 2.0, 3.0).duration_s == 3.0
        assert spec_for(
            TrafficFailure(0, TrafficFaultKind.FREEZE), 2.0, 3.0
        ).duration_s == 3.0
        assert spec_for(BurstFailure(GPS, 3.0), 2.0).duration_s == 3.0
        assert spec_for(BurstFailure(GPS, 3.0), 2.0, 3.0).duration_s == 3.0
        with pytest.raises(ValueError):
            spec_for(BurstFailure(GPS, 3.0), 2.0, 4.0)

    def test_burst_failures_expands_duration_major(self):
        handles = [GPS, TrafficFailure(0, TrafficFaultKind.DROPOUT)]
        expanded = burst_failures(handles, [2.0, 5.0])
        assert [handle.label for handle in expanded] == [
            "gps[0]~2s",
            "traffic:v0:dropout~2s",
            "gps[0]~5s",
            "traffic:v0:dropout~5s",
        ]


class TestLatchedCampaignEquivalence:
    """Committed end-to-end equivalence: with no burst durations (every
    ``duration_s=None``), a real SABRE campaign is bit-identical to the
    pre-window engine -- same scenarios, same order, same budget
    trajectory, same cache keys."""

    def test_real_campaign_is_bit_identical_without_bursts(self, waypoint_avis):
        plain = waypoint_avis.check(
            strategy=AvisStrategy(max_scenarios_per_dequeue=4), budget_units=4.0
        )
        windowed = waypoint_avis.check(
            strategy=AvisStrategy(
                max_scenarios_per_dequeue=4, burst_durations=()
            ),
            budget_units=4.0,
        )
        assert [str(r.scenario) for r in windowed.results] == [
            str(r.scenario) for r in plain.results
        ]
        assert windowed.budget_spent == plain.budget_spent
        assert [
            scenario_fingerprint(r.scenario) for r in windowed.results
        ] == [scenario_fingerprint(r.scenario) for r in plain.results]


class TestConvoyReturnSpeed:
    def test_default_keeps_the_classic_workload_fingerprint(self):
        from repro.engine.cache import workload_fingerprint

        config = RunConfiguration(
            firmware_class=ArduPilotFirmware,
            workload_factory=lambda: ConvoyFollowWorkload(),
            fleet_size=2,
        )
        fingerprint = workload_fingerprint(config)
        # The return-speed knob must not leak into default fingerprints:
        # existing convoy cache entries and grid streams stay valid.
        assert "return_speed" not in fingerprint
        assert ConvoyFollowWorkload().return_speed_ms is None

    def test_override_is_fingerprinted_and_applied(self):
        from repro.engine.cache import workload_fingerprint

        config = RunConfiguration(
            firmware_class=ArduPilotFirmware,
            workload_factory=lambda: ConvoyFollowWorkload(return_speed_ms=8.0),
            fleet_size=2,
        )
        assert "return_speed_ms" in workload_fingerprint(config)
        assert ConvoyFollowWorkload(return_speed_ms=8.0).return_speed_ms == 8.0


@pytest.fixture(scope="module")
def convoy_config() -> RunConfiguration:
    """The default two-vehicle beacon-driven convoy."""
    return RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: ConvoyFollowWorkload(),
        fleet_size=2,
        max_sim_time_s=160.0,
    )


@pytest.fixture(scope="module")
def convoy_avis(convoy_config):
    """An Avis orchestrator profiled on the convoy (shared per module)."""
    from repro.core.avis import Avis

    avis = Avis(convoy_config, profiling_runs=2, budget_units=20.0)
    avis.profile()
    return avis


class TestConvoyRecoveryHazard:
    """The canonical recovery-window hazard, end to end.

    An intermittent beacon dropout parks the follower safely south of
    the corridor entrance; when the window closes mid-mission the
    follower *rushes back* to re-acquire its slot -- and a lead battery
    fail-safe flying home through the corridor meets it head-on.  The
    latched equivalent of the same scenario keeps the follower parked
    clear of the fail-safe's path: the separation violation genuinely
    *requires* the recovery.
    """

    #: The recovering beacon dropout: opens one quantum after the lead's
    #: first checkpoint pause, long enough for the follower's hold to
    #: engage, and recovers while the lead is outbound.
    DROPOUT_START_S = 16.3
    DROPOUT_DURATION_S = 20.0
    #: The lead battery fail-safe, during the follower's catch-up rush.
    BATTERY_FAIL_S = 39.3

    def _scenario(self, duration_s):
        return FaultScenario(
            [
                TrafficFaultSpec(
                    0,
                    TrafficFaultKind.DROPOUT,
                    self.DROPOUT_START_S,
                    duration_s=duration_s,
                ),
                FaultSpec(
                    SensorId(SensorType.BATTERY, 0, vehicle=0), self.BATTERY_FAIL_S
                ),
            ]
        )

    def _run(self, convoy_config, convoy_avis, scenario):
        monitor = convoy_avis.monitor
        runner = TestRunner(convoy_config, monitor=monitor)
        monitor.begin_run(scenario)
        return runner.run(scenario)

    def test_recovering_dropout_breaks_separation(
        self, convoy_config, convoy_avis
    ):
        result = self._run(
            convoy_config, convoy_avis, self._scenario(self.DROPOUT_DURATION_S)
        )
        kinds = {condition.kind for condition in result.unsafe_conditions}
        assert UnsafeConditionKind.SEPARATION in kinds
        assert result.min_separation_m < convoy_avis.monitor.separation_threshold_m
        # The channel really recovered before the violation.
        dropout_record = next(
            record
            for record in result.traffic_injections
            if record.fault.kind == TrafficFaultKind.DROPOUT
        )
        assert dropout_record.recovered
        assert dropout_record.recovered_time < self.BATTERY_FAIL_S

    def test_latched_equivalent_stays_separated(
        self, convoy_config, convoy_avis
    ):
        result = self._run(convoy_config, convoy_avis, self._scenario(None))
        kinds = {condition.kind for condition in result.unsafe_conditions}
        assert UnsafeConditionKind.SEPARATION not in kinds
        assert result.min_separation_m > convoy_avis.monitor.separation_threshold_m
        assert not any(
            record.recovered for record in result.traffic_injections
        )


class TestSabreFindsRecoveryWindowHazard:
    """The headline end-to-end: SABRE's burst enumeration finds a
    separation violation on the convoy that *requires* recovering
    dropouts -- the latched equivalent of the found scenario is safe.

    The found hazard is pure recovery-window timing: the first dropout
    parks the follower clear of the corridor; its *recovery* lures the
    follower back in, mid-corridor, rushing to re-acquire its slot; the
    second window then blinds it right there while the lead flies back
    through.  With both dropouts latched the follower just parks clear
    on the first one and the fleet stays separated -- the violation
    exists only because the channel recovers.

    To keep the committed test affordable, the search is stratified on
    the single profiled transition that opens the hazard window (the
    guided transition after the first checkpoint pause) instead of the
    full transition list; SABRE's own feedback loop then discovers the
    second injection time from the bug-free first-level run, exactly as
    the full-budget search would.
    """

    BURST_DURATION_S = 20.0
    #: Simulations the focused search needs to reach the hazard (13 on
    #: the committed physics); the budget adds headroom so a small drift
    #: in the discovery path fails loudly in the assertions, not via
    #: budget exhaustion.
    BUDGET = 16.0

    def _focused_session(self, convoy_config, convoy_avis):
        import copy

        from repro.core.session import BudgetAccount, ExplorationSession

        profile = convoy_avis.profiling_results[0]
        guided = [
            transition
            for transition in profile.mode_transitions
            if transition.label == "guided"
        ][1]
        focused = copy.copy(profile)
        focused.mode_transitions = [guided]
        runner = TestRunner(convoy_config, monitor=convoy_avis.monitor)
        return ExplorationSession(
            runner=runner,
            budget=BudgetAccount(total_units=self.BUDGET),
            profiling_run=focused,
            suite=iris_sensor_suite(),
        )

    def test_sabre_finds_a_violation_that_requires_recovery(
        self, convoy_config, convoy_avis
    ):
        session = self._focused_session(convoy_config, convoy_avis)
        handle = BurstFailure(
            TrafficFailure(0, TrafficFaultKind.DROPOUT), self.BURST_DURATION_S
        )
        SabreSearch(session, failures=[handle], max_concurrent_failures=1).run()

        unsafe = [
            result
            for result in session.results
            if any(
                condition.kind == UnsafeConditionKind.SEPARATION
                for condition in result.unsafe_conditions
            )
        ]
        assert unsafe, "SABRE found no separation violation in the budget"
        found = unsafe[0]
        dropouts = found.scenario.traffic_faults
        assert len(dropouts) == 2
        assert all(fault.duration_s == self.BURST_DURATION_S for fault in dropouts)
        # The violation post-dates the first window's recovery: the
        # hazard needs the channel to have come back.
        first_recovery = min(fault.end_time for fault in dropouts)
        separation_times = [
            condition.time
            for condition in found.unsafe_conditions
            if condition.kind == UnsafeConditionKind.SEPARATION
        ]
        assert min(separation_times) >= first_recovery
        # The channel's injection log recorded that recovery.
        assert any(record.recovered for record in found.traffic_injections)

        # ... and the latched equivalent of the found scenario is safe:
        # with no recovery the follower parks clear of the corridor.
        latched = FaultScenario(
            [
                TrafficFaultSpec(
                    fault.vehicle, fault.kind, fault.start_time, fault.extra_delay_s
                )
                for fault in dropouts
            ]
        )
        runner = TestRunner(convoy_config, monitor=convoy_avis.monitor)
        twin = runner.run(latched)
        assert not any(
            condition.kind == UnsafeConditionKind.SEPARATION
            for condition in twin.unsafe_conditions
        )
        assert twin.min_separation_m > convoy_avis.monitor.separation_threshold_m


class TestSabreBurstEnumeration:
    def _session(self, budget=50.0):
        from test_sabre_strategies import make_session

        return make_session(budget_units=budget)

    def test_no_bursts_means_the_exact_latched_variant_list(self):
        search = SabreSearch(self._session(), failures=[GPS, BARO])
        assert search.variants == [
            (subset, None) for subset in search.subsets
        ]
        assert search.burst_durations == []

    def test_burst_variants_follow_the_latched_prefix(self):
        search = SabreSearch(
            self._session(), failures=[GPS, BARO], burst_durations=[3.0]
        )
        latched = [(subset, None) for subset in search.subsets]
        bursts = [(subset, 3.0) for subset in search.subsets]
        assert search.variants == latched + bursts

    def test_burst_durations_must_be_positive(self):
        with pytest.raises(ValueError):
            SabreSearch(self._session(), failures=[GPS], burst_durations=[-1.0])

    def test_burst_handles_and_burst_durations_are_mutually_exclusive(self):
        handle = BurstFailure(GPS, 3.0)
        with pytest.raises(ValueError, match="not both"):
            SabreSearch(
                self._session(), failures=[handle], burst_durations=[5.0]
            )
        # Pre-burst handles alone are fine.
        SabreSearch(self._session(), failures=[handle])

    def test_default_campaign_is_bit_identical_with_empty_bursts(self):
        plain = self._session()
        SabreSearch(plain, failures=[GPS, BARO], max_concurrent_failures=1).run()
        windowed = self._session()
        SabreSearch(
            windowed,
            failures=[GPS, BARO],
            max_concurrent_failures=1,
            burst_durations=(),
        ).run()
        assert [str(r.scenario) for r in windowed.results] == [
            str(r.scenario) for r in plain.results
        ]
        assert windowed.budget.spent_units == plain.budget.spent_units

    def test_bursts_that_outlive_the_mission_are_skipped(self):
        # Mission duration is 30s (see profiling_run): a 1000s burst can
        # never recover in-run, so every burst variant is skipped as
        # latched-equivalent and only the latched scenarios simulate.
        session = self._session()
        search = SabreSearch(
            session,
            failures=[GPS],
            max_concurrent_failures=1,
            burst_durations=[1000.0],
        )
        search.run()
        assert all(
            fault.duration_s is None
            for result in session.results
            for fault in result.scenario.faults
        )
        assert search.report.pruned > 0

    def test_burst_scenarios_are_proposed_and_windowed(self):
        session = self._session(budget=60.0)
        search = SabreSearch(
            session,
            failures=[GPS],
            max_concurrent_failures=1,
            burst_durations=[4.0],
        )
        search.run()
        durations = {
            fault.duration_s
            for result in session.results
            for fault in result.scenario.faults
        }
        assert durations == {None, 4.0}

    def test_avis_strategy_threads_burst_durations(self):
        strategy = AvisStrategy(failures=[GPS], burst_durations=(2.0,))
        search = strategy._make_search(self._session())
        assert search.burst_durations == [2.0]


class TestBfiBurstEnumeration:
    def _session(self, budget=80.0):
        from test_sabre_strategies import make_session

        return make_session(budget_units=budget)

    def test_stratified_bfi_default_stream_is_unchanged(self):
        session = self._session()
        plain = list(StratifiedBFI()._candidate_stream(session))
        assert all(duration is None for (_, _, _, duration) in plain)

    def test_stratified_bfi_sweeps_windows_after_latched(self):
        session = self._session()
        stream = list(
            StratifiedBFI(burst_durations=(5.0,))._candidate_stream(session)
        )
        first_time = stream[0][0]
        per_site = [entry for entry in stream if entry[0] == first_time]
        half = len(per_site) // 2
        assert all(entry[3] is None for entry in per_site[:half])
        assert all(entry[3] == 5.0 for entry in per_site[half:])

    def test_windows_longer_than_the_mission_are_dropped(self):
        session = self._session()  # 30s mission
        stream = list(
            StratifiedBFI(burst_durations=(1000.0,))._candidate_stream(session)
        )
        assert all(duration is None for (_, _, _, duration) in stream)

    def test_bfi_explores_burst_scenarios(self):
        session = self._session(budget=200.0)
        strategy = BayesianFaultInjection(
            candidate_granularity_s=5.0, burst_durations=(4.0,)
        )
        strategy.explore(session)
        durations = {
            fault.duration_s
            for result in session.results
            for fault in result.scenario.faults
        }
        assert 4.0 in durations

    def test_bfi_rejects_non_positive_windows(self):
        with pytest.raises(ValueError):
            StratifiedBFI(burst_durations=(0.0,))
        with pytest.raises(ValueError):
            BayesianFaultInjection(burst_durations=(-2.0,))


class TestBurstCli:
    def _args(self, argv):
        from repro.engine.cli import build_parser

        return build_parser().parse_args(argv)

    def test_burst_duration_builds_windowed_avis_cells(self):
        from repro.engine.cli import build_cells

        cells = build_cells(
            self._args(
                [
                    "--workload", "convoy",
                    "--fleet-size", "2",
                    "--traffic-faults",
                    "--burst-duration", "20",
                    "--strategy", "avis",
                    "--budget", "5",
                ]
            )
        )
        assert len(cells) == 1
        cell = cells[0]
        assert cell.cell_id == "ardupilot/convoy@fleet2+traffic/avis+burst20/5"
        strategy = cell.strategy_factory()
        assert strategy._burst_durations == (20.0,)
        assert strategy._include_traffic

    def test_burst_duration_reaches_the_bfi_family(self):
        from repro.engine.cli import build_cells

        cells = build_cells(
            self._args(
                [
                    "--strategy", "stratified-bfi", "bfi",
                    "--burst-duration", "5", "10",
                    "--budget", "5",
                ]
            )
        )
        assert [cell.cell_id for cell in cells] == [
            "ardupilot/waypoint/stratified-bfi+burst5,10/5",
            "ardupilot/waypoint/bfi+burst5,10/5",
        ]
        for cell in cells:
            assert cell.strategy_factory()._burst_durations == (5.0, 10.0)

    def test_default_cell_ids_are_unchanged_without_the_flag(self):
        from repro.engine.cli import build_cells

        cells = build_cells(
            self._args(["--strategy", "avis", "--budget", "5"])
        )
        assert cells[0].cell_id == "ardupilot/waypoint/avis/5"

    def test_burst_duration_rejects_unsupported_strategies(self):
        from repro.engine.cli import build_cells

        with pytest.raises(ValueError, match="burst-duration"):
            build_cells(
                self._args(
                    ["--strategy", "random", "--burst-duration", "5", "--budget", "5"]
                )
            )

    def test_burst_duration_rejects_non_positive_values(self):
        from repro.engine.cli import build_cells

        with pytest.raises(ValueError, match="positive"):
            build_cells(
                self._args(
                    ["--strategy", "avis", "--burst-duration", "0", "--budget", "5"]
                )
            )


class TestRecoveryToleranceWindows:
    def test_windows_cover_active_span_plus_grace(self):
        scenario = FaultScenario(
            [
                FaultSpec(GPS, 2.0, duration_s=3.0),
                FaultSpec(BARO, 10.0),
            ]
        )
        windows = recovery_tolerance_windows(scenario, 8.0)
        assert windows == [(2.0, 13.0)]
        assert recovery_tolerance_windows(None, 8.0) == []
        assert recovery_tolerance_windows(FaultScenario(), 8.0) == []

    def _diverged_sample(self, time, index):
        from repro.core.runner import TraceSample

        return TraceSample(
            index=index,
            time=time,
            position=(500.0, 500.0, 40.0),
            acceleration=(0.0, 0.0, 0.0),
            velocity=(0.0, 0.0, 0.0),
            mode_label="takeoff",
            altitude=40.0,
            on_ground=False,
            armed=True,
        )

    def test_offline_divergence_inside_the_window_is_tolerated(self):
        monitor = InvariantMonitor([make_run_result()])
        result = make_run_result(
            scenario=FaultScenario([FaultSpec(GPS, 0.2, duration_s=0.4)])
        )
        # Divergence at t=0.5: inside [0.2, 0.6 + grace].
        result.trace = list(result.trace)
        result.trace[5] = self._diverged_sample(0.5, 5)
        conditions = monitor.evaluate(result)
        assert not any(
            condition.kind == UnsafeConditionKind.LIVELINESS
            for condition in conditions
        )

    def test_offline_divergence_past_the_grace_still_latches(self):
        monitor = InvariantMonitor([make_run_result()])
        late = 0.2 + 0.4 + monitor.RECOVERY_GRACE_S + 0.5
        result = make_run_result(
            scenario=FaultScenario([FaultSpec(GPS, 0.2, duration_s=0.4)]),
            trace=make_trace(
                [(0.0, 0.0, float(i)) for i in range(int(late * 10) + 10)]
            ),
        )
        index = int(late * 10)
        result.trace[index] = self._diverged_sample(result.trace[index].time, index)
        conditions = monitor.evaluate(result)
        assert any(
            condition.kind == UnsafeConditionKind.LIVELINESS
            for condition in conditions
        )

    def test_windows_outliving_the_run_earn_no_tolerance(self):
        # A burst whose recovery never landed inside the run behaved
        # exactly like its latched twin -- the offline verdict must be
        # the latched one.
        monitor = InvariantMonitor([make_run_result()])
        scenario = FaultScenario([FaultSpec(GPS, 0.2, duration_s=500.0)])
        result = make_run_result(scenario=scenario)
        result.trace = list(result.trace)
        result.trace[5] = self._diverged_sample(0.5, 5)
        conditions = monitor.evaluate(result)
        assert any(
            condition.kind == UnsafeConditionKind.LIVELINESS
            for condition in conditions
        )
        assert recovery_tolerance_windows(scenario, 8.0, result.duration_s) == []

    def test_latched_scenarios_are_judged_exactly_as_before(self):
        monitor = InvariantMonitor([make_run_result()])
        result = make_run_result(
            scenario=FaultScenario([FaultSpec(GPS, 0.2)])
        )
        result.trace = list(result.trace)
        result.trace[5] = self._diverged_sample(0.5, 5)
        conditions = monitor.evaluate(result)
        assert any(
            condition.kind == UnsafeConditionKind.LIVELINESS
            for condition in conditions
        )

    def test_online_progress_stall_inside_the_window_is_tolerated(self):
        monitor = InvariantMonitor([make_run_result()])
        stuck = make_trace([(30.0, 0.0, 20.0)] * 120, ["rtl"] * 120, sample_period=0.1)
        # Latched: the stall is flagged.
        monitor.begin_run(FaultScenario([FaultSpec(GPS, 0.0)]))
        flagged = [monitor.check_vehicle_sample(1, sample) for sample in stuck]
        assert any(violation is not None for violation in flagged)
        # A window covering the whole stall: tolerated.
        monitor.begin_run(FaultScenario([FaultSpec(GPS, 0.0, duration_s=12.0)]))
        tolerated = [monitor.check_vehicle_sample(1, sample) for sample in stuck]
        assert all(violation is None for violation in tolerated)

    def test_online_stall_outlasting_the_grace_is_flagged(self):
        monitor = InvariantMonitor([make_run_result()])
        # 30s stalled in RTL; window [0, 1 + 8]: judged again after 9s.
        stuck = make_trace([(30.0, 0.0, 20.0)] * 300, ["rtl"] * 300, sample_period=0.1)
        monitor.begin_run(FaultScenario([FaultSpec(GPS, 0.0, duration_s=1.0)]))
        flagged = [monitor.check_vehicle_sample(1, sample) for sample in stuck]
        assert any(violation is not None for violation in flagged)

    def test_separation_is_never_tolerated(self):
        from repro.sim.simulator import ProximityEvent

        profile = make_run_result()
        profile.fleet_size = 2
        profile.min_separation_m = 10.0
        monitor = InvariantMonitor([profile])
        assert monitor.separation_threshold_m is not None
        result = make_run_result(
            scenario=FaultScenario([FaultSpec(GPS, 0.0, duration_s=5.0)])
        )
        result.fleet_size = 2
        result.proximity_events = [
            ProximityEvent(
                time=2.0,
                vehicle_a=0,
                vehicle_b=1,
                distance_m=1.0,
                position_a=(0.0, 0.0, 10.0),
                position_b=(0.0, 1.0, 10.0),
            )
        ]
        conditions = monitor.evaluate(result)
        assert any(
            condition.kind == UnsafeConditionKind.SEPARATION
            for condition in conditions
        )
