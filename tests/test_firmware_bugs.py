"""Unit tests for the bug catalogue and registry."""

import pytest

from repro.firmware.bugs import (
    ARDUPILOT_LATENT_BUGS,
    KNOWN_BUGS,
    PX4_LATENT_BUGS,
    BugRegistry,
    BugSymptom,
    BugTrigger,
    all_table2_bugs,
    all_table5_bugs,
    ardupilot_bug_registry,
    px4_bug_registry,
)
from repro.sensors.base import SensorType


class TestCatalogue:
    def test_table2_has_ten_bugs_six_ardupilot_four_px4(self):
        bugs = all_table2_bugs()
        assert len(bugs) == 10
        assert sum(1 for bug in bugs if bug.firmware == "ardupilot") == 6
        assert sum(1 for bug in bugs if bug.firmware == "px4") == 4

    def test_table5_has_five_known_bugs(self):
        bugs = all_table5_bugs()
        assert len(bugs) == 5
        assert all(bug.known for bug in bugs)
        assert {bug.bug_id for bug in bugs} == {
            "APM-4455",
            "APM-4679",
            "APM-5428",
            "APM-9349",
            "PX4-13291",
        }

    def test_symptom_distribution_matches_table2(self):
        symptoms = {bug.bug_id: bug.symptom for bug in all_table2_bugs()}
        assert symptoms["APM-16020"] == BugSymptom.FLY_AWAY
        assert symptoms["APM-16021"] == BugSymptom.CRASH
        assert symptoms["PX4-17192"] == BugSymptom.TAKEOFF_FAILURE
        crash_count = sum(1 for s in symptoms.values() if s == BugSymptom.CRASH)
        assert crash_count == 5

    def test_two_bugs_are_developer_confirmed(self):
        confirmed = [bug for bug in all_table2_bugs() if bug.developer_confirmed]
        assert len(confirmed) == 2

    def test_joint_failure_bug_requires_gps(self):
        px4_13291 = next(bug for bug in KNOWN_BUGS if bug.bug_id == "PX4-13291")
        assert SensorType.GPS in px4_13291.trigger.requires_failed_types


class TestTriggerMatching:
    def test_mode_and_altitude_window(self):
        trigger = BugTrigger(
            sensor_type=SensorType.ACCELEROMETER,
            mode_labels=frozenset({"takeoff"}),
            min_altitude=3.0,
        )
        assert trigger.matches(
            SensorType.ACCELEROMETER, "takeoff", 10.0, frozenset(), True
        )
        assert not trigger.matches(
            SensorType.ACCELEROMETER, "takeoff", 1.0, frozenset(), True
        )
        assert not trigger.matches(
            SensorType.ACCELEROMETER, "land", 10.0, frozenset(), True
        )
        assert not trigger.matches(SensorType.GPS, "takeoff", 10.0, frozenset(), True)

    def test_prefix_matching_for_waypoint_legs(self):
        trigger = BugTrigger(
            sensor_type=SensorType.COMPASS,
            mode_labels=frozenset({"waypoint-"}),
            prefix_match=True,
        )
        assert trigger.matches(SensorType.COMPASS, "waypoint-3", 20.0, frozenset(), True)
        assert not trigger.matches(SensorType.COMPASS, "rtl", 20.0, frozenset(), True)

    def test_primary_only(self):
        trigger = BugTrigger(sensor_type=SensorType.COMPASS)
        assert not trigger.matches(SensorType.COMPASS, "takeoff", 5.0, frozenset(), False)
        relaxed = BugTrigger(sensor_type=SensorType.COMPASS, primary_only=False)
        assert relaxed.matches(SensorType.COMPASS, "takeoff", 5.0, frozenset(), False)

    def test_joint_failure_requirement(self):
        trigger = BugTrigger(
            sensor_type=SensorType.BATTERY,
            requires_failed_types=frozenset({SensorType.GPS}),
        )
        assert not trigger.matches(SensorType.BATTERY, "waypoint-1", 20.0, frozenset(), True)
        assert trigger.matches(
            SensorType.BATTERY,
            "waypoint-1",
            20.0,
            frozenset({SensorType.GPS, SensorType.BATTERY}),
            True,
        )

    def test_seconds_into_mode_window(self):
        trigger = BugTrigger(
            sensor_type=SensorType.COMPASS,
            max_seconds_into_mode=3.0,
        )
        assert trigger.matches(
            SensorType.COMPASS, "waypoint-1", 20.0, frozenset(), True, seconds_into_mode=1.0
        )
        assert not trigger.matches(
            SensorType.COMPASS, "waypoint-1", 20.0, frozenset(), True, seconds_into_mode=5.0
        )


class TestRegistry:
    def test_latent_enabled_known_disabled_by_default(self):
        registry = ardupilot_bug_registry()
        assert registry.is_enabled("APM-16020")
        assert not registry.is_enabled("APM-4679")

    def test_reinsert_and_disable(self):
        registry = ardupilot_bug_registry()
        registry.reinsert("APM-4679")
        assert registry.is_enabled("APM-4679")
        registry.disable("APM-16020")
        assert not registry.is_enabled("APM-16020")
        registry.disable_all()
        assert not registry.enabled_descriptors

    def test_reinsert_unknown_bug_raises(self):
        registry = ardupilot_bug_registry()
        with pytest.raises(KeyError):
            registry.reinsert("APM-0000")

    def test_duplicate_registration_rejected(self):
        registry = BugRegistry(ARDUPILOT_LATENT_BUGS)
        with pytest.raises(ValueError):
            registry.add(ARDUPILOT_LATENT_BUGS[0])

    def test_match_records_trigger_events(self):
        registry = ardupilot_bug_registry()
        matches = registry.match(
            sensor_type=SensorType.BAROMETER,
            mode_label="takeoff",
            altitude=1.0,
            failed_types=frozenset({SensorType.BAROMETER}),
            was_active_instance=True,
            time=4.0,
        )
        assert [bug.bug_id for bug in matches] == ["APM-16027"]
        assert registry.triggered_bug_ids == ["APM-16027"]
        assert "APM-16027" in registry.trigger_events[0].describe()

    def test_px4_registry_contains_only_px4_bugs(self):
        registry = px4_bug_registry()
        assert all(bug.firmware == "px4" for bug in registry.descriptors)
        assert registry.is_enabled("PX4-17046")
        assert not registry.is_enabled("PX4-13291")

    def test_disabled_bug_never_matches(self):
        registry = ardupilot_bug_registry()
        registry.disable("APM-16027")
        matches = registry.match(
            sensor_type=SensorType.BAROMETER,
            mode_label="takeoff",
            altitude=1.0,
            failed_types=frozenset({SensorType.BAROMETER}),
            was_active_instance=True,
            time=4.0,
        )
        assert matches == []
