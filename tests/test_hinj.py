"""Unit tests for the hinj (libhinj-equivalent) layer."""

import pytest

from repro.hinj import (
    FaultScenario,
    FaultScheduler,
    FaultSpec,
    HinjInterface,
    ModeTransition,
    scenario_from_pairs,
)
from repro.sensors.base import SensorId, SensorType
from repro.sensors.suite import iris_sensor_suite
from repro.sim.state import VehicleState

GPS = SensorId(SensorType.GPS, 0)
BARO = SensorId(SensorType.BAROMETER, 0)


class TestFaultSpec:
    def test_active_at(self):
        fault = FaultSpec(GPS, 5.0)
        assert not fault.active_at(4.9)
        assert fault.active_at(5.0)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            FaultSpec(GPS, -1.0)

    def test_describe_mentions_sensor_and_time(self):
        text = FaultSpec(GPS, 2.5).describe()
        assert "gps[0]" in text and "2.50" in text


class TestFaultScenario:
    def test_empty_scenario(self):
        scenario = FaultScenario()
        assert scenario.is_empty
        assert scenario.earliest_time is None
        assert not scenario.should_fail(GPS, 100.0)

    def test_set_semantics_and_hashing(self):
        a = FaultScenario([FaultSpec(GPS, 1.0), FaultSpec(BARO, 2.0)])
        b = FaultScenario([FaultSpec(BARO, 2.0), FaultSpec(GPS, 1.0)])
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_should_fail_uses_earliest_fault_per_sensor(self):
        scenario = FaultScenario([FaultSpec(GPS, 5.0), FaultSpec(GPS, 2.0)])
        assert scenario.fault_for(GPS).start_time == 2.0
        assert scenario.should_fail(GPS, 3.0)

    def test_extended_and_shifted(self):
        scenario = FaultScenario([FaultSpec(GPS, 1.0)])
        extended = scenario.extended([FaultSpec(BARO, 2.0)])
        assert len(extended) == 2
        shifted = extended.shifted(-1.5)
        assert shifted.fault_for(GPS).start_time == 0.0
        assert shifted.fault_for(BARO).start_time == pytest.approx(0.5)

    def test_sensor_types_deduplicated(self):
        scenario = scenario_from_pairs([(GPS, 1.0), (GPS, 4.0), (BARO, 2.0)])
        assert scenario.sensor_types == [SensorType.GPS, SensorType.BAROMETER] or set(
            scenario.sensor_types
        ) == {SensorType.GPS, SensorType.BAROMETER}

    def test_describe_golden(self):
        assert "golden" in FaultScenario().describe()


class TestFaultScheduler:
    def test_injects_at_scheduled_time(self):
        scheduler = FaultScheduler(FaultScenario([FaultSpec(GPS, 3.0)]))
        assert not scheduler.should_fail(GPS, 2.0)
        assert scheduler.should_fail(GPS, 3.1)
        assert scheduler.injections[0].sensor_id == GPS
        assert scheduler.injections[0].injected_time == pytest.approx(3.1)
        assert scheduler.injections[0].delay == pytest.approx(0.1)

    def test_ignores_unscheduled_sensors(self):
        scheduler = FaultScheduler(FaultScenario([FaultSpec(GPS, 3.0)]))
        assert not scheduler.should_fail(BARO, 10.0)

    def test_pending_faults(self):
        scheduler = FaultScheduler(FaultScenario([FaultSpec(GPS, 3.0), FaultSpec(BARO, 8.0)]))
        scheduler.should_fail(GPS, 4.0)
        assert scheduler.pending_faults(4.0) == [BARO]

    def test_load_scenario_resets(self):
        scheduler = FaultScheduler(FaultScenario([FaultSpec(GPS, 1.0)]))
        scheduler.should_fail(GPS, 2.0)
        scheduler.load_scenario(FaultScenario())
        assert not scheduler.injections
        assert scheduler.query_count == 0


class TestHinjInterface:
    def test_mode_transitions_recorded_once(self):
        hinj = HinjInterface()
        hinj.update_mode("preflight", 0.0)
        hinj.update_mode("preflight", 0.5)
        hinj.update_mode("takeoff", 1.0)
        assert [t.label for t in hinj.transitions] == ["preflight", "takeoff"]
        assert hinj.current_mode == "takeoff"

    def test_mode_at(self):
        hinj = HinjInterface()
        hinj.update_mode("preflight", 0.0)
        hinj.update_mode("takeoff", 2.0)
        assert hinj.mode_at(1.0) == "preflight"
        assert hinj.mode_at(2.5) == "takeoff"

    def test_mode_listener(self):
        hinj = HinjInterface()
        seen = []
        hinj.add_mode_listener(lambda transition: seen.append(transition.label))
        hinj.update_mode("takeoff", 1.0)
        assert seen == ["takeoff"]

    def test_install_instruments_suite(self):
        scheduler = FaultScheduler(FaultScenario([FaultSpec(GPS, 0.0)]))
        hinj = HinjInterface(scheduler)
        suite = iris_sensor_suite()
        hinj.install(suite)
        readings = suite.read_all(VehicleState(), 1.0)
        assert readings[GPS].failed
        assert not readings[BARO].failed

    def test_transition_describe(self):
        transition = ModeTransition(time=3.0, label="takeoff", previous="preflight")
        assert "preflight -> takeoff" in transition.describe()
