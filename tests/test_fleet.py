"""Tests for fleet campaigns: namespacing, simulation, invariants, engine."""

import math

import pytest

from conftest import make_run_result

from repro.core.avis import Avis, CampaignResult
from repro.core.config import RunConfiguration
from repro.core.monitor import InvariantMonitor, UnsafeCondition, UnsafeConditionKind
from repro.core.runner import TestRunner
from repro.core.strategies import RandomInjection
from repro.engine.cache import (
    config_fingerprint,
    scenario_fingerprint,
    scenario_key,
)
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.firmware.modes import OperatingModeLabel
from repro.hinj.faults import (
    FaultScenario,
    FaultSpec,
    TrafficFaultKind,
    TrafficFaultSpec,
)
from repro.sensors.base import SensorId, SensorType
from repro.sim.physics import ActuatorCommand
from repro.sim.simulator import Simulator
from repro.workloads.fleet import (
    ConvoyFollowWorkload,
    CrossingPathsWorkload,
    MultiPadTakeoffLandWorkload,
)


@pytest.fixture(scope="session")
def convoy_config() -> RunConfiguration:
    """A two-vehicle convoy mission on ArduPilot."""
    return RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: ConvoyFollowWorkload(),
        fleet_size=2,
        max_sim_time_s=160.0,
    )


@pytest.fixture(scope="session")
def convoy_avis(convoy_config) -> Avis:
    """An Avis instance profiled on the convoy mission."""
    avis = Avis(convoy_config, profiling_runs=2, budget_units=20.0)
    avis.profile()
    return avis


class TestSensorNamespace:
    def test_vehicle_zero_labels_unchanged(self):
        sensor_id = SensorId(SensorType.GPS, 0)
        assert sensor_id.vehicle == 0
        assert sensor_id.label == "gps[0]"
        assert sensor_id.base is sensor_id
        assert sensor_id.for_vehicle(0) is sensor_id

    def test_namespaced_labels_and_base(self):
        sensor_id = SensorId(SensorType.COMPASS, 1, vehicle=2)
        assert sensor_id.label == "v2:compass[1]"
        assert sensor_id.base == SensorId(SensorType.COMPASS, 1)
        assert sensor_id.for_vehicle(0) == sensor_id.base

    def test_ordering_groups_by_vehicle(self):
        ids = [
            SensorId(SensorType.GPS, 0, vehicle=1),
            SensorId(SensorType.BAROMETER, 0),
            SensorId(SensorType.GPS, 0),
        ]
        ordered = sorted(ids)
        assert [i.vehicle for i in ordered] == [0, 0, 1]

    def test_negative_vehicle_rejected(self):
        with pytest.raises(ValueError):
            SensorId(SensorType.GPS, 0, vehicle=-1)


class TestScenarioNamespace:
    def _gps(self, vehicle=0):
        return SensorId(SensorType.GPS, 0, vehicle=vehicle)

    def test_vehicle_view_projects_to_base_ids(self):
        scenario = FaultScenario(
            [
                FaultSpec(self._gps(0), 2.0),
                FaultSpec(self._gps(1), 4.0),
            ]
        )
        assert scenario.vehicles == [0, 1]
        view0 = scenario.vehicle_view(0)
        view1 = scenario.vehicle_view(1)
        assert [f.start_time for f in view0] == [2.0]
        assert [f.start_time for f in view1] == [4.0]
        assert all(f.sensor_id.vehicle == 0 for f in view1)

    def test_vehicle_view_is_identity_for_classic_scenarios(self):
        scenario = FaultScenario([FaultSpec(self._gps(0), 2.0)])
        assert scenario.vehicle_view(0) is scenario

    def test_for_vehicle_renames_every_fault(self):
        scenario = FaultScenario([FaultSpec(self._gps(0), 2.0)])
        moved = scenario.for_vehicle(3)
        assert [f.sensor_id.vehicle for f in moved] == [3]

    def test_scenario_fingerprints_are_vehicle_aware_and_stable(self):
        classic = FaultScenario([FaultSpec(self._gps(0), 2.0)])
        fleet = FaultScenario([FaultSpec(self._gps(1), 2.0)])
        # Classic fingerprints render without any vehicle prefix, so
        # fleet support cannot perturb existing cache keys.
        assert scenario_fingerprint(classic) == "gps[0]@2.0"
        assert scenario_fingerprint(fleet) == "v1:gps[0]@2.0"
        assert scenario_fingerprint(fleet) != scenario_fingerprint(classic)

    def test_classic_config_fingerprint_has_no_fleet_terms(self, short_auto_config):
        fingerprint = config_fingerprint(short_auto_config, "auto")
        assert "fleet" not in fingerprint
        fleet_config = RunConfiguration(
            firmware_class=ArduPilotFirmware, fleet_size=2
        )
        assert "fleet_size=2" in config_fingerprint(fleet_config, "auto")

    def test_fleet_scenario_keys_differ_per_vehicle(self, convoy_config):
        key0 = scenario_key(
            convoy_config, "convoy", FaultScenario([FaultSpec(self._gps(0), 2.0)])
        )
        key1 = scenario_key(
            convoy_config, "convoy", FaultScenario([FaultSpec(self._gps(1), 2.0)])
        )
        assert key0 != key1


class TestFleetSimulator:
    def test_vehicles_spawn_on_offset_pads(self):
        simulator = Simulator(dt=0.02, fleet_size=3, pad_spacing_m=10.0)
        east = [state.position[1] for state in simulator.states]
        assert east == [0.0, 10.0, 20.0]
        assert all(state.on_ground for state in simulator.states)

    def test_step_fleet_requires_one_command_per_vehicle(self):
        simulator = Simulator(dt=0.02, fleet_size=2)
        with pytest.raises(ValueError):
            simulator.step_fleet([ActuatorCommand()])

    def test_proximity_event_and_min_separation(self):
        simulator = Simulator(
            dt=0.02, fleet_size=2, pad_spacing_m=4.0, proximity_threshold_m=5.0
        )
        # Teleport both vehicles airborne, 4 m apart, and hover them.
        simulator._fleet_physics[0].teleport((0.0, 0.0, 10.0))
        simulator._fleet_physics[1].teleport((0.0, 4.0, 10.0))
        hover = ActuatorCommand(throttle=0.49, armed=True)
        simulator.step_fleet([hover, hover])
        assert simulator.min_separation_m == pytest.approx(4.0, abs=0.2)
        assert len(simulator.proximity_events) == 1
        event = simulator.proximity_events[0]
        assert (event.vehicle_a, event.vehicle_b) == (0, 1)
        # Staying inside the conflict must not log another event.
        simulator.step_fleet([hover, hover])
        assert len(simulator.proximity_events) == 1

    def test_grounded_vehicles_are_not_conflicts(self):
        simulator = Simulator(
            dt=0.02, fleet_size=2, pad_spacing_m=1.0, proximity_threshold_m=5.0
        )
        simulator.step_fleet([ActuatorCommand(), ActuatorCommand()])
        assert simulator.proximity_events == []
        assert simulator.min_separation_m is None


class TestFleetWorkloads:
    @pytest.mark.parametrize(
        "factory,fleet_size",
        [
            (lambda: CrossingPathsWorkload(), 2),
            (lambda: MultiPadTakeoffLandWorkload(), 3),
        ],
    )
    def test_golden_runs_pass_with_healthy_separation(self, factory, fleet_size):
        config = RunConfiguration(
            firmware_class=ArduPilotFirmware,
            workload_factory=factory,
            fleet_size=fleet_size,
            max_sim_time_s=160.0,
        )
        result = TestRunner(config).run()
        assert result.workload_passed
        assert result.fleet_size == fleet_size
        assert set(result.vehicle_traces) == set(range(fleet_size))
        assert result.min_separation_m is not None
        assert result.min_separation_m > 4.0
        assert result.proximity_events == []

    def test_fleet_workload_rejects_single_vehicle_harness(self):
        config = RunConfiguration(
            firmware_class=ArduPilotFirmware,
            workload_factory=lambda: ConvoyFollowWorkload(),
            fleet_size=1,
        )
        result = TestRunner(config).run()
        assert not result.workload_passed
        assert "fleet" in result.workload_result.reason


class TestSeparationInvariant:
    def test_monitor_calibrates_threshold_from_fleet_profiles(self, convoy_avis):
        threshold = convoy_avis.monitor.separation_threshold_m
        golden_min = min(
            run.min_separation_m for run in convoy_avis.profiling_results
        )
        assert threshold is not None
        assert 0.0 < threshold < golden_min

    def test_single_vehicle_profiles_leave_invariant_disabled(self, waypoint_avis):
        assert waypoint_avis.monitor.separation_threshold_m is None

    def test_blind_follower_during_lead_failsafe_breaks_separation(
        self, convoy_config, convoy_avis
    ):
        """A lead fail-safe return plus dropped beacons: the follower
        holds blind in the corridor while the lead flies back through
        its slot -- the coordination hazard the traffic channel opens."""
        monitor = convoy_avis.monitor
        runner = TestRunner(convoy_config, monitor=monitor)
        monitor.begin_run()
        scenario = FaultScenario(
            [
                FaultSpec(SensorId(SensorType.BATTERY, 0, vehicle=0), 18.0),
                TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 18.0),
            ]
        )
        result = runner.run(scenario)
        kinds = {condition.kind for condition in result.unsafe_conditions}
        assert UnsafeConditionKind.SEPARATION in kinds
        assert result.proximity_events
        assert result.min_separation_m < monitor.separation_threshold_m
        assert [record.fault.kind for record in result.traffic_injections] == [
            TrafficFaultKind.DROPOUT
        ]

    def test_live_beacons_let_follower_evade_lead_failsafe(
        self, convoy_config, convoy_avis
    ):
        """With the beacon stream intact the follower retreats ahead of
        the returning lead: the same battery fail-safe alone keeps the
        fleet separated."""
        monitor = convoy_avis.monitor
        runner = TestRunner(convoy_config, monitor=monitor)
        monitor.begin_run()
        scenario = FaultScenario(
            [FaultSpec(SensorId(SensorType.BATTERY, 0, vehicle=0), 18.0)]
        )
        result = runner.run(scenario)
        kinds = {condition.kind for condition in result.unsafe_conditions}
        assert UnsafeConditionKind.SEPARATION not in kinds
        assert result.min_separation_m > monitor.separation_threshold_m

    def test_cache_keys_include_separation_calibration(
        self, convoy_config, convoy_avis, short_auto_config
    ):
        from repro.engine.cache import campaign_fingerprint, workload_fingerprint

        # Fleet campaigns: recorded proximity events depend on the
        # calibrated threshold, so it must be part of the cache key.
        fingerprint = campaign_fingerprint(convoy_config, convoy_avis.monitor)
        assert "separation_threshold" in fingerprint
        assert fingerprint != workload_fingerprint(convoy_config)
        # Classic campaigns keep the exact pre-fleet key term.
        assert campaign_fingerprint(short_auto_config, None) == workload_fingerprint(
            short_auto_config
        )

    def test_fleet_fault_space_doubles(self, convoy_avis):
        from repro.core.session import BudgetAccount, ExplorationSession

        session = ExplorationSession(
            runner=TestRunner(convoy_avis.config),
            budget=BudgetAccount(total_units=10.0),
            profiling_run=convoy_avis.profiling_results[0],
        )
        ids = session.sensor_ids
        assert len(ids) == 2 * len(session._suite.sensor_ids)
        assert sorted({sensor_id.vehicle for sensor_id in ids}) == [0, 1]
        backup = SensorId(SensorType.COMPASS, 1, vehicle=1)
        assert session.sensor_role(backup).value == "backup"


class TestFleetDeterminism:
    def _campaign(self, config, backend, budget=4.0):
        avis = Avis(config, profiling_runs=2, budget_units=budget, backend=backend)
        avis.profile()
        result = avis.check(strategy=RandomInjection(rng_seed=7))
        avis.engine.close()
        return result

    def test_pool_matches_serial_for_fleet_campaigns(self, convoy_config):
        serial = self._campaign(convoy_config, "serial")
        pooled = self._campaign(convoy_config, "pool:2")
        assert [r.scenario for r in pooled.results] == [
            r.scenario for r in serial.results
        ]
        assert [len(r.unsafe_conditions) for r in pooled.results] == [
            len(r.unsafe_conditions) for r in serial.results
        ]
        assert pooled.budget_spent == serial.budget_spent

    def test_fleet_size_one_matches_classic_config(self, short_auto_config):
        # An explicit fleet_size=1 is the same configuration as the
        # classic default: same fingerprints, same campaign results.
        explicit = RunConfiguration(
            firmware_class=short_auto_config.firmware_class,
            workload_factory=short_auto_config.workload_factory,
            max_sim_time_s=short_auto_config.max_sim_time_s,
            fleet_size=1,
        )
        assert config_fingerprint(explicit, "auto") == config_fingerprint(
            short_auto_config, "auto"
        )
        classic = Avis(short_auto_config, profiling_runs=2, budget_units=3.0)
        classic.profile()
        fleet_one = Avis(explicit, profiling_runs=2, budget_units=3.0)
        fleet_one.profile()
        a = classic.check(strategy=RandomInjection(rng_seed=11))
        b = fleet_one.check(strategy=RandomInjection(rng_seed=11))
        assert [r.scenario for r in a.results] == [r.scenario for r in b.results]
        assert a.budget_spent == b.budget_spent
        assert a.unsafe_scenario_count == b.unsafe_scenario_count

    def test_classic_results_have_no_fleet_payload(self, golden_auto_run):
        assert golden_auto_run.fleet_size == 1
        assert golden_auto_run.vehicle_traces == {}
        assert golden_auto_run.proximity_events == []
        assert golden_auto_run.min_separation_m is None


class TestPerModeCounts:
    def _campaign_with_condition(self, condition) -> CampaignResult:
        result = make_run_result()
        result.unsafe_conditions = [condition]
        return CampaignResult(
            strategy_name="stub",
            firmware_name="ardupilot",
            workload_name="stub",
            results=[result],
            simulations=1,
            labels=0,
            budget_spent=1.0,
        )

    def test_unknown_mode_category_gets_its_own_bucket(self):
        condition = UnsafeCondition(
            kind=UnsafeConditionKind.SEPARATION,
            time=1.0,
            mode_label="formation-experimental",
            description="synthetic",
        )
        counts = self._campaign_with_condition(condition).per_mode_counts
        assert counts["other"] == 1
        assert set(counts) >= {"takeoff", "manual", "waypoint", "land", "other"}
        assert sum(counts.values()) == 1

    def test_namespaced_labels_categorise_by_base_label(self):
        assert OperatingModeLabel.mode_category("v1:rtl") == "land"
        assert OperatingModeLabel.mode_category("v2:waypoint-3") == "waypoint"
        condition = UnsafeCondition(
            kind=UnsafeConditionKind.SEPARATION,
            time=1.0,
            mode_label="v1:takeoff",
            description="synthetic",
        )
        counts = self._campaign_with_condition(condition).per_mode_counts
        assert counts["takeoff"] == 1
