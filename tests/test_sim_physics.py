"""Unit tests for the quadcopter physics model."""

import pytest

from repro.sim.environment import Environment, Wind
from repro.sim.physics import ActuatorCommand, GRAVITY, QuadrotorPhysics
from repro.sim.vehicle import IRIS_QUADCOPTER, AirframeParameters


def make_physics(dt: float = 0.02, environment: Environment = None) -> QuadrotorPhysics:
    return QuadrotorPhysics(
        airframe=IRIS_QUADCOPTER,
        environment=environment if environment is not None else Environment(),
        dt=dt,
    )


class TestAirframeParameters:
    def test_hover_throttle_below_one(self):
        assert 0.0 < IRIS_QUADCOPTER.hover_throttle < 1.0

    def test_thrust_to_weight_above_one(self):
        assert IRIS_QUADCOPTER.thrust_to_weight > 1.0

    def test_rejects_underpowered_airframe(self):
        with pytest.raises(ValueError):
            AirframeParameters(
                name="brick",
                mass_kg=2.0,
                arm_length_m=0.2,
                max_thrust_n=10.0,
                max_tilt_rad=0.5,
                drag_coefficient=0.3,
                max_climb_rate_ms=2.0,
                max_descent_rate_ms=2.0,
                max_horizontal_speed_ms=10.0,
                max_yaw_rate_rads=2.0,
            )

    def test_rejects_nonpositive_mass(self):
        with pytest.raises(ValueError):
            AirframeParameters(
                name="ghost",
                mass_kg=0.0,
                arm_length_m=0.2,
                max_thrust_n=10.0,
                max_tilt_rad=0.5,
                drag_coefficient=0.3,
                max_climb_rate_ms=2.0,
                max_descent_rate_ms=2.0,
                max_horizontal_speed_ms=10.0,
                max_yaw_rate_rads=2.0,
            )


class TestGroundBehaviour:
    def test_starts_on_ground(self):
        physics = make_physics()
        assert physics.snapshot().on_ground is True

    def test_disarmed_vehicle_stays_put(self):
        physics = make_physics()
        for _ in range(100):
            state = physics.step(ActuatorCommand(armed=False))
        assert state.position == pytest.approx((0.0, 0.0, 0.0), abs=1e-6)

    def test_low_throttle_does_not_lift_off(self):
        physics = make_physics()
        for _ in range(200):
            state = physics.step(ActuatorCommand(throttle=0.2, armed=True))
        assert state.on_ground is True


class TestFlightDynamics:
    def test_full_throttle_climbs(self):
        physics = make_physics()
        for _ in range(200):
            state = physics.step(ActuatorCommand(throttle=1.0, armed=True))
        assert state.altitude > 5.0
        assert state.climb_rate > 0.0

    def test_hover_throttle_lets_climb_rate_decay(self):
        physics = make_physics()
        # Climb first, then hold hover throttle: the climb rate must decay
        # toward zero (drag is the only vertical damping at hover).
        for _ in range(150):
            physics.step(ActuatorCommand(throttle=0.9, armed=True))
        climb_rate_after_climb = physics.snapshot().climb_rate
        hover = IRIS_QUADCOPTER.hover_throttle
        for _ in range(400):
            state = physics.step(ActuatorCommand(throttle=hover, armed=True))
        assert abs(state.climb_rate) < climb_rate_after_climb * 0.3
        assert not state.on_ground

    def test_pitch_produces_forward_motion(self):
        physics = make_physics()
        for _ in range(100):
            physics.step(ActuatorCommand(throttle=0.9, armed=True))
        for _ in range(200):
            state = physics.step(
                ActuatorCommand(throttle=0.6, target_pitch=0.2, armed=True)
            )
        assert state.position[0] > 2.0

    def test_throttle_cut_causes_freefall_and_impact(self):
        physics = make_physics()
        for _ in range(300):
            physics.step(ActuatorCommand(throttle=1.0, armed=True))
        assert physics.snapshot().altitude > 10.0
        for _ in range(600):
            state = physics.step(ActuatorCommand(throttle=0.0, armed=True))
            if state.on_ground:
                break
        assert state.on_ground is True
        assert physics.last_impact_speed > 2.0

    def test_drag_limits_terminal_speed(self):
        physics = make_physics()
        for _ in range(100):
            physics.step(ActuatorCommand(throttle=0.9, armed=True))
        for _ in range(1500):
            state = physics.step(
                ActuatorCommand(throttle=0.8, target_pitch=0.4, armed=True)
            )
        # Drag must bound the speed to something finite and plausible.
        assert state.ground_speed < 40.0


class TestCommandClamping:
    def test_clamps_throttle_and_tilt(self):
        command = ActuatorCommand(throttle=2.0, target_roll=3.0, target_pitch=-3.0)
        clamped = command.clamped(IRIS_QUADCOPTER)
        assert clamped.throttle == 1.0
        assert clamped.target_roll == IRIS_QUADCOPTER.max_tilt_rad
        assert clamped.target_pitch == -IRIS_QUADCOPTER.max_tilt_rad

    def test_clamps_yaw_rate(self):
        command = ActuatorCommand(target_yaw_rate=100.0)
        clamped = command.clamped(IRIS_QUADCOPTER)
        assert clamped.target_yaw_rate == IRIS_QUADCOPTER.max_yaw_rate_rads


class TestWindEffects:
    def test_wind_pushes_hovering_vehicle(self):
        windy = Environment(wind=Wind(north_ms=6.0))
        physics = make_physics(environment=windy)
        for _ in range(150):
            physics.step(ActuatorCommand(throttle=0.9, armed=True))
        for _ in range(400):
            state = physics.step(
                ActuatorCommand(throttle=IRIS_QUADCOPTER.hover_throttle, armed=True)
            )
        assert state.position[0] > 1.0

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            make_physics(dt=0.0)
