"""Unit tests for the invariant monitor (mode graph, liveliness, safety)."""

import pytest

from conftest import make_run_result, make_trace

from repro.core.liveliness import LivelinessMonitor, rtl_progress_violation
from repro.core.modegraph import ModeGraph
from repro.core.monitor import InvariantMonitor, UnsafeConditionKind, mode_category_of
from repro.core.safety import SafetyMonitor
from repro.hinj.instrumentation import ModeTransition
from repro.sim.simulator import CollisionEvent


def transitions(*labels_and_times):
    result = []
    previous = None
    for label, time in labels_and_times:
        result.append(ModeTransition(time=time, label=label, previous=previous))
        previous = label
    return result


STANDARD_TRANSITIONS = transitions(
    ("preflight", 0.0), ("takeoff", 0.5), ("waypoint-1", 2.0), ("land", 4.0)
)


def straight_up_trace(samples=40, climb_per_sample=0.5, labels=None):
    positions = [(0.0, 0.0, min(i * climb_per_sample, 10.0)) for i in range(samples)]
    if labels is None:
        labels = ["takeoff" if i < 25 else "waypoint-1" for i in range(samples)]
    return make_trace(positions, labels)


class TestModeGraph:
    def test_distances_follow_observed_transitions(self):
        graph = ModeGraph.from_profiling_runs([STANDARD_TRANSITIONS])
        assert graph.distance("preflight", "takeoff") == 1
        assert graph.distance("preflight", "land") == 3
        assert graph.distance("takeoff", "takeoff") == 0

    def test_unknown_mode_is_maximally_far(self):
        graph = ModeGraph.from_profiling_runs([STANDARD_TRANSITIONS])
        assert graph.distance("takeoff", "acro") == graph.diameter + 1

    def test_reverse_direction_uses_undirected_fallback(self):
        graph = ModeGraph.from_profiling_runs([STANDARD_TRANSITIONS])
        assert graph.distance("land", "takeoff") == 2

    def test_diameter(self):
        graph = ModeGraph.from_profiling_runs([STANDARD_TRANSITIONS])
        assert graph.diameter == 3

    def test_modes_and_edges_listed(self):
        graph = ModeGraph.from_profiling_runs([STANDARD_TRANSITIONS])
        assert "waypoint-1" in graph.modes
        assert ("takeoff", "waypoint-1") in graph.edges
        assert "takeoff" in graph.describe()


class TestLivelinessMonitor:
    def make_monitor(self, **kwargs):
        profiles = [
            make_run_result(trace=straight_up_trace(), transitions=STANDARD_TRANSITIONS),
            make_run_result(trace=straight_up_trace(), transitions=STANDARD_TRANSITIONS),
        ]
        return LivelinessMonitor(profiles, **kwargs)

    def test_identical_run_has_no_violation(self):
        monitor = self.make_monitor()
        result = make_run_result(
            trace=straight_up_trace(), transitions=STANDARD_TRANSITIONS
        )
        assert monitor.evaluate(result) == []

    def test_flyaway_is_flagged(self):
        monitor = self.make_monitor()
        positions = [(i * 3.0, 0.0, 10.0) for i in range(40)]
        labels = ["waypoint-1"] * 40
        runaway = make_run_result(
            trace=make_trace(positions, labels), transitions=STANDARD_TRANSITIONS
        )
        violations = monitor.evaluate(runaway)
        assert violations and violations[0].kind == "liveliness"

    def test_safe_mode_excuses_divergence(self):
        monitor = self.make_monitor()
        # Diverged in position but descending in the land fail-safe.
        positions = [(30.0, 0.0, max(10.0 - 0.4 * i, 0.0)) for i in range(40)]
        labels = ["land"] * 40
        run = make_run_result(
            trace=make_trace(positions, labels), transitions=STANDARD_TRANSITIONS
        )
        assert monitor.evaluate(run) == []

    def test_hovering_in_land_failsafe_is_flagged(self):
        monitor = self.make_monitor()
        positions = [(30.0, 0.0, 10.0) for _ in range(80)]
        labels = ["land"] * 80
        run = make_run_result(
            trace=make_trace(positions, labels), transitions=STANDARD_TRANSITIONS
        )
        violations = monitor.evaluate(run)
        assert violations and violations[0].kind == "safe-mode-progress"

    def test_grounded_disarmed_vehicle_is_excused(self):
        monitor = self.make_monitor()
        positions = [(0.0, 0.0, 0.0)] * 40
        labels = ["preflight"] * 40
        run = make_run_result(
            trace=make_trace(positions, labels, armed=False, on_ground=True),
            transitions=STANDARD_TRANSITIONS,
        )
        assert monitor.evaluate(run) == []

    def test_blocked_takeoff_while_armed_is_flagged(self):
        monitor = self.make_monitor()
        positions = [(0.0, 0.0, 0.0)] * 40
        labels = ["takeoff"] * 40
        run = make_run_result(
            trace=make_trace(positions, labels, armed=True, on_ground=True),
            transitions=STANDARD_TRANSITIONS,
        )
        violations = monitor.evaluate(run)
        assert violations and violations[0].kind == "liveliness"

    def test_calibration_floors_apply(self):
        monitor = self.make_monitor(min_position_scale=7.5)
        assert monitor.calibration.position_scale >= 7.5
        assert monitor.calibration.threshold >= 1.5
        assert "tau" in monitor.calibration.describe()

    def test_additional_safe_mode_can_be_declared(self):
        monitor = self.make_monitor()
        monitor.add_safe_mode("loiter")
        assert monitor.is_safe_mode("loiter")


class TestRtlProgressRule:
    def make_sample(self, index, north, altitude):
        return make_trace([(north, 0.0, altitude)], ["rtl"])[0]

    def test_approaching_home_is_progress(self):
        past = self.make_sample(0, 30.0, 20.0)
        current = self.make_sample(1, 20.0, 20.0)
        assert rtl_progress_violation(past, current, 1.0) is None

    def test_receding_is_always_a_violation(self):
        past = self.make_sample(0, 30.0, 20.0)
        current = self.make_sample(1, 50.0, 25.0)
        assert rtl_progress_violation(past, current, 1.0) is not None

    def test_descending_over_home_is_progress(self):
        past = self.make_sample(0, 1.0, 10.0)
        current = self.make_sample(1, 1.0, 5.0)
        assert rtl_progress_violation(past, current, 1.0) is None

    def test_hovering_far_from_home_is_a_violation(self):
        past = self.make_sample(0, 30.0, 20.0)
        current = self.make_sample(1, 30.0, 20.0)
        assert rtl_progress_violation(past, current, 1.0) is not None


class TestSafetyMonitor:
    def test_hard_collision_reported(self):
        collision = CollisionEvent(time=3.0, position=(0.0, 0.0, 0.0), impact_speed=5.0)
        result = make_run_result(collisions=[collision], transitions=STANDARD_TRANSITIONS)
        violations = SafetyMonitor().evaluate(result)
        assert violations and violations[0].kind == "collision"

    def test_soft_touchdown_ignored(self):
        collision = CollisionEvent(time=3.0, position=(0.0, 0.0, 0.0), impact_speed=0.5)
        result = make_run_result(collisions=[collision])
        assert SafetyMonitor().evaluate(result) == []

    def test_firmware_process_death_reported(self):
        result = make_run_result()
        result.firmware_process_alive = False
        violations = SafetyMonitor().evaluate(result)
        assert any(v.kind == "software-crash" for v in violations)


class TestInvariantMonitor:
    def make_monitor(self):
        profiles = [
            make_run_result(trace=straight_up_trace(), transitions=STANDARD_TRANSITIONS),
            make_run_result(trace=straight_up_trace(), transitions=STANDARD_TRANSITIONS),
        ]
        return InvariantMonitor(profiles)

    def test_combines_safety_and_liveliness(self):
        monitor = self.make_monitor()
        collision = CollisionEvent(time=3.0, position=(0.0, 0.0, 0.0), impact_speed=4.0)
        positions = [(i * 3.0, 0.0, 10.0) for i in range(40)]
        run = make_run_result(
            trace=make_trace(positions, ["waypoint-1"] * 40),
            transitions=STANDARD_TRANSITIONS,
            collisions=[collision],
        )
        conditions = monitor.evaluate(run)
        kinds = {condition.kind for condition in conditions}
        assert UnsafeConditionKind.SAFETY_COLLISION in kinds
        assert UnsafeConditionKind.LIVELINESS in kinds
        assert conditions[0].time <= conditions[-1].time

    def test_online_check_sample_flags_divergence(self):
        monitor = self.make_monitor()
        monitor.begin_run()
        diverged = make_trace([(100.0, 0.0, 10.0)], ["waypoint-1"])[0]
        condition = monitor.check_sample(diverged)
        assert condition is not None
        assert condition.kind == UnsafeConditionKind.LIVELINESS

    def test_mode_category_helper(self):
        monitor = self.make_monitor()
        collision = CollisionEvent(time=5.0, position=(0.0, 0.0, 0.0), impact_speed=4.0)
        run = make_run_result(collisions=[collision], transitions=STANDARD_TRANSITIONS)
        condition = monitor.evaluate(run)[0]
        assert mode_category_of(condition) in {"takeoff", "manual", "waypoint", "land"}
