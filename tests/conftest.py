"""Shared fixtures and helpers for the test suite.

Integration fixtures use a short mission (8 m takeoff + land) so full
simulated flights stay in the tens of milliseconds; campaign-level
fixtures are session-scoped so profiling is paid for once.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import pytest

from repro.core.avis import Avis
from repro.core.config import RunConfiguration
from repro.core.runner import RunResult, TestRunner, TraceSample
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.firmware.px4 import Px4Firmware
from repro.hinj.faults import FaultScenario
from repro.hinj.instrumentation import ModeTransition
from repro.workloads.builtin import AutoWorkload, WaypointFenceWorkload
from repro.workloads.framework import WorkloadOutcome, WorkloadResult


def make_trace(
    positions: Sequence[tuple],
    mode_labels: Optional[Sequence[str]] = None,
    sample_period: float = 0.1,
    armed: bool = True,
    on_ground: bool = False,
) -> List[TraceSample]:
    """Build a synthetic trace from a list of positions."""
    samples = []
    for index, position in enumerate(positions):
        label = mode_labels[index] if mode_labels is not None else "takeoff"
        samples.append(
            TraceSample(
                index=index,
                time=index * sample_period,
                position=tuple(position),
                acceleration=(0.0, 0.0, 0.0),
                velocity=(0.0, 0.0, 0.0),
                mode_label=label,
                altitude=position[2],
                on_ground=on_ground,
                armed=armed,
            )
        )
    return samples


def make_run_result(
    trace: Optional[List[TraceSample]] = None,
    transitions: Optional[List[ModeTransition]] = None,
    scenario: Optional[FaultScenario] = None,
    triggered_bugs: Optional[List[str]] = None,
    collisions: Optional[list] = None,
    duration_s: Optional[float] = None,
    workload_outcome: WorkloadOutcome = WorkloadOutcome.PASSED,
) -> RunResult:
    """Build a synthetic RunResult for unit tests."""
    if trace is None:
        trace = make_trace([(0.0, 0.0, float(i)) for i in range(20)])
    if transitions is None:
        transitions = [
            ModeTransition(time=0.0, label="preflight", previous=None),
            ModeTransition(time=0.5, label="takeoff", previous="preflight"),
            ModeTransition(time=1.0, label="land", previous="takeoff"),
        ]
    return RunResult(
        scenario=scenario if scenario is not None else FaultScenario(),
        firmware_name="ardupilot",
        workload_name="synthetic",
        workload_result=WorkloadResult(outcome=workload_outcome),
        trace=trace,
        mode_transitions=transitions,
        collisions=collisions if collisions is not None else [],
        fence_breaches=[],
        injections=[],
        failsafe_events=[],
        triggered_bugs=triggered_bugs if triggered_bugs is not None else [],
        firmware_process_alive=True,
        duration_s=duration_s if duration_s is not None else trace[-1].time,
        steps=len(trace) * 5,
    )


@pytest.fixture(scope="session")
def short_auto_config() -> RunConfiguration:
    """A short AUTO mission (8 m takeoff + land) on ArduPilot."""
    return RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: AutoWorkload(altitude=8.0, init_wait_ms=1000.0),
        max_sim_time_s=90.0,
    )


@pytest.fixture(scope="session")
def short_waypoint_config() -> RunConfiguration:
    """A short waypoint mission (10 m box) on ArduPilot."""
    return RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: WaypointFenceWorkload(
            altitude=10.0, box_side=10.0, init_wait_ms=1000.0
        ),
        max_sim_time_s=120.0,
    )


@pytest.fixture(scope="session")
def short_px4_config() -> RunConfiguration:
    """The short waypoint mission on the PX4 flavour."""
    return RunConfiguration(
        firmware_class=Px4Firmware,
        workload_factory=lambda: WaypointFenceWorkload(
            altitude=10.0, box_side=10.0, init_wait_ms=1000.0
        ),
        max_sim_time_s=120.0,
    )


@pytest.fixture(scope="session")
def golden_auto_run(short_auto_config) -> RunResult:
    """One fault-free run of the short AUTO mission."""
    return TestRunner(short_auto_config).run()


@pytest.fixture(scope="session")
def golden_waypoint_run(short_waypoint_config) -> RunResult:
    """One fault-free run of the short waypoint mission."""
    return TestRunner(short_waypoint_config).run()


@pytest.fixture(scope="session")
def waypoint_avis(short_waypoint_config) -> Avis:
    """An Avis instance profiled on the short waypoint mission."""
    avis = Avis(short_waypoint_config, profiling_runs=2, budget_units=20.0)
    avis.profile()
    return avis
