"""Unit tests for the traffic channel, the coordination fault family,
their hashing/fingerprinting, and the engine's adaptive batch sizing."""

import pytest

from test_sabre_strategies import StubRunner, make_session, profiling_run

from conftest import make_run_result, make_trace

from repro.core.config import RunConfiguration, VehicleSpec
from repro.core.monitor import InvariantMonitor, UnsafeConditionKind
from repro.core.pruning import RedundancyPruner, symmetry_signature
from repro.core.session import BudgetAccount, ExplorationSession
from repro.core.strategies import AvisStrategy
from repro.engine.backends import ExecutionBackend
from repro.engine.cache import (
    ResultCache,
    bug_registry_stamp,
    config_fingerprint,
    scenario_fingerprint,
    scenario_key,
)
from repro.engine.campaign import CampaignEngine, DEFAULT_BATCH_SIZE
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.firmware.px4 import Px4Firmware
from repro.hinj.faults import (
    FaultScenario,
    FaultSpec,
    TrafficFailure,
    TrafficFaultKind,
    TrafficFaultSpec,
    default_traffic_failures,
    spec_for,
)
from repro.mavlink.traffic import TrafficChannel
from repro.sensors.base import SensorId, SensorRole, SensorType
from repro.sensors.suite import iris_sensor_suite
from repro.sim.vehicle import SOLO_QUADCOPTER


def drive(channel, steps, broadcasters, start_time=0.0):
    """Advance ``channel`` like the harness does: one advance per step,
    then every due vehicle broadcasts its (time, position, velocity)."""
    time = start_time
    for _ in range(steps):
        time += channel.dt
        channel.advance()
        if channel.beacon_due():
            for vehicle, state in broadcasters.items():
                position, velocity = state(time)
                channel.broadcast(
                    vehicle, time=time, position=position, velocity=velocity
                )


def moving_north(speed=2.0, altitude=10.0):
    return lambda t: ((speed * t, 0.0, altitude), (speed, 0.0, 0.0))


class TestTrafficChannel:
    def _channel(self, faults=()):
        return TrafficChannel(
            fleet_size=2, dt=0.1, beacon_interval_s=0.2, latency_s=0.1,
            faults=faults,
        )

    def test_beacons_deliver_with_latency(self):
        channel = self._channel()
        drive(channel, 5, {0: moving_north()})
        beacon = channel.latest(1, 0)
        assert beacon is not None
        # The delivered beacon is at least one latency step old.
        assert beacon.time < 0.5
        assert beacon.position[0] == pytest.approx(2.0 * beacon.time)
        assert beacon.velocity[0] == pytest.approx(2.0)
        assert channel.stats["delivered"] >= 1

    def test_own_ship_query_rejected(self):
        channel = self._channel()
        with pytest.raises(ValueError):
            channel.latest(0, 0)

    def test_dropout_stops_delivery_and_records_injection(self):
        fault = TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 0.55)
        channel = self._channel(faults=[fault])
        drive(channel, 20, {0: moving_north()})
        beacon = channel.latest(1, 0)
        # The last delivered beacon predates the dropout.
        assert beacon is not None
        assert beacon.time <= 0.55
        assert channel.beacons_dropped > 0
        records = channel.injections
        assert [record.fault for record in records] == [fault]
        assert records[0].injected_time >= fault.start_time

    def test_freeze_serves_fresh_looking_ghost(self):
        fault = TrafficFaultSpec(0, TrafficFaultKind.FREEZE, 0.55)
        channel = self._channel(faults=[fault])
        drive(channel, 20, {0: moving_north()})
        beacon = channel.latest(1, 0)
        assert beacon is not None
        # Apparently fresh (recent emit time) ...
        assert beacon.time > 1.0
        # ... but the payload is frozen at the pre-fault state, with a
        # zeroed velocity so receivers do not dead-reckon the ghost.
        assert beacon.position[0] <= 2.0 * 0.55 + 1e-9
        assert beacon.velocity == (0.0, 0.0, 0.0)

    def test_delay_adds_latency(self):
        fault = TrafficFaultSpec(0, TrafficFaultKind.DELAY, 0.0, extra_delay_s=0.5)
        delayed = self._channel(faults=[fault])
        healthy = self._channel()
        drive(delayed, 20, {0: moving_north()})
        drive(healthy, 20, {0: moving_north()})
        assert delayed.latest(1, 0).time < healthy.latest(1, 0).time

    def test_faults_on_other_vehicle_leave_sender_clean(self):
        fault = TrafficFaultSpec(1, TrafficFaultKind.DROPOUT, 0.0)
        channel = self._channel(faults=[fault])
        drive(channel, 10, {0: moving_north(), 1: moving_north()})
        assert channel.latest(1, 0) is not None
        assert channel.latest(0, 1) is None


class TestTrafficFaultSpecs:
    def test_labels_are_vehicle_namespaced(self):
        assert TrafficFaultSpec(1, TrafficFaultKind.DROPOUT, 3.0).label == (
            "traffic:v1:dropout"
        )
        assert "delay+2s" in TrafficFaultSpec(
            0, TrafficFaultKind.DELAY, 3.0, extra_delay_s=2.0
        ).label

    def test_spec_for_dispatches_on_handle_type(self):
        sensor = SensorId(SensorType.GPS, 0)
        assert isinstance(spec_for(sensor, 2.0), FaultSpec)
        handle = TrafficFailure(1, TrafficFaultKind.FREEZE)
        spec = spec_for(handle, 2.0)
        assert isinstance(spec, TrafficFaultSpec)
        assert (spec.vehicle, spec.kind, spec.start_time) == (
            1, TrafficFaultKind.FREEZE, 2.0
        )

    def test_default_traffic_failures(self):
        assert default_traffic_failures(1) == []
        handles = default_traffic_failures(2)
        assert len(handles) == 6
        assert sorted({handle.vehicle for handle in handles}) == [0, 1]

    def test_scenario_mixes_sensor_and_traffic_faults(self):
        scenario = FaultScenario(
            [
                TrafficFaultSpec(1, TrafficFaultKind.DROPOUT, 5.0),
                FaultSpec(SensorId(SensorType.GPS, 0), 2.0),
            ]
        )
        assert len(scenario) == 2
        assert scenario.has_traffic_faults
        assert [f.start_time for f in scenario.sensor_faults] == [2.0]
        assert [f.vehicle for f in scenario.traffic_faults] == [1]
        # Sensor faults iterate first, in the classic order.
        assert isinstance(scenario.faults[0], FaultSpec)
        assert scenario.vehicles == [0, 1]
        assert "traffic:v1:dropout" in scenario.describe()

    def test_vehicle_view_excludes_traffic_faults(self):
        scenario = FaultScenario(
            [
                TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 5.0),
                FaultSpec(SensorId(SensorType.GPS, 0), 2.0),
            ]
        )
        view = scenario.vehicle_view(0)
        assert len(view) == 1
        assert not view.has_traffic_faults

    def test_shifted_preserves_traffic_parameters(self):
        scenario = FaultScenario(
            [TrafficFaultSpec(1, TrafficFaultKind.DELAY, 5.0, extra_delay_s=2.0)]
        )
        shifted = scenario.shifted(-1.0)
        fault = shifted.traffic_faults[0]
        assert fault.start_time == 4.0
        assert fault.extra_delay_s == 2.0

    def test_symmetry_signature_keeps_traffic_kinds_distinct(self):
        suite = iris_sensor_suite()
        role_of = lambda sensor_id: suite.role_of(sensor_id.base)  # noqa: E731
        dropout = FaultScenario([TrafficFaultSpec(1, TrafficFaultKind.DROPOUT, 5.0)])
        freeze = FaultScenario([TrafficFaultSpec(1, TrafficFaultKind.FREEZE, 5.0)])
        other_vehicle = FaultScenario(
            [TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 5.0)]
        )
        signatures = {
            symmetry_signature(scenario, role_of)
            for scenario in (dropout, freeze, other_vehicle)
        }
        assert len(signatures) == 3
        pruner = RedundancyPruner(role_of=role_of)
        pruner.record_explored(dropout)
        assert pruner.can_prune(dropout)
        assert not pruner.can_prune(freeze)


class TestTrafficFingerprints:
    def test_scenario_fingerprint_renders_traffic_labels(self):
        scenario = FaultScenario(
            [
                FaultSpec(SensorId(SensorType.GPS, 0), 2.0),
                TrafficFaultSpec(1, TrafficFaultKind.DROPOUT, 5.0),
            ]
        )
        assert scenario_fingerprint(scenario) == (
            "gps[0]@2.0;traffic:v1:dropout@5.0"
        )

    def test_traffic_keys_differ_per_vehicle_and_kind(self):
        config = RunConfiguration(firmware_class=ArduPilotFirmware, fleet_size=2)
        keys = {
            scenario_key(
                config,
                "convoy",
                FaultScenario([TrafficFaultSpec(vehicle, kind, 5.0)]),
            )
            for vehicle in (0, 1)
            for kind in TrafficFaultKind
        }
        assert len(keys) == 6

    def test_schema_version_is_part_of_the_registry_stamp(self, monkeypatch):
        from repro.engine import cache as cache_module

        before = bug_registry_stamp()
        monkeypatch.setattr(cache_module, "CACHE_SCHEMA_VERSION", 99)
        assert cache_module.bug_registry_stamp() != before

    def test_pre_refactor_cache_directories_self_invalidate(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory)
        cache.put("somekey", make_run_result())
        # Simulate a directory written by an older engine: a different
        # (pre-bump) stamp.
        with open(f"{directory}/{ResultCache.VERSION_FILENAME}", "w") as handle:
            handle.write("stale-stamp\n")
        reopened = ResultCache(directory=directory)
        assert reopened.invalidated == 1
        assert reopened.get("somekey") is None


class TestTrafficReplay:
    def test_replay_plan_carries_traffic_faults(self):
        from repro.core.replay import build_replay_plan, resolve_plan
        from repro.mavlink.traffic import TrafficInjectionRecord

        original = make_run_result()
        fault = TrafficFaultSpec(0, TrafficFaultKind.DROPOUT, 0.6)
        original.traffic_injections = [
            TrafficInjectionRecord(
                fault=fault, scheduled_time=0.6, injected_time=0.7
            )
        ]
        plan = build_replay_plan(original)
        assert len(plan.faults) == 1
        anchored = plan.faults[0]
        assert isinstance(anchored.failure, TrafficFailure)
        assert anchored.anchor_label == "takeoff"
        assert "traffic:v0:dropout" in plan.describe()
        scenario = resolve_plan(plan, make_run_result())
        assert scenario.has_traffic_faults
        replayed = scenario.traffic_faults[0]
        assert (replayed.vehicle, replayed.kind) == (0, TrafficFaultKind.DROPOUT)
        assert replayed.start_time == pytest.approx(0.7)


class TestAvisStrategyTrafficMerge:
    def test_explicit_failures_still_gain_traffic_handles(self):
        handles = default_traffic_failures(2)
        session = ExplorationSession(
            runner=StubRunner(),
            budget=BudgetAccount(total_units=10.0),
            profiling_run=profiling_run(),
            suite=iris_sensor_suite(),
            traffic_failures=handles,
        )
        explicit = [SensorId(SensorType.GPS, 0)]
        strategy = AvisStrategy(
            failures=explicit, include_traffic_faults=True
        )
        search = strategy._make_search(session)
        assert search._failures == explicit + handles


class TestHeterogeneousFingerprints:
    def test_explicit_homogeneous_specs_keep_the_scalar_fingerprint(self):
        scalar = RunConfiguration(firmware_class=ArduPilotFirmware, fleet_size=2)
        explicit = RunConfiguration(
            vehicles=(VehicleSpec(), VehicleSpec()),
        )
        assert not explicit.is_heterogeneous
        assert config_fingerprint(explicit, "w") == config_fingerprint(scalar, "w")

    def test_heterogeneous_specs_render_per_vehicle_terms(self):
        config = RunConfiguration(
            vehicles=(
                VehicleSpec(firmware_class=ArduPilotFirmware),
                VehicleSpec(firmware_class=Px4Firmware, airframe=SOLO_QUADCOPTER),
            ),
        )
        assert config.is_heterogeneous
        fingerprint = config_fingerprint(config, "w")
        assert "vehicles=[" in fingerprint
        assert "v1:firmware=px4" in fingerprint
        homogeneous = RunConfiguration(
            firmware_class=ArduPilotFirmware, fleet_size=2
        )
        assert fingerprint != config_fingerprint(homogeneous, "w")

    def test_vehicle_spec_aliases_and_validation(self):
        config = RunConfiguration(
            vehicles=(
                VehicleSpec(firmware_class=Px4Firmware),
                VehicleSpec(firmware_class=ArduPilotFirmware),
            ),
        )
        assert config.fleet_size == 2
        # Scalar aliases follow vehicle 0.
        assert config.firmware_class is Px4Firmware
        assert config.firmware_name == "px4"
        assert config.vehicle_spec(1).firmware_class is ArduPilotFirmware
        with pytest.raises(IndexError):
            config.vehicle_spec(2)
        with pytest.raises(ValueError):
            RunConfiguration(vehicles=())
        with pytest.raises(ValueError):
            RunConfiguration(fleet_size=3, vehicles=(VehicleSpec(), VehicleSpec()))

    def test_with_noise_seed_preserves_vehicles(self):
        config = RunConfiguration(
            vehicles=(VehicleSpec(), VehicleSpec(firmware_class=Px4Firmware)),
        )
        reseeded = config.with_noise_seed(7)
        assert reseeded.vehicles == config.vehicles
        assert reseeded.noise_seed == 7


class TestSessionTrafficSpace:
    def test_traffic_space_is_opt_in(self):
        session = make_session()
        assert session.traffic_failures == []
        assert session.injectable_failures == session.sensor_ids

    def test_opted_in_failures_extend_the_sensor_space(self):
        handles = default_traffic_failures(2)
        session = ExplorationSession(
            runner=StubRunner(),
            budget=BudgetAccount(total_units=10.0),
            profiling_run=profiling_run(),
            suite=iris_sensor_suite(),
            traffic_failures=handles,
        )
        space = session.injectable_failures
        assert space[: len(session.sensor_ids)] == session.sensor_ids
        assert space[len(session.sensor_ids):] == handles


class TestTrafficOptInValidation:
    def test_avis_rejects_traffic_faults_without_a_fleet(self):
        from repro.core.avis import Avis

        with pytest.raises(ValueError):
            Avis(RunConfiguration(), traffic_faults=True)


class TestGuidedSpeedLimit:
    def test_zero_speed_limit_means_hold_not_unlimited(self):
        """speed_limit=0.0 (now publicly reachable via goto_vehicle /
        set_guided_target) must clamp the velocity command to zero, not
        fall through to the airframe maximum."""
        from repro.firmware.estimator import StateEstimate
        from repro.firmware.navigation import NavigationSetpoint, PositionController
        from repro.firmware.params import FirmwareParameters
        from repro.sim.vehicle import IRIS_QUADCOPTER

        controller = PositionController(FirmwareParameters(), IRIS_QUADCOPTER)
        estimate = StateEstimate()
        far_target = dict(target_north=50.0, target_east=0.0)
        roll_capped, pitch_capped = controller.update(
            estimate, NavigationSetpoint(**far_target, speed_limit=0.0)
        )
        assert (roll_capped, pitch_capped) == (0.0, 0.0)
        _, pitch_free = controller.update(
            estimate, NavigationSetpoint(**far_target)
        )
        assert pitch_free > 0.0


class TestFollowerLiveliness:
    def _stuck_rtl_trace(self, count=120):
        samples = make_trace(
            [(30.0, 0.0, 20.0)] * count, ["rtl"] * count, sample_period=0.1
        )
        return samples

    def test_online_follower_progress_violation_is_namespaced(self):
        monitor = InvariantMonitor([make_run_result()])
        monitor.begin_run()
        violation = None
        for sample in self._stuck_rtl_trace():
            violation = monitor.check_vehicle_sample(1, sample)
            if violation is not None:
                break
        assert violation is not None
        assert violation.kind == UnsafeConditionKind.SAFE_MODE_PROGRESS
        assert violation.mode_label == "v1:rtl"
        assert "vehicle 1" in violation.description

    def test_online_follower_tracking_is_per_vehicle(self):
        monitor = InvariantMonitor([make_run_result()])
        monitor.begin_run()
        stuck = self._stuck_rtl_trace()
        # Vehicle 2 progresses (descending in land); vehicle 1 is stuck.
        descending = make_trace(
            [(0.0, 0.0, 20.0 - 0.05 * i) for i in range(120)],
            ["land"] * 120,
            sample_period=0.1,
        )
        v1 = [monitor.check_vehicle_sample(1, sample) for sample in stuck]
        v2 = [monitor.check_vehicle_sample(2, sample) for sample in descending]
        assert any(violation is not None for violation in v1)
        assert all(violation is None for violation in v2)

    def test_offline_evaluation_covers_follower_traces(self):
        monitor = InvariantMonitor([make_run_result()])
        result = make_run_result()
        result.fleet_size = 2
        result.vehicle_traces = {0: result.trace, 1: self._stuck_rtl_trace()}
        conditions = monitor.evaluate(result)
        follower = [c for c in conditions if c.mode_label.startswith("v1:")]
        assert follower
        assert follower[0].kind == UnsafeConditionKind.SAFE_MODE_PROGRESS


class _StubBackend(ExecutionBackend):
    """Executes scenarios through the session's stub runner."""

    name = "stub"

    def __init__(self, runner, max_workers=4):
        self.runner = runner
        self.max_workers = max_workers

    def run_scenarios(self, config, monitor, scenarios, on_result=None):
        return [self.runner.run(scenario) for scenario in scenarios]


class TestAdaptiveBatchSizing:
    def _stub_session(self, budget=30.0):
        runner = StubRunner()
        runner.config = None
        runner.monitor = None
        return make_session(budget_units=budget, runner=runner)

    def test_auto_initial_size_tracks_worker_count(self):
        engine = CampaignEngine(
            backend=_StubBackend(StubRunner(), max_workers=4), batch_size="auto"
        )
        assert engine.auto_batch_size
        assert engine.batch_size == 8

    def test_auto_on_serial_backend_keeps_the_default(self):
        engine = CampaignEngine(batch_size="auto")
        assert engine.batch_size == DEFAULT_BATCH_SIZE

    def test_auto_inflates_when_cache_hits_starve_workers(self):
        engine = CampaignEngine(
            backend=_StubBackend(StubRunner(), max_workers=4), batch_size="auto"
        )
        engine.last_stats = {
            "rounds": 2, "proposed": 16, "cache_hits": 12, "executed": 4,
        }
        assert engine._auto_tuned_size() == 32  # clamped to 8 * workers

    def test_auto_campaign_is_bit_identical_to_fixed(self):
        fixed_session = self._stub_session()
        fixed_engine = CampaignEngine(
            backend=_StubBackend(fixed_session.runner), batch_size=8
        )
        fixed_engine.execute(AvisStrategy(max_scenarios_per_dequeue=4), fixed_session)

        auto_session = self._stub_session()
        auto_engine = CampaignEngine(
            backend=_StubBackend(auto_session.runner), batch_size="auto"
        )
        auto_engine.execute(AvisStrategy(max_scenarios_per_dequeue=4), auto_session)

        assert [str(r.scenario) for r in auto_session.results] == [
            str(r.scenario) for r in fixed_session.results
        ]
        assert (
            auto_session.budget.spent_units == fixed_session.budget.spent_units
        )
        assert auto_engine.last_stats["proposed"] == (
            fixed_engine.last_stats["proposed"]
        )
