"""Unit tests for the MAVLink-like protocol layer."""

import pytest

from repro.mavlink import (
    GroundControlStation,
    Heartbeat,
    MavCommand,
    MavLink,
    MissionAck,
    MissionCount,
    MissionItem,
    MissionPlan,
    MissionRequest,
    MissionUploadState,
    StatusText,
    mission_item,
)
from repro.mavlink.link import drain_messages_of_type
from repro.mavlink.messages import CommandAck, CommandLong, GlobalPosition, MavResult, describe
from repro.mavlink.mission import MissionReceiveState, UploadPhase


class TestMavLink:
    def test_messages_delivered_in_order(self):
        link = MavLink()
        link.gcs_send(Heartbeat(mode="a"))
        link.gcs_send(Heartbeat(mode="b"))
        received = link.vehicle_receive()
        assert [m.mode for m in received] == ["a", "b"]

    def test_delivery_delay(self):
        link = MavLink(delay_steps=2)
        link.gcs_send(Heartbeat(mode="late"))
        assert link.vehicle_receive() == []
        link.advance()
        assert link.vehicle_receive() == []
        link.advance()
        assert len(link.vehicle_receive()) == 1

    def test_capacity_drops_messages(self):
        link = MavLink(capacity=1)
        assert link.gcs_send(Heartbeat())
        assert not link.gcs_send(Heartbeat())
        assert link.to_vehicle_stats.dropped == 1

    def test_directions_are_independent(self):
        link = MavLink()
        link.gcs_send(Heartbeat(mode="to-vehicle"))
        link.vehicle_send(Heartbeat(mode="to-gcs"))
        assert link.pending_to_vehicle == 1
        assert link.pending_to_gcs == 1
        assert link.gcs_receive()[0].mode == "to-gcs"

    def test_drain_messages_of_type(self):
        messages = [Heartbeat(), StatusText(text="x"), Heartbeat()]
        hearts, rest = drain_messages_of_type(messages, Heartbeat)
        assert len(hearts) == 2 and len(rest) == 1

    def test_describe_renders_fields(self):
        assert "HEARTBEAT" in describe(Heartbeat(mode="auto"))


class TestMissionPlan:
    def test_items_are_resequenced(self):
        plan = MissionPlan(
            items=[
                mission_item(7, MavCommand.NAV_TAKEOFF, altitude=20.0),
                mission_item(9, MavCommand.NAV_LAND),
            ]
        )
        assert [item.seq for item in plan.items] == [0, 1]
        assert plan.commands() == [MavCommand.NAV_TAKEOFF, MavCommand.NAV_LAND]

    def test_extended_resequences(self):
        first = MissionPlan(items=[mission_item(0, MavCommand.NAV_TAKEOFF)])
        second = MissionPlan(items=[mission_item(0, MavCommand.NAV_LAND)])
        combined = first.extended(second)
        assert [item.seq for item in combined.items] == [0, 1]


class TestMissionUploadHandshake:
    def test_full_handshake(self):
        plan = MissionPlan(
            items=[
                mission_item(0, MavCommand.NAV_TAKEOFF, altitude=20.0),
                mission_item(1, MavCommand.NAV_LAND),
            ]
        )
        uploader = MissionUploadState(plan)
        receiver = MissionReceiveState()

        count = uploader.start()
        reply = receiver.handle_count(count)
        while isinstance(reply, MissionRequest):
            item = uploader.handle(reply)
            assert item is not None
            reply = receiver.handle_item(item)
        assert isinstance(reply, MissionAck) and reply.accepted
        uploader.handle(reply)
        assert uploader.complete
        received_plan = receiver.take_plan()
        assert received_plan is not None
        assert received_plan.commands() == plan.commands()

    def test_vehicle_rejects_oversized_mission(self):
        receiver = MissionReceiveState(max_items=2)
        reply = receiver.handle_count(MissionCount(count=5))
        assert isinstance(reply, MissionAck) and not reply.accepted

    def test_out_of_order_item_re_requested(self):
        receiver = MissionReceiveState()
        receiver.handle_count(MissionCount(count=2))
        reply = receiver.handle_item(mission_item(1, MavCommand.NAV_LAND))
        assert isinstance(reply, MissionRequest) and reply.seq == 0

    def test_uploader_fails_on_invalid_request(self):
        plan = MissionPlan(items=[mission_item(0, MavCommand.NAV_LAND)])
        uploader = MissionUploadState(plan)
        uploader.start()
        uploader.handle(MissionRequest(seq=5))
        assert uploader.failed
        assert uploader.phase == UploadPhase.FAILED

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError):
            MissionUploadState(MissionPlan())


class TestGroundControlStation:
    def test_digests_heartbeat_and_position(self):
        link = MavLink()
        gcs = GroundControlStation(link)
        link.vehicle_send(Heartbeat(mode="AUTO", armed=True))
        link.vehicle_send(GlobalPosition(relative_altitude=12.5, vz=1.0))
        gcs.poll(time=3.0)
        assert gcs.telemetry.mode == "AUTO"
        assert gcs.telemetry.armed is True
        assert gcs.telemetry.relative_altitude == 12.5
        assert gcs.telemetry.last_heartbeat_time == 3.0

    def test_collects_status_text_and_acks(self):
        link = MavLink()
        gcs = GroundControlStation(link)
        link.vehicle_send(StatusText(severity="warning", text="baro failed"))
        link.vehicle_send(CommandAck(command=MavCommand.NAV_TAKEOFF, result=MavResult.ACCEPTED))
        gcs.poll()
        assert any("baro failed" in text for text in gcs.telemetry.status_messages)
        acks = gcs.take_acks()
        assert len(acks) == 1 and acks[0].command == MavCommand.NAV_TAKEOFF

    def test_arm_sends_command_long(self):
        link = MavLink()
        gcs = GroundControlStation(link)
        gcs.arm()
        messages = link.vehicle_receive()
        assert isinstance(messages[0], CommandLong)
        assert messages[0].command == MavCommand.COMPONENT_ARM_DISARM
        assert messages[0].param1 == 1.0

    def test_mission_upload_via_gcs(self):
        link = MavLink()
        gcs = GroundControlStation(link)
        receiver = MissionReceiveState()
        plan = MissionPlan(items=[mission_item(0, MavCommand.NAV_LAND)])
        gcs.begin_mission_upload(plan)
        # Simulate the vehicle side answering each message.
        for _ in range(10):
            for message in link.vehicle_receive():
                if isinstance(message, MissionCount):
                    reply = receiver.handle_count(message)
                elif isinstance(message, MissionItem):
                    reply = receiver.handle_item(message)
                else:
                    reply = None
                if reply is not None:
                    link.vehicle_send(reply)
            gcs.poll()
            if gcs.mission_upload_complete:
                break
        assert gcs.mission_upload_complete
