"""Tests for the remote execution backend and the shared cache fabric."""

import socket
import warnings

import pytest

from repro.core.avis import Avis
from repro.core.strategies import RandomInjection
from repro.core.strategies.avis_strategy import AvisStrategy
from repro.engine import backends as backends_module
from repro.engine.backends import (
    ProcessPoolBackend,
    RemoteBackend,
    SerialBackend,
    parse_backend_spec,
    resolve_backend,
)
from repro.engine.cache import CacheStore, ResultCache
from repro.engine.cache_remote import CacheServer, RemoteCacheStore
from repro.engine import cache_remote as cache_remote_module
from repro.engine.remote import (
    ProtocolError,
    connect_workers,
    context_fingerprint,
    decode_payload,
    encode_payload,
    format_address,
    parse_address,
    recv_frame,
    send_frame,
    spawn_loopback_workers,
)
from repro.hinj.faults import FaultScenario, FaultSpec
from repro.sensors.base import SensorId, SensorType


def _scenarios(count, start=2.0, step=1.5):
    return [
        FaultScenario([FaultSpec(SensorId(SensorType.GPS, 0), start + i * step)])
        for i in range(count)
    ]


class TestFraming:
    def _pair(self):
        server, client = socket.socketpair()
        server.settimeout(5.0)
        client.settimeout(5.0)
        return server, client

    def test_frames_round_trip(self):
        server, client = self._pair()
        try:
            frame = {"op": "task", "index": 3, "payload": "x" * 10_000}
            send_frame(client, frame)
            assert recv_frame(server) == frame
        finally:
            server.close()
            client.close()

    def test_truncated_frame_raises_protocol_error(self):
        server, client = self._pair()
        try:
            client.sendall(b"\x00\x00\x00\x10{\"op\"")  # promises 16 bytes
            client.close()
            with pytest.raises((ProtocolError, ConnectionError)):
                recv_frame(server)
        finally:
            server.close()

    def test_oversized_frame_rejected(self):
        server, client = self._pair()
        try:
            client.sendall(b"\xff\xff\xff\xff")
            with pytest.raises(ProtocolError):
                recv_frame(server)
        finally:
            server.close()
            client.close()

    def test_payload_round_trips_scenarios(self):
        scenario = _scenarios(1)[0]
        assert decode_payload(encode_payload(scenario)) == scenario

    def test_addresses_round_trip(self):
        assert parse_address("127.0.0.1:7800") == ("127.0.0.1", 7800)
        assert format_address(("10.0.0.2", 9)) == "10.0.0.2:9"
        with pytest.raises(ValueError):
            parse_address("no-port")
        with pytest.raises(ValueError):
            parse_address("host:not-a-number")


class TestBackendSpecs:
    def test_specs_resolve_to_backends(self):
        assert isinstance(parse_backend_spec("serial"), SerialBackend)
        pool = parse_backend_spec("pool:3")
        assert isinstance(pool, ProcessPoolBackend)
        assert pool.max_workers == 3
        assert isinstance(parse_backend_spec("pool"), ProcessPoolBackend)
        remote = parse_backend_spec("remote:2")
        assert isinstance(remote, RemoteBackend)
        assert remote.max_workers == 2
        addressed = parse_backend_spec("remote:127.0.0.1:7801,127.0.0.1:7802")
        assert isinstance(addressed, RemoteBackend)
        assert addressed.max_workers == 2

    @pytest.mark.parametrize(
        "spec",
        ["", "turbo", "pool:0", "pool:x", "remote:", "remote:0",
         "serial:2", "remote:host"],
    )
    def test_bad_specs_are_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_backend_spec(spec)

    def test_resolve_backend_passthrough(self):
        assert resolve_backend(None) is None
        assert isinstance(resolve_backend("serial"), SerialBackend)
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_instances_still_work_behind_deprecation(self, short_auto_config):
        backend = SerialBackend()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert resolve_backend(backend) is backend
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        # The spec spelling warns nowhere.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resolve_backend("pool:2")
        assert not caught
        # End to end: an instance passed to Avis still runs the campaign.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            avis = Avis(short_auto_config, profiling_runs=2,
                        budget_units=2.0, backend=SerialBackend())
            avis.profile()
            campaign = avis.check(strategy=RandomInjection(rng_seed=1))
        assert campaign.simulations >= 1
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )


class TestRemoteDeterminism:
    """The acceptance bar: remote == pool == serial, bit for bit."""

    def _campaign(self, config, backend, strategy_factory, budget=5.0):
        avis = Avis(config, profiling_runs=2, budget_units=budget,
                    backend=backend)
        avis.profile()
        campaign = avis.check(strategy=strategy_factory())
        return campaign, sorted(avis.cache.keys())

    def test_remote_matches_pool_and_serial(self, short_auto_config):
        factory = lambda: RandomInjection(rng_seed=5)  # noqa: E731
        serial, serial_keys = self._campaign(
            short_auto_config, "serial", factory
        )
        pooled, pooled_keys = self._campaign(
            short_auto_config, "pool:2", factory
        )
        remote, remote_keys = self._campaign(
            short_auto_config, "remote:2", factory
        )
        for other in (pooled, remote):
            assert other.simulations == serial.simulations
            assert other.budget_spent == serial.budget_spent
            assert other.unsafe_scenario_count == serial.unsafe_scenario_count
            assert other.triggered_bug_ids == serial.triggered_bug_ids
            assert [r.scenario for r in other.results] == [
                r.scenario for r in serial.results
            ]
            assert [len(r.unsafe_conditions) for r in other.results] == [
                len(r.unsafe_conditions) for r in serial.results
            ]
        # Identical content-addressed cache keys: the runs really were
        # the same (config, scenario) pure functions on every fabric.
        assert pooled_keys == serial_keys
        assert remote_keys == serial_keys

    def test_sabre_budgets_match_serial(self, short_auto_config):
        factory = lambda: AvisStrategy()  # noqa: E731
        serial, serial_keys = self._campaign(
            short_auto_config, "serial", factory, budget=4.0
        )
        remote, remote_keys = self._campaign(
            short_auto_config, "remote:2", factory, budget=4.0
        )
        assert remote.simulations == serial.simulations
        assert remote.labels == serial.labels
        assert remote.budget_spent == pytest.approx(serial.budget_spent)
        assert [r.scenario for r in remote.results] == [
            r.scenario for r in serial.results
        ]
        assert remote_keys == serial_keys

    def test_worker_loss_mid_round_converges(self, short_auto_config):
        avis = Avis(short_auto_config, profiling_runs=2, budget_units=6.0)
        monitor = avis.monitor
        scenarios = _scenarios(6)
        expected = SerialBackend().run_scenarios(
            short_auto_config, monitor, scenarios
        )
        backend = RemoteBackend(workers=2)
        killed = []

        def assassinate(index, result):
            # Hard-kill one worker as soon as the first result lands;
            # its in-flight task must be requeued on the survivor.
            if not killed and backend.loopback_workers:
                backend.loopback_workers[0].kill()
                killed.append(index)

        try:
            results = backend.run_scenarios(
                short_auto_config, monitor, scenarios, on_result=assassinate
            )
        finally:
            backend.close()
        assert killed, "kill hook never fired"
        assert len(results) == len(expected)
        assert [r.scenario for r in results] == [
            r.scenario for r in expected
        ]
        assert [len(r.unsafe_conditions) for r in results] == [
            len(r.unsafe_conditions) for r in expected
        ]

    def test_all_workers_dead_falls_back_to_serial(self, short_auto_config):
        avis = Avis(short_auto_config, profiling_runs=2, budget_units=6.0)
        monitor = avis.monitor
        scenarios = _scenarios(4)
        expected = SerialBackend().run_scenarios(
            short_auto_config, monitor, scenarios
        )
        backend = RemoteBackend(workers=2)

        def massacre(index, result):
            for worker in backend.loopback_workers:
                worker.kill()

        try:
            results = backend.run_scenarios(
                short_auto_config, monitor, scenarios, on_result=massacre
            )
        finally:
            backend.close()
        assert [r.scenario for r in results] == [
            r.scenario for r in expected
        ]

    def test_fingerprint_mismatch_rejects_worker(self, short_auto_config):
        avis = Avis(short_auto_config, profiling_runs=2, budget_units=2.0)
        monitor = avis.monitor
        workers = spawn_loopback_workers(short_auto_config, monitor, 1)
        try:
            fingerprint = context_fingerprint(short_auto_config, monitor)
            connections, failures = connect_workers(
                [workers[0].address], "not-the-" + fingerprint,
                retries=1,
            )
            assert not connections
            assert len(failures) == 1
            # The same worker still accepts the real fingerprint.
            connections, failures = connect_workers(
                [workers[0].address], fingerprint, retries=1
            )
            assert len(connections) == 1
            for connection in connections:
                connection.close()
        finally:
            for worker in workers:
                worker.close()

    def test_explicit_unreachable_addresses_raise(self, short_auto_config):
        avis = Avis(short_auto_config, profiling_runs=2, budget_units=2.0)
        monitor = avis.monitor
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_address = probe.getsockname()
        backend = RemoteBackend(addresses=[dead_address],
                                connect_timeout=0.5, retries=1)
        with pytest.raises(ConnectionError):
            backend.run_scenarios(
                short_auto_config, monitor, _scenarios(1)
            )


class TestCacheFabric:
    def _result(self, short_auto_config):
        from repro.core.runner import TestRunner

        return TestRunner(short_auto_config).run(FaultScenario([]))

    def test_stores_satisfy_the_protocol(self, tmp_path):
        assert isinstance(ResultCache(), CacheStore)
        assert isinstance(ResultCache(directory=str(tmp_path)), CacheStore)

    def test_two_clients_share_one_store(self, short_auto_config, tmp_path):
        result = self._result(short_auto_config)
        backing = ResultCache(directory=str(tmp_path))
        with CacheServer(backing) as server:
            first = RemoteCacheStore(server.endpoint)
            second = RemoteCacheStore(server.endpoint)
            assert isinstance(first, CacheStore)
            assert first.get("key-1") is None
            first.put("key-1", result)
            fetched = second.get("key-1")
            assert fetched is not None
            assert fetched.summary() == result.summary()
            assert "key-1" in second
            assert first.stats["puts"] == 1
            assert second.stats["hits"] == 1
            stats = first.server_stats()
            assert stats["served_puts"] == 1
            assert stats["entries"] == 1
            first.close()
            second.close()
        # The backing store persisted the entry for later servers.
        assert "key-1" in ResultCache(directory=str(tmp_path))

    def test_stamp_mismatch_refuses_the_store(self, monkeypatch, tmp_path):
        with CacheServer(ResultCache(directory=str(tmp_path))) as server:
            monkeypatch.setattr(
                cache_remote_module, "bug_registry_stamp",
                lambda: "a-different-registry",
            )
            with pytest.raises(ConnectionError):
                RemoteCacheStore(server.endpoint)

    def test_lost_server_degrades_to_misses(self, short_auto_config, tmp_path):
        result = self._result(short_auto_config)
        server = CacheServer(ResultCache(directory=str(tmp_path))).start()
        store = RemoteCacheStore(server.endpoint, connect_timeout=1.0,
                                 op_timeout=1.0)
        store.put("key-1", result)
        server.stop()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            # Memoised entries keep hitting; unknown keys become misses
            # instead of errors, and puts are dropped, not raised.
            assert store.get("key-1") is not None
            assert store.get("key-2") is None
            store.put("key-3", result)
        assert store.dropped >= 1
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)
        store.close()

    def test_campaign_runs_through_shared_cache(self, short_auto_config, tmp_path):
        with CacheServer(ResultCache(directory=str(tmp_path))) as server:
            store = RemoteCacheStore(server.endpoint)
            avis = Avis(short_auto_config, profiling_runs=2,
                        budget_units=3.0, cache=store)
            avis.profile()
            cold = avis.check(strategy=RandomInjection(rng_seed=3))
            # A second orchestrator sharing the server gets warm hits.
            warm_store = RemoteCacheStore(server.endpoint)
            avis_warm = Avis(short_auto_config, profiling_runs=2,
                             budget_units=3.0, cache=warm_store)
            avis_warm.profile()
            warm = avis_warm.check(strategy=RandomInjection(rng_seed=3))
            assert warm.simulations == cold.simulations
            assert [r.scenario for r in warm.results] == [
                r.scenario for r in cold.results
            ]
            assert warm_store.hits >= warm.simulations
            store.close()
            warm_store.close()


class TestRemoteBackendFallbacks:
    def test_daemonic_process_degrades_to_serial(self, monkeypatch,
                                                 short_auto_config):
        avis = Avis(short_auto_config, profiling_runs=2, budget_units=2.0)
        monitor = avis.monitor

        class FakeDaemon:
            daemon = True

        monkeypatch.setattr(
            backends_module.multiprocessing, "current_process",
            lambda: FakeDaemon(),
        )
        backend = RemoteBackend(workers=2)
        scenarios = _scenarios(2)
        results = backend.run_scenarios(
            short_auto_config, monitor, scenarios
        )
        expected = SerialBackend().run_scenarios(
            short_auto_config, monitor, scenarios
        )
        assert [r.scenario for r in results] == [
            r.scenario for r in expected
        ]
        assert not backend.loopback_workers
        backend.close()
