"""Unit tests for the firmware's building blocks."""

import math

import pytest

from repro.firmware.arming import ArmingController
from repro.firmware.effects import BugEffectEngine
from repro.firmware.estimator import EstimatorStatus, StateEstimate, StateEstimator
from repro.firmware.failsafe import FailsafeAction, FailsafeManager
from repro.firmware.mission_exec import MissionExecutor
from repro.firmware.modes import (
    ARDUPILOT_MODE_NAMES,
    FlightMode,
    OperatingModeLabel,
    PX4_MODE_NAMES,
    SAFE_MODES,
    UNTESTED_MODES,
    resolve_mode_name,
)
from repro.firmware.navigation import NavigationSetpoint, NavigationStack
from repro.firmware.params import FirmwareParameters
from repro.firmware.bugs import ARDUPILOT_LATENT_BUGS, BugRegistry
from repro.mavlink.messages import MavCommand
from repro.mavlink.mission import MissionPlan, mission_item
from repro.sensors.base import SensorId, SensorType
from repro.sensors.suite import iris_sensor_suite
from repro.sim.environment import GeoLocation
from repro.sim.state import AttitudeState, VehicleState
from repro.sim.vehicle import IRIS_QUADCOPTER


class TestModes:
    def test_mode_name_resolution_per_flavour(self):
        assert resolve_mode_name("AUTO", ARDUPILOT_MODE_NAMES) == FlightMode.AUTO
        assert resolve_mode_name("MISSION", PX4_MODE_NAMES) == FlightMode.AUTO
        assert resolve_mode_name("poshold", ARDUPILOT_MODE_NAMES) == FlightMode.POSHOLD
        assert resolve_mode_name("nonexistent", ARDUPILOT_MODE_NAMES) is None

    def test_safe_and_untested_mode_sets(self):
        assert FlightMode.RTL in SAFE_MODES and FlightMode.LAND in SAFE_MODES
        assert FlightMode.ACRO in UNTESTED_MODES

    def test_waypoint_labels(self):
        label = OperatingModeLabel.waypoint(3)
        assert label == "waypoint-3"
        assert OperatingModeLabel.is_waypoint(label)
        assert OperatingModeLabel.waypoint_index(label) == 3
        assert OperatingModeLabel.waypoint_index("land") is None
        with pytest.raises(ValueError):
            OperatingModeLabel.waypoint(0)

    def test_mode_categories_match_table4(self):
        assert OperatingModeLabel.mode_category("takeoff") == "takeoff"
        assert OperatingModeLabel.mode_category("waypoint-2") == "waypoint"
        assert OperatingModeLabel.mode_category("rtl") == "land"
        assert OperatingModeLabel.mode_category("land") == "land"
        assert OperatingModeLabel.mode_category("poshold") == "manual"


class TestEstimator:
    def make_estimator(self):
        suite = iris_sensor_suite()
        return suite, StateEstimator(suite, FirmwareParameters())

    def run_estimator(self, suite, estimator, state, steps=50, dt=0.02, start=0.0):
        events = []
        for index in range(steps):
            time = start + index * dt
            readings = suite.read_all(state, time)
            _, new_events = estimator.update(readings, dt, time)
            events.extend(new_events)
        return events

    def test_tracks_static_state(self):
        suite, estimator = self.make_estimator()
        state = VehicleState(position=(2.0, -3.0, 12.0), attitude=AttitudeState(yaw=0.4))
        self.run_estimator(suite, estimator, state, steps=200)
        estimate = estimator.estimate
        assert estimate.altitude == pytest.approx(12.0, abs=1.0)
        assert estimate.north == pytest.approx(2.0, abs=1.5)
        assert estimate.east == pytest.approx(-3.0, abs=1.5)
        assert estimate.yaw == pytest.approx(0.4, abs=0.1)

    def test_reports_failure_events_with_roles(self):
        suite, estimator = self.make_estimator()
        state = VehicleState(position=(0.0, 0.0, 10.0))
        self.run_estimator(suite, estimator, state, steps=5)
        suite.driver(SensorId(SensorType.COMPASS, 0)).fail()
        events = self.run_estimator(suite, estimator, state, steps=5, start=1.0)
        assert len(events) == 1
        assert events[0].sensor_id == SensorId(SensorType.COMPASS, 0)
        assert events[0].was_active_instance
        assert not events[0].type_exhausted

    def test_altitude_falls_back_to_gps_when_baro_fails(self):
        suite, estimator = self.make_estimator()
        state = VehicleState(position=(0.0, 0.0, 15.0))
        self.run_estimator(suite, estimator, state, steps=50)
        suite.driver(SensorId(SensorType.BAROMETER, 0)).fail()
        self.run_estimator(suite, estimator, state, steps=50, start=2.0)
        assert estimator.status.altitude_source == "gps"
        assert estimator.estimate.altitude == pytest.approx(15.0, abs=3.0)

    def test_position_invalid_after_gps_loss(self):
        suite, estimator = self.make_estimator()
        state = VehicleState(position=(5.0, 5.0, 15.0))
        self.run_estimator(suite, estimator, state, steps=50)
        suite.driver(SensorId(SensorType.GPS, 0)).fail()
        self.run_estimator(suite, estimator, state, steps=200, start=2.0)
        assert not estimator.status.position_valid
        assert SensorType.GPS in estimator.status.failed_types


class TestArming:
    def test_prearm_requires_healthy_sensors(self):
        arming = ArmingController(FirmwareParameters())
        healthy = EstimatorStatus(
            healthy_types=frozenset(SensorType), failed_types=frozenset()
        )
        assert arming.request_arm(healthy, 1.0).allowed
        assert arming.armed

    def test_prearm_refuses_without_gps(self):
        arming = ArmingController(FirmwareParameters())
        status = EstimatorStatus(
            healthy_types=frozenset(set(SensorType) - {SensorType.GPS}),
            failed_types=frozenset({SensorType.GPS}),
        )
        decision = arming.request_arm(status, 1.0)
        assert not decision.allowed
        assert "GPS" in decision.reason_text

    def test_disarm_refused_in_flight(self):
        arming = ArmingController(FirmwareParameters())
        healthy = EstimatorStatus(healthy_types=frozenset(SensorType))
        arming.request_arm(healthy, 1.0)
        assert not arming.request_disarm(airborne=True).allowed
        assert arming.request_disarm(airborne=False).allowed


class TestFailsafeManager:
    def make_event(self, sensor_type, exhausted=True, active=True, time=5.0):
        from repro.firmware.estimator import SensorFailureEvent

        return SensorFailureEvent(
            sensor_id=SensorId(sensor_type, 0),
            time=time,
            was_active_instance=active,
            type_exhausted=exhausted,
        )

    def healthy_status(self):
        return EstimatorStatus(healthy_types=frozenset(SensorType), position_valid=True)

    def test_backup_failure_continues(self):
        manager = FailsafeManager(FirmwareParameters())
        event = self.make_event(SensorType.GYROSCOPE, exhausted=False)
        decision = manager.handle_sensor_failure(
            event, self.healthy_status(), FlightMode.AUTO, airborne=True
        )
        assert decision.action == FailsafeAction.CONTINUE_DEGRADED

    def test_gps_loss_in_flight_lands(self):
        manager = FailsafeManager(FirmwareParameters())
        decision = manager.handle_sensor_failure(
            self.make_event(SensorType.GPS),
            self.healthy_status(),
            FlightMode.AUTO,
            airborne=True,
        )
        assert decision.action == FailsafeAction.LAND

    def test_failure_on_ground_disarms(self):
        manager = FailsafeManager(FirmwareParameters())
        decision = manager.handle_sensor_failure(
            self.make_event(SensorType.GPS),
            self.healthy_status(),
            FlightMode.PREFLIGHT,
            airborne=False,
        )
        assert decision.action == FailsafeAction.DISARM

    def test_baro_loss_with_gps_continues_degraded(self):
        manager = FailsafeManager(FirmwareParameters())
        decision = manager.handle_sensor_failure(
            self.make_event(SensorType.BAROMETER),
            self.healthy_status(),
            FlightMode.AUTO,
            airborne=True,
        )
        assert decision.action == FailsafeAction.CONTINUE_DEGRADED

    def test_battery_failsafe_rtl_with_position(self):
        manager = FailsafeManager(FirmwareParameters())
        decision = manager.check_battery(0.1, self.healthy_status(), 10.0)
        assert decision is not None and decision.action == FailsafeAction.RTL
        # Fires only once.
        assert manager.check_battery(0.05, self.healthy_status(), 11.0) is None

    def test_battery_failsafe_lands_without_position(self):
        manager = FailsafeManager(FirmwareParameters())
        status = EstimatorStatus(healthy_types=frozenset(SensorType), position_valid=False)
        decision = manager.check_battery(0.1, status, 10.0)
        assert decision.action == FailsafeAction.LAND

    def test_fence_failsafe_rtl_once(self):
        manager = FailsafeManager(FirmwareParameters())
        decision = manager.check_fence(True, 12.0)
        assert decision.action == FailsafeAction.RTL
        assert manager.check_fence(True, 13.0) is None


class TestNavigationStack:
    def make_stack(self):
        return NavigationStack(FirmwareParameters(), IRIS_QUADCOPTER)

    def test_climb_command_when_below_target(self):
        stack = self.make_stack()
        estimate = StateEstimate(altitude=5.0)
        command = stack.update(estimate, NavigationSetpoint(target_altitude=20.0))
        assert command.throttle > IRIS_QUADCOPTER.hover_throttle

    def test_descend_command_when_above_target(self):
        stack = self.make_stack()
        estimate = StateEstimate(altitude=30.0)
        command = stack.update(estimate, NavigationSetpoint(target_altitude=20.0))
        assert command.throttle < IRIS_QUADCOPTER.hover_throttle

    def test_pitch_toward_north_target(self):
        stack = self.make_stack()
        estimate = StateEstimate(north=0.0, east=0.0, yaw=0.0, altitude=20.0)
        command = stack.update(
            estimate, NavigationSetpoint(target_north=50.0, target_east=0.0, target_altitude=20.0)
        )
        assert command.pitch > 0.05
        assert abs(command.roll) < 0.05

    def test_tilt_respects_airframe_limit(self):
        stack = self.make_stack()
        estimate = StateEstimate(north=0.0, east=0.0, altitude=20.0)
        command = stack.update(
            estimate, NavigationSetpoint(target_north=500.0, target_east=500.0)
        )
        assert abs(command.pitch) <= IRIS_QUADCOPTER.max_tilt_rad
        assert abs(command.roll) <= IRIS_QUADCOPTER.max_tilt_rad

    def test_yaw_rate_toward_target_heading(self):
        stack = self.make_stack()
        estimate = StateEstimate(yaw=0.0)
        command = stack.update(estimate, NavigationSetpoint(target_yaw=1.0))
        assert command.yaw_rate > 0.0

    def test_direct_climb_rate_setpoint(self):
        stack = self.make_stack()
        estimate = StateEstimate(altitude=10.0, climb_rate=0.0)
        climb = stack.altitude.climb_rate_command(
            estimate, NavigationSetpoint(climb_rate=-10.0)
        )
        assert climb == pytest.approx(-IRIS_QUADCOPTER.max_descent_rate_ms)


class TestMissionExecutor:
    def make_executor(self):
        return MissionExecutor(FirmwareParameters(), GeoLocation())

    def test_takeoff_then_waypoint_then_complete(self):
        executor = self.make_executor()
        home = GeoLocation()
        target = home.offset(10.0, 0.0)
        plan = MissionPlan(
            items=[
                mission_item(0, MavCommand.NAV_TAKEOFF, altitude=10.0),
                mission_item(
                    1,
                    MavCommand.NAV_WAYPOINT,
                    latitude=target.latitude_deg,
                    longitude=target.longitude_deg,
                    altitude=10.0,
                ),
            ]
        )
        executor.load(plan)
        low = StateEstimate(altitude=0.0)
        step = executor.step(low)
        assert step.kind == "takeoff"
        at_altitude = StateEstimate(altitude=10.0)
        step = executor.step(at_altitude)
        assert step.kind == "waypoint"
        assert step.waypoint_index == 1
        assert step.target_north == pytest.approx(10.0, abs=0.1)
        at_waypoint = StateEstimate(north=10.0, east=0.0, altitude=10.0)
        step = executor.step(at_waypoint)
        assert step.kind == "complete"
        assert executor.complete
        assert executor.reached_items == [0, 1]

    def test_rtl_and_land_items_hand_over(self):
        executor = self.make_executor()
        plan = MissionPlan(
            items=[
                mission_item(0, MavCommand.NAV_RETURN_TO_LAUNCH),
                mission_item(1, MavCommand.NAV_LAND),
            ]
        )
        executor.load(plan)
        step = executor.step(StateEstimate(altitude=20.0))
        assert step.kind == "rtl"

    def test_no_plan_is_complete(self):
        executor = self.make_executor()
        assert executor.step(StateEstimate()).kind == "complete"
        assert not executor.has_plan


class TestBugEffectEngine:
    def test_freeze_and_offset_applied_to_copy_each_step(self):
        registry = BugRegistry(ARDUPILOT_LATENT_BUGS)
        descriptor = registry.descriptor("APM-16682")
        engine = BugEffectEngine()
        estimate = StateEstimate(north=1.0, east=2.0, altitude=2.0)
        engine.activate(descriptor, estimate, time=10.0)
        corrupted = engine.corrupt_estimate(estimate.copy())
        assert corrupted.altitude == pytest.approx(22.0)
        # Applying to a fresh copy again must not compound the offset.
        corrupted = engine.corrupt_estimate(estimate.copy())
        assert corrupted.altitude == pytest.approx(22.0)

    def test_activation_is_idempotent(self):
        registry = BugRegistry(ARDUPILOT_LATENT_BUGS)
        descriptor = registry.descriptor("APM-16020")
        engine = BugEffectEngine()
        estimate = StateEstimate(north=4.0)
        engine.activate(descriptor, estimate, 5.0)
        engine.activate(descriptor, estimate, 6.0)
        assert engine.active_bug_ids == ["APM-16020"]

    def test_forced_mode_after_delay(self):
        registry = BugRegistry(ARDUPILOT_LATENT_BUGS)
        descriptor = registry.descriptor("APM-16021")
        engine = BugEffectEngine()
        estimate = StateEstimate(altitude=18.0)
        engine.activate(descriptor, estimate, time=10.0)
        early = engine.overrides(estimate, airborne=True, time=11.0)
        assert early.forced_mode is None
        late = engine.overrides(estimate, airborne=True, time=16.0)
        assert late.forced_mode == FlightMode.LAND

    def test_throttle_cut_latches(self):
        registry = BugRegistry(ARDUPILOT_LATENT_BUGS)
        descriptor = registry.descriptor("APM-16953")
        engine = BugEffectEngine()
        low = StateEstimate(altitude=5.0)
        engine.activate(descriptor, low, time=10.0)
        first = engine.overrides(low, airborne=True, time=10.5)
        assert first.throttle_override == 0.0
        higher = StateEstimate(altitude=9.0)
        second = engine.overrides(higher, airborne=True, time=11.0)
        assert second.throttle_override == 0.0
