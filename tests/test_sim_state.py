"""Unit tests for the vehicle state primitives."""

import math

import pytest

from repro.sim.state import (
    AttitudeState,
    VehicleState,
    euclidean_distance,
    interpolate_states,
    pad_trace,
    vector_add,
    vector_norm,
    vector_scale,
    vector_sub,
    wrap_angle,
)


class TestVectorHelpers:
    def test_add_and_sub_are_inverse(self):
        a = (1.0, -2.0, 3.5)
        b = (0.5, 4.0, -1.0)
        assert vector_sub(vector_add(a, b), b) == pytest.approx(a)

    def test_scale(self):
        assert vector_scale((1.0, 2.0, 3.0), 2.0) == (2.0, 4.0, 6.0)

    def test_norm_of_unit_vectors(self):
        assert vector_norm((1.0, 0.0, 0.0)) == pytest.approx(1.0)
        assert vector_norm((0.0, 3.0, 4.0)) == pytest.approx(5.0)

    def test_euclidean_distance_symmetry(self):
        a = (1.0, 2.0, 3.0)
        b = (-4.0, 0.0, 7.0)
        assert euclidean_distance(a, b) == pytest.approx(euclidean_distance(b, a))

    def test_euclidean_distance_zero_for_identical_points(self):
        assert euclidean_distance((1.0, 1.0, 1.0), (1.0, 1.0, 1.0)) == 0.0


class TestWrapAngle:
    def test_wraps_above_pi(self):
        assert wrap_angle(math.pi + 0.1) == pytest.approx(-math.pi + 0.1)

    def test_wraps_below_minus_pi(self):
        assert wrap_angle(-math.pi - 0.1) == pytest.approx(math.pi - 0.1)

    def test_identity_inside_range(self):
        assert wrap_angle(0.5) == pytest.approx(0.5)

    def test_multiple_of_two_pi(self):
        assert wrap_angle(6.0 * math.pi) == pytest.approx(0.0, abs=1e-9)


class TestAttitudeState:
    def test_as_tuple(self):
        attitude = AttitudeState(roll=0.1, pitch=-0.2, yaw=1.0)
        assert attitude.as_tuple() == (0.1, -0.2, 1.0)

    def test_rotated_yaw_wraps(self):
        attitude = AttitudeState(yaw=math.pi - 0.1)
        rotated = attitude.rotated_yaw(0.3)
        assert rotated.yaw == pytest.approx(-math.pi + 0.2)


class TestVehicleState:
    def test_altitude_and_speeds(self):
        state = VehicleState(
            position=(3.0, 4.0, 10.0), velocity=(3.0, 4.0, -1.0)
        )
        assert state.altitude == 10.0
        assert state.ground_speed == pytest.approx(5.0)
        assert state.climb_rate == -1.0

    def test_heading_comes_from_attitude(self):
        state = VehicleState(attitude=AttitudeState(yaw=0.7))
        assert state.heading == pytest.approx(0.7)

    def test_distances(self):
        state = VehicleState(position=(3.0, 4.0, 12.0))
        assert state.horizontal_distance_to((0.0, 0.0, 0.0)) == pytest.approx(5.0)
        assert state.distance_to((3.0, 4.0, 0.0)) == pytest.approx(12.0)

    def test_with_time_and_armed_copies(self):
        state = VehicleState()
        assert state.with_time(4.0).time == 4.0
        assert state.with_armed(True).armed is True
        assert state.time == 0.0 and state.armed is False


class TestInterpolation:
    def test_midpoint(self):
        a = VehicleState(time=0.0, position=(0.0, 0.0, 0.0))
        b = VehicleState(time=1.0, position=(2.0, 4.0, 6.0))
        mid = interpolate_states(a, b, 0.5)
        assert mid.position == pytest.approx((1.0, 2.0, 3.0))
        assert mid.time == pytest.approx(0.5)

    def test_rejects_fraction_outside_range(self):
        a, b = VehicleState(), VehicleState()
        with pytest.raises(ValueError):
            interpolate_states(a, b, 1.5)

    def test_yaw_interpolation_takes_short_way_round(self):
        a = VehicleState(attitude=AttitudeState(yaw=math.pi - 0.1))
        b = VehicleState(attitude=AttitudeState(yaw=-math.pi + 0.1))
        mid = interpolate_states(a, b, 0.5)
        assert abs(abs(mid.attitude.yaw) - math.pi) < 0.11


class TestPadTrace:
    def test_pads_with_last_state(self):
        trace = [VehicleState(time=0.0), VehicleState(time=1.0)]
        padded = pad_trace(trace, 5)
        assert len(padded) == 5
        assert padded[-1] == trace[-1]

    def test_rejects_shrinking(self):
        trace = [VehicleState(time=float(i)) for i in range(4)]
        with pytest.raises(ValueError):
            pad_trace(trace, 2)

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            pad_trace([], 3)
