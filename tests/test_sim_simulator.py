"""Unit tests for the lock-step simulator."""

import pytest

from repro.sim.environment import Environment, FenceRegion, Obstacle
from repro.sim.physics import ActuatorCommand
from repro.sim.simulator import SimulationClock, Simulator


class TestSimulationClock:
    def test_advance(self):
        clock = SimulationClock(dt=0.02)
        assert clock.time == 0.0
        clock.advance()
        clock.advance()
        assert clock.ticks == 2
        assert clock.time == pytest.approx(0.04)

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            SimulationClock(dt=-1.0)


class TestSimulatorStepping:
    def test_time_advances_per_step(self):
        simulator = Simulator(dt=0.02)
        simulator.step(ActuatorCommand(armed=False))
        simulator.step(ActuatorCommand(armed=False))
        assert simulator.time == pytest.approx(0.04)

    def test_step_listener_invoked(self):
        simulator = Simulator(dt=0.02)
        seen = []
        simulator.add_step_listener(lambda state: seen.append(state.time))
        simulator.step(ActuatorCommand(armed=False))
        assert len(seen) == 1


class TestCollisionDetection:
    def test_hard_ground_impact_is_recorded(self):
        simulator = Simulator(dt=0.02)
        for _ in range(300):
            simulator.step(ActuatorCommand(throttle=1.0, armed=True))
        assert simulator.state.altitude > 10.0
        for _ in range(800):
            simulator.step(ActuatorCommand(throttle=0.0, armed=True))
            if simulator.has_crashed:
                break
        assert simulator.has_crashed
        assert simulator.collisions[0].impact_speed >= 2.0
        assert simulator.collisions[0].with_ground

    def test_soft_landing_is_not_a_collision(self):
        simulator = Simulator(dt=0.02)
        hover = simulator.airframe.hover_throttle
        for _ in range(100):
            simulator.step(ActuatorCommand(throttle=0.6, armed=True))
        # Descend gently by holding slightly below hover (terminal descent
        # of roughly 1.3 m/s, below the hard-impact threshold).
        for _ in range(3000):
            simulator.step(ActuatorCommand(throttle=hover * 0.97, armed=True))
            if simulator.state.on_ground:
                break
        assert simulator.state.on_ground
        assert not simulator.has_crashed

    def test_obstacle_collision_recorded(self):
        tower = Obstacle("tower", 3.0, 0.0, 2.0, 2.0, 200.0)
        simulator = Simulator(environment=Environment(obstacles=(tower,)), dt=0.02)
        for _ in range(100):
            simulator.step(ActuatorCommand(throttle=1.0, armed=True))
        for _ in range(600):
            simulator.step(
                ActuatorCommand(throttle=0.65, target_pitch=0.3, armed=True)
            )
            if simulator.has_crashed:
                break
        assert simulator.has_crashed
        assert any(event.obstacle == "tower" for event in simulator.collisions)


class TestFenceBreach:
    def test_breach_recorded_once_per_entry(self):
        fence = FenceRegion("nofly", 1.0, 100.0, -100.0, 100.0)
        simulator = Simulator(environment=Environment(fences=(fence,)), dt=0.02)
        for _ in range(150):
            simulator.step(ActuatorCommand(throttle=1.0, armed=True))
        for _ in range(400):
            simulator.step(
                ActuatorCommand(throttle=0.65, target_pitch=0.3, armed=True)
            )
        assert len(simulator.fence_breaches) == 1
        assert simulator.fence_breaches[0].fence == "nofly"
