"""Tests for repro.lint: the determinism & fabric-safety analyzer.

Covers the fixture corpus (each known-bad file produces exactly its own
rule id, known-good files produce none), waiver and baseline round
trips, the CLI surface (JSON output, --write-baseline, --changed,
--list-rules), self-application to the shipped tree, and the FPR
tripwire: deleting a field consumption from a fingerprint routine must
produce a finding.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.config import RunConfiguration
from repro.engine.cache import config_fingerprint
from repro.lint import run_lint
from repro.lint.baseline import write_baseline
from repro.lint.cli import main as lint_main
from repro.lint.walker import module_name_for
from repro.sim.environment import default_environment

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"

#: (fixture file, the one rule id it must produce).
BAD_FIXTURES = [
    ("det001_wall_clock.py", "DET001"),
    ("det002_entropy.py", "DET002"),
    ("det003_global_random.py", "DET003"),
    ("det004_unsorted_fingerprint.py", "DET004"),
    ("det005_listdir.py", "DET005"),
    ("fpr001_missing_field.py", "FPR001"),
    ("obs001_ungated.py", "OBS001"),
    ("obs002_eager_import.py", "OBS002"),
    ("obs003_fingerprint_obs.py", "OBS003"),
    ("fab001_thread.py", "FAB001"),
    ("fab002_socket_lock.py", "FAB002"),
    ("fab003_global.py", "FAB003"),
    ("lnt001_unjustified_waiver.py", "LNT001"),
]

ALL_RULE_IDS = sorted({rule for _, rule in BAD_FIXTURES})


class TestFixtureCorpus:
    @pytest.mark.parametrize("filename,rule", BAD_FIXTURES)
    def test_bad_fixture_produces_exactly_its_rule(self, filename, rule):
        result = run_lint([str(FIXTURES / "bad" / filename)])
        assert result.findings, f"{filename} produced no findings"
        assert {finding.rule for finding in result.findings} == {rule}

    def test_every_rule_family_has_a_failing_fixture(self):
        families = {rule[:3] for rule in ALL_RULE_IDS}
        assert families == {"DET", "FPR", "OBS", "FAB", "LNT"}

    def test_good_fixtures_are_clean(self):
        result = run_lint([str(FIXTURES / "good")])
        assert result.findings == []

    def test_module_directive_pins_the_name(self):
        path = FIXTURES / "bad" / "det001_wall_clock.py"
        name = module_name_for(str(path), path.read_text())
        assert name == "repro.sim.fixture_wall_clock"


class TestWaivers:
    def test_unjustified_waiver_suppresses_but_reports(self):
        result = run_lint(
            [str(FIXTURES / "bad" / "lnt001_unjustified_waiver.py")]
        )
        assert [finding.rule for finding in result.findings] == ["LNT001"]
        assert [finding.rule for finding in result.waived] == ["DET001"]

    def test_justified_waiver_is_silent(self):
        result = run_lint([str(FIXTURES / "good" / "justified_waiver.py")])
        assert result.findings == []
        assert [finding.rule for finding in result.waived] == ["DET001"]


class TestBaseline:
    def test_round_trip_suppresses_known_findings(self, tmp_path):
        target = str(FIXTURES / "bad" / "det001_wall_clock.py")
        first = run_lint([target])
        assert first.findings
        baseline = tmp_path / "baseline.json"
        write_baseline(str(baseline), first.findings)
        second = run_lint([target], baseline_path=str(baseline))
        assert second.findings == []
        assert len(second.baselined) == len(first.findings)
        assert second.unused_baseline == []
        assert second.ok

    def test_stale_entries_fail_the_run(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "path": "src/repro/nowhere.py",
                            "rule": "DET001",
                            "symbol": "gone",
                            "message": "stale",
                        }
                    ],
                }
            )
        )
        result = run_lint(
            [str(FIXTURES / "good" / "clean_core.py")],
            baseline_path=str(baseline),
        )
        assert result.findings == []
        assert result.unused_baseline
        assert not result.ok

    def test_cli_write_then_check(self, tmp_path, capsys):
        target = str(FIXTURES / "bad" / "fab001_thread.py")
        baseline = str(tmp_path / "baseline.json")
        assert lint_main(["--write-baseline", "--baseline", baseline, target]) == 0
        capsys.readouterr()
        assert lint_main(["--baseline", baseline, target]) == 0
        capsys.readouterr()
        # Without the baseline the same file fails.
        assert lint_main(["--no-baseline", target]) == 1


class TestCli:
    def test_json_output_shape(self, capsys):
        target = str(FIXTURES / "bad" / "obs002_eager_import.py")
        code = lint_main(["--no-baseline", "--format", "json", target])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert [f["rule"] for f in payload["findings"]] == ["OBS002"]
        finding = payload["findings"][0]
        assert set(finding) == {
            "rule",
            "family",
            "path",
            "line",
            "col",
            "symbol",
            "message",
        }

    def test_list_rules_documents_every_id(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULE_IDS + ["LNT002"]:
            assert rule_id in out

    def test_missing_path_is_a_usage_error(self, capsys):
        assert lint_main(["--no-baseline", "does/not/exist.py"]) == 2

    def test_syntax_error_reports_lnt002(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n")
        code = lint_main(["--no-baseline", "--format", "json", str(broken)])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert [f["rule"] for f in payload["findings"]] == ["LNT002"]

    def test_changed_mode_lints_only_divergent_files(
        self, tmp_path, capsys, monkeypatch
    ):
        def git(*args):
            subprocess.run(
                ["git", *args],
                cwd=tmp_path,
                check=True,
                capture_output=True,
                env={
                    **os.environ,
                    "GIT_AUTHOR_NAME": "t",
                    "GIT_AUTHOR_EMAIL": "t@t",
                    "GIT_COMMITTER_NAME": "t",
                    "GIT_COMMITTER_EMAIL": "t@t",
                },
            )

        source = tmp_path / "src"
        source.mkdir()
        committed = source / "committed.py"
        committed.write_text(
            (FIXTURES / "bad" / "det005_listdir.py").read_text()
        )
        git("init", "-b", "main")
        git("add", "-A")
        git("commit", "-m", "seed")
        fresh = source / "fresh.py"
        fresh.write_text((FIXTURES / "bad" / "fab001_thread.py").read_text())
        monkeypatch.chdir(tmp_path)
        code = lint_main(["--no-baseline", "--changed", "src"])
        out = capsys.readouterr().out
        # Only the untracked file is linted: its FAB001 appears, the
        # committed file's DET005 does not.
        assert code == 1
        assert "fresh.py" in out and "FAB001" in out
        assert "DET005" not in out


class TestSelfApplication:
    def test_shipped_tree_is_clean(self):
        result = run_lint(
            ["src"],
            baseline_path=str(REPO_ROOT / "lint-baseline.json"),
            root=str(REPO_ROOT),
            files=[str(REPO_ROOT / "src")],
        )
        assert result.findings == []
        assert result.unused_baseline == []

    def test_cli_exits_zero_on_shipped_tree(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src", "--format", "json"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": str(REPO_ROOT / "src"),
            },
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert json.loads(proc.stdout)["ok"] is True

    def test_committed_baseline_is_empty(self):
        payload = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
        assert payload["entries"] == []


class TestFprTripwire:
    def test_deleting_a_consumption_trips_fpr001(self, tmp_path):
        """Removing a field read from the fingerprint must be caught."""
        config_source = (
            REPO_ROOT / "src" / "repro" / "core" / "config.py"
        ).read_text()
        cache_source = (
            REPO_ROOT / "src" / "repro" / "engine" / "cache.py"
        ).read_text()
        assert "config.noise_seed" in cache_source
        mutated = cache_source.replace("config.noise_seed", "0")
        (tmp_path / "config.py").write_text(config_source)
        (tmp_path / "cache.py").write_text(mutated)
        result = run_lint([str(tmp_path)])
        fpr = [f for f in result.findings if f.rule == "FPR001"]
        assert [f.symbol for f in fpr] == ["RunConfiguration.noise_seed"]

    def test_intact_sources_have_no_fpr_findings(self, tmp_path):
        for name in ("core/config.py", "engine/cache.py"):
            source = (REPO_ROOT / "src" / "repro" / name).read_text()
            (tmp_path / Path(name).name).write_text(source)
        result = run_lint([str(tmp_path)])
        assert [f for f in result.findings if f.rule == "FPR001"] == []


class TestEnvironmentFingerprint:
    def test_default_environment_key_is_unchanged(self):
        key = config_fingerprint(RunConfiguration(), "auto")
        assert "environment=" not in key

    def test_custom_environment_changes_the_key(self):
        def hilly():
            return replace(default_environment(), ground_altitude=12.0)

        base = config_fingerprint(RunConfiguration(), "auto")
        custom = config_fingerprint(
            RunConfiguration(environment_factory=hilly), "auto"
        )
        assert custom != base
        assert "environment=[" in custom
        assert "ground_altitude=12.0" in custom
