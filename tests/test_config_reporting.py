"""Tests for the run configuration and the report formatting helpers."""

import pytest

from conftest import make_run_result

from repro.core.config import RunConfiguration
from repro.core.replay import build_replay_plan, resolve_plan
from repro.core.report import format_table, unsafe_condition_report
from repro.firmware.ardupilot import ArduPilotFirmware
from repro.firmware.px4 import Px4Firmware
from repro.hinj.scheduler import InjectionRecord
from repro.sensors.base import SensorId, SensorType


class TestRunConfiguration:
    def test_defaults(self):
        config = RunConfiguration()
        assert config.firmware_class is ArduPilotFirmware
        assert config.firmware_name == "ardupilot"
        assert config.dt == pytest.approx(0.02)
        assert config.stop_on_unsafe

    def test_with_noise_seed_preserves_everything_else(self):
        config = RunConfiguration(
            firmware_class=Px4Firmware,
            reinserted_bugs=("PX4-13291",),
            max_sim_time_s=77.0,
        )
        other = config.with_noise_seed(9)
        assert other.noise_seed == 9
        assert other.firmware_class is Px4Firmware
        assert other.reinserted_bugs == ("PX4-13291",)
        assert other.max_sim_time_s == 77.0
        assert config.noise_seed == 0


class TestFormatTable:
    def test_alignment_and_headers(self):
        table = format_table(["name", "count"], [("alpha", 1), ("bravo-long", 22)])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "count" in lines[0]
        assert len(lines) == 4
        assert "bravo-long" in lines[3]

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table


class TestReplayPlanHelpers:
    def test_empty_plan_for_golden_run(self):
        plan = build_replay_plan(make_run_result())
        assert plan.faults == []
        assert "no faults" in plan.describe()

    def test_resolution_falls_back_when_anchor_missing(self):
        original = make_run_result()
        original.injections = [
            InjectionRecord(
                sensor_id=SensorId(SensorType.GPS, 0),
                scheduled_time=0.7,
                injected_time=0.7,
            )
        ]
        plan = build_replay_plan(original)
        assert plan.faults[0].anchor_label == "takeoff"
        # Resolve against a run that never entered takeoff: fall back to 0.
        reference = make_run_result(transitions=[])
        scenario = resolve_plan(plan, reference)
        assert len(scenario) == 1
        assert scenario.faults[0].start_time >= 0.0


class TestReportRendering:
    def test_report_lists_workload_outcome_and_duration(self):
        report = unsafe_condition_report(make_run_result())
        assert "Workload outcome: passed" in report
        assert "Simulated duration" in report
