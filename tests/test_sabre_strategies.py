"""Unit tests for SABRE, the pruning policies, and the baseline strategies.

These tests run against a *stub* fault space: a fake runner flags a
scenario as unsafe when it fails a designated sensor inside a designated
time window, so search behaviour can be verified without flying full
simulated missions.
"""

from typing import List

import pytest

from conftest import make_run_result, make_trace

from repro.core.pruning import (
    RedundancyPruner,
    symmetric_fault_count,
    symmetry_signature,
    unpruned_fault_count,
)
from repro.core.runner import RunResult
from repro.core.sabre import SabreSearch
from repro.core.session import BudgetAccount, ExplorationSession
from repro.core.strategies import (
    AvisStrategy,
    BayesianFaultInjection,
    BfiModel,
    BreadthFirstSearch,
    DepthFirstSearch,
    RandomInjection,
    StratifiedBFI,
)
from repro.core.strategies.bayesian import TrainingExample, default_training_data
from repro.hinj.faults import FaultScenario, FaultSpec
from repro.hinj.instrumentation import ModeTransition
from repro.sensors.base import SensorId, SensorRole, SensorType
from repro.sensors.suite import iris_sensor_suite
from repro.sim.simulator import CollisionEvent

GPS = SensorId(SensorType.GPS, 0)
BARO = SensorId(SensorType.BAROMETER, 0)
COMPASS_P = SensorId(SensorType.COMPASS, 0)
COMPASS_B1 = SensorId(SensorType.COMPASS, 1)


def profiling_run() -> RunResult:
    transitions = [
        ModeTransition(0.0, "preflight", None),
        ModeTransition(2.0, "takeoff", "preflight"),
        ModeTransition(10.0, "waypoint-1", "takeoff"),
        ModeTransition(20.0, "land", "waypoint-1"),
    ]
    trace = make_trace([(0.0, 0.0, float(i)) for i in range(60)], ["takeoff"] * 60, sample_period=0.5)
    return make_run_result(trace=trace, transitions=transitions, duration_s=30.0)


class StubRunner:
    """Flags scenarios unsafe when the target sensor fails in the window."""

    def __init__(self, unsafe_sensor=GPS, window=(9.0, 12.0)):
        self.unsafe_sensor = unsafe_sensor
        self.window = window
        self.executed: List[FaultScenario] = []

    def run(self, scenario: FaultScenario, noise_seed=None) -> RunResult:
        self.executed.append(scenario)
        unsafe = any(
            fault.sensor_id == self.unsafe_sensor
            and self.window[0] <= fault.start_time <= self.window[1]
            for fault in scenario
        )
        result = make_run_result(
            scenario=scenario,
            transitions=profiling_run().mode_transitions,
            collisions=[CollisionEvent(11.0, (0.0, 0.0, 0.0), 5.0)] if unsafe else [],
            triggered_bugs=["STUB-BUG"] if unsafe else [],
        )
        if unsafe:
            result.unsafe_conditions = ["collision"]
        return result


def make_session(budget_units=50.0, runner=None) -> ExplorationSession:
    return ExplorationSession(
        runner=runner if runner is not None else StubRunner(),
        budget=BudgetAccount(total_units=budget_units),
        profiling_run=profiling_run(),
        suite=iris_sensor_suite(),
    )


class TestPruningArithmetic:
    def test_figure6_counts_for_three_compasses(self):
        assert unpruned_fault_count(3) == 21
        assert symmetric_fault_count(3) == 5

    def test_single_instance_counts(self):
        assert unpruned_fault_count(1) == 1
        assert symmetric_fault_count(1) == 1

    def test_rejects_zero_instances(self):
        with pytest.raises(ValueError):
            symmetric_fault_count(0)


class TestRedundancyPruner:
    def role_of(self, sensor_id: SensorId) -> SensorRole:
        return SensorRole.PRIMARY if sensor_id.instance == 0 else SensorRole.BACKUP

    def test_symmetric_backup_scenarios_pruned(self):
        pruner = RedundancyPruner(role_of=self.role_of)
        first_backup = FaultScenario([FaultSpec(COMPASS_B1, 5.0)])
        second_backup = FaultScenario([FaultSpec(SensorId(SensorType.COMPASS, 2), 5.0)])
        pruner.record_explored(first_backup)
        assert pruner.can_prune(second_backup)
        assert pruner.statistics.symmetry_pruned == 1

    def test_primary_not_pruned_by_backup(self):
        pruner = RedundancyPruner(role_of=self.role_of)
        pruner.record_explored(FaultScenario([FaultSpec(COMPASS_B1, 5.0)]))
        assert not pruner.can_prune(FaultScenario([FaultSpec(COMPASS_P, 5.0)]))

    def test_found_bug_pruning_skips_supersets(self):
        pruner = RedundancyPruner(role_of=self.role_of)
        bug = FaultScenario([FaultSpec(GPS, 5.0)])
        pruner.record_bug(bug)
        superset = FaultScenario([FaultSpec(GPS, 5.0), FaultSpec(BARO, 5.0)])
        assert pruner.can_prune(superset)
        assert not pruner.can_prune(bug.extended([]))  # the bug itself is not a strict superset

    def test_duplicate_scenarios_pruned(self):
        pruner = RedundancyPruner(role_of=self.role_of)
        scenario = FaultScenario([FaultSpec(GPS, 5.0)])
        pruner.record_explored(scenario)
        assert pruner.can_prune(scenario)

    def test_policies_can_be_disabled(self):
        pruner = RedundancyPruner(
            role_of=self.role_of,
            enable_found_bug_pruning=False,
            enable_symmetry_pruning=False,
        )
        pruner.record_bug(FaultScenario([FaultSpec(GPS, 5.0)]))
        superset = FaultScenario([FaultSpec(GPS, 5.0), FaultSpec(BARO, 6.0)])
        assert not pruner.can_prune(superset)

    def test_symmetry_signature_ignores_instance_identity(self):
        a = symmetry_signature(FaultScenario([FaultSpec(COMPASS_B1, 3.0)]), self.role_of)
        b = symmetry_signature(
            FaultScenario([FaultSpec(SensorId(SensorType.COMPASS, 2), 3.0)]), self.role_of
        )
        assert a == b


class TestSabreSearch:
    def test_targets_transition_window_and_finds_bug(self):
        runner = StubRunner(unsafe_sensor=GPS, window=(9.5, 11.5))
        session = make_session(budget_units=40, runner=runner)
        search = SabreSearch(session, max_scenarios_per_dequeue=6)
        report = search.run()
        assert report.unsafe_scenarios >= 1
        assert any(result.found_unsafe_condition for result in session.results)

    def test_respects_budget(self):
        session = make_session(budget_units=10)
        SabreSearch(session).run()
        assert session.budget.simulations <= 10

    def test_subsets_ordered_singletons_then_pairs_primaries_first(self):
        session = make_session()
        search = SabreSearch(session, max_concurrent_failures=2)
        subsets = search.subsets
        assert all(len(subset) == 1 for subset in subsets[:9])
        primary_singles = [s for s in subsets[:9] if s[0].instance == 0]
        assert len(primary_singles) == 6
        assert all(s[0].instance == 0 for s in subsets[:6])

    def test_does_not_rerun_explored_scenarios(self):
        runner = StubRunner()
        session = make_session(budget_units=60, runner=runner)
        SabreSearch(session, max_scenarios_per_dequeue=None).run()
        executed = [str(sorted(f.describe() for f in s)) for s in runner.executed]
        assert len(executed) == len(set(executed))

    def test_requires_at_least_one_failure(self):
        session = make_session()
        with pytest.raises(ValueError):
            SabreSearch(session, failures=[])


class TestBfiModel:
    def test_default_prior_matches_paper_distribution(self):
        model = BfiModel()
        assert model.predicts_unsafe(SensorType.ACCELEROMETER, "takeoff")
        assert model.predicts_unsafe(SensorType.COMPASS, "waypoint")
        assert not model.predicts_unsafe(SensorType.GPS, "land")
        assert not model.predicts_unsafe(SensorType.BAROMETER, "takeoff")
        assert not model.predicts_unsafe(SensorType.COMPASS, "takeoff")

    def test_scenario_score_is_max_over_constituents(self):
        model = BfiModel()
        joint = model.scenario_score(
            [SensorType.GPS, SensorType.ACCELEROMETER], "takeoff"
        )
        single = model.predict_unsafe_probability(SensorType.ACCELEROMETER, "takeoff")
        assert joint == pytest.approx(single)

    def test_empty_model_is_uncertain(self):
        model = BfiModel(training_data=[])
        assert model.predict_unsafe_probability(SensorType.GPS, "takeoff") == pytest.approx(0.5)

    def test_observe_updates_predictions(self):
        model = BfiModel(training_data=[])
        for _ in range(5):
            model.observe(TrainingExample(SensorType.GPS, "land", True))
        model.observe(TrainingExample(SensorType.BAROMETER, "takeoff", False))
        assert model.predicts_unsafe(SensorType.GPS, "land")

    def test_default_training_data_has_both_classes(self):
        data = default_training_data()
        assert any(example.unsafe for example in data)
        assert any(not example.unsafe for example in data)


class TestStrategies:
    def test_table1_feature_matrix(self):
        assert AvisStrategy.features.targets_mode_transitions
        assert AvisStrategy.features.uses_prior_bugs
        assert AvisStrategy.features.searches_dissimilar_first
        assert not StratifiedBFI.features.targets_mode_transitions
        assert StratifiedBFI.features.uses_prior_bugs
        assert StratifiedBFI.features.searches_dissimilar_first
        assert not BayesianFaultInjection.features.searches_dissimilar_first
        assert not RandomInjection.features.uses_prior_bugs

    def test_random_injection_respects_budget_and_dedupes(self):
        runner = StubRunner()
        session = make_session(budget_units=15, runner=runner)
        RandomInjection(rng_seed=3).explore(session)
        assert session.budget.simulations <= 15
        assert len(runner.executed) == len(set(runner.executed))

    def test_bfi_charges_labelling_costs(self):
        session = make_session(budget_units=10)
        strategy = BayesianFaultInjection(candidate_granularity_s=1.0)
        strategy.explore(session)
        assert session.budget.labels > 0
        assert strategy.labels_issued == session.budget.labels
        assert session.budget.spent_units <= 10.0 + session.budget.simulation_cost

    def test_stratified_bfi_only_runs_predicted_sites(self):
        runner = StubRunner(unsafe_sensor=COMPASS_P, window=(19.0, 22.0))
        session = make_session(budget_units=40, runner=runner)
        StratifiedBFI().explore(session)
        # Every executed scenario involves a sensor type the model flags.
        flagged_types = {SensorType.ACCELEROMETER, SensorType.COMPASS, SensorType.GYROSCOPE}
        for scenario in runner.executed:
            assert set(scenario.sensor_types) <= flagged_types

    def test_dfs_order_starts_from_the_end(self):
        scenarios = list(DepthFirstSearch.enumerate_scenarios([GPS, BARO], [1.0, 2.0, 3.0]))
        assert scenarios[0].is_empty
        assert scenarios[1].faults[0].start_time == 3.0

    def test_bfs_order_starts_from_whole_run_failures(self):
        scenarios = list(BreadthFirstSearch.enumerate_scenarios([GPS, BARO], [1.0, 2.0, 3.0]))
        assert scenarios[0].is_empty
        assert scenarios[1].faults[0].start_time == 1.0
        # Second scenario fails GPS alone, third the barometer alone.
        assert scenarios[1].sensor_types == [SensorType.GPS]
        assert scenarios[2].sensor_types == [SensorType.BAROMETER]


class TestBudgetAccount:
    def test_charges_and_exhaustion(self):
        budget = BudgetAccount(total_units=2.0, simulation_cost=1.0, labelling_cost=0.25)
        assert budget.can_afford_simulation()
        budget.charge_simulation()
        budget.charge_label()
        assert budget.remaining_units == pytest.approx(0.75)
        assert budget.exhausted
        assert budget.can_afford_label()

    def test_session_returns_cached_result_without_charge(self):
        runner = StubRunner()
        session = make_session(budget_units=5, runner=runner)
        scenario = FaultScenario([FaultSpec(GPS, 10.0)])
        first = session.run_scenario(scenario)
        second = session.run_scenario(scenario)
        assert first is second
        assert session.budget.simulations == 1

    def test_session_refuses_when_budget_exhausted(self):
        session = make_session(budget_units=1)
        assert session.run_scenario(FaultScenario([FaultSpec(GPS, 1.0)])) is not None
        assert session.run_scenario(FaultScenario([FaultSpec(BARO, 1.0)])) is None
