"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pruning import symmetric_fault_count, unpruned_fault_count
from repro.core.session import BudgetAccount
from repro.hinj.faults import FaultScenario, FaultSpec
from repro.sensors.base import SensorId, SensorRole, SensorType
from repro.core.pruning import symmetry_signature
from repro.sim.state import euclidean_distance, wrap_angle

sensor_types = st.sampled_from(list(SensorType))
sensor_ids = st.builds(SensorId, sensor_type=sensor_types, instance=st.integers(0, 3))
fault_specs = st.builds(
    FaultSpec,
    sensor_id=sensor_ids,
    start_time=st.floats(0.0, 120.0, allow_nan=False, allow_infinity=False),
)
fault_lists = st.lists(fault_specs, max_size=6)


class TestAngleProperties:
    @given(st.floats(-1000.0, 1000.0))
    def test_wrap_angle_stays_in_range(self, angle):
        wrapped = wrap_angle(angle)
        assert -math.pi < wrapped <= math.pi + 1e-9

    @given(st.floats(-math.pi + 1e-6, math.pi - 1e-6))
    def test_wrap_angle_is_identity_inside_range(self, angle):
        assert wrap_angle(angle) == pytest_approx(angle)

    @given(st.floats(-100.0, 100.0), st.integers(-5, 5))
    def test_wrap_angle_invariant_to_full_turns(self, angle, turns):
        assert abs(wrap_angle(angle) - wrap_angle(angle + turns * 2.0 * math.pi)) < 1e-6


def pytest_approx(value, tolerance=1e-9):
    class _Approx:
        def __eq__(self, other):
            return abs(other - value) <= tolerance

    return _Approx()


class TestDistanceProperties:
    coordinates = st.tuples(
        st.floats(-500.0, 500.0), st.floats(-500.0, 500.0), st.floats(-500.0, 500.0)
    )

    @given(coordinates, coordinates)
    def test_symmetry(self, a, b):
        assert euclidean_distance(a, b) == euclidean_distance(b, a)

    @given(coordinates)
    def test_identity(self, a):
        assert euclidean_distance(a, a) == 0.0

    @given(coordinates, coordinates, coordinates)
    def test_triangle_inequality(self, a, b, c):
        assert euclidean_distance(a, c) <= (
            euclidean_distance(a, b) + euclidean_distance(b, c) + 1e-6
        )


class TestFaultScenarioProperties:
    @given(fault_lists)
    def test_equality_is_order_independent(self, faults):
        assert FaultScenario(faults) == FaultScenario(list(reversed(faults)))
        assert hash(FaultScenario(faults)) == hash(FaultScenario(list(reversed(faults))))

    @given(fault_lists)
    def test_length_never_exceeds_input(self, faults):
        scenario = FaultScenario(faults)
        assert len(scenario) <= len(faults)
        assert len(scenario) == len(set(faults))

    @given(fault_lists, fault_lists)
    def test_extended_is_superset(self, first, second):
        base = FaultScenario(first)
        extended = base.extended(second)
        assert set(base) <= set(extended)

    @given(fault_lists, st.floats(0.0, 50.0, allow_nan=False))
    def test_shifted_preserves_size_and_clamps_to_zero(self, faults, offset):
        scenario = FaultScenario(faults)
        shifted = scenario.shifted(-offset)
        assert len(shifted) <= len(scenario)
        assert all(fault.start_time >= 0.0 for fault in shifted)

    @given(fault_lists)
    def test_should_fail_consistent_with_fault_for(self, faults):
        scenario = FaultScenario(faults)
        for fault in scenario:
            assert scenario.should_fail(fault.sensor_id, fault.start_time + 0.001)


class TestSymmetryProperties:
    @given(st.integers(1, 12))
    def test_symmetric_count_never_exceeds_unpruned(self, instances):
        assert symmetric_fault_count(instances) <= unpruned_fault_count(instances)

    @given(st.integers(1, 12))
    def test_symmetric_count_formula(self, instances):
        assert symmetric_fault_count(instances) == 2 * instances - 1

    @given(st.integers(1, 3), st.floats(0.0, 60.0, allow_nan=False))
    def test_signature_identical_for_role_equivalent_backups(self, backup_index, time):
        def role_of(sensor_id):
            return SensorRole.PRIMARY if sensor_id.instance == 0 else SensorRole.BACKUP

        first = FaultScenario([FaultSpec(SensorId(SensorType.COMPASS, backup_index), time)])
        second = FaultScenario([FaultSpec(SensorId(SensorType.COMPASS, backup_index + 1), time)])
        assert symmetry_signature(first, role_of) == symmetry_signature(second, role_of)


class TestBudgetProperties:
    @given(
        st.floats(1.0, 200.0, allow_nan=False),
        st.integers(0, 50),
        st.integers(0, 200),
    )
    @settings(max_examples=50)
    def test_spent_matches_charges(self, total, simulations, labels):
        budget = BudgetAccount(total_units=total, simulation_cost=1.0, labelling_cost=0.15)
        for _ in range(simulations):
            budget.charge_simulation()
        for _ in range(labels):
            budget.charge_label()
        assert budget.simulations == simulations
        assert budget.labels == labels
        assert budget.spent_units == pytest_approx(simulations * 1.0 + labels * 0.15, 1e-6)
        assert budget.remaining_units >= 0.0
