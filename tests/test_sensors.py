"""Unit tests for the sensor models and the sensor suite."""

import math

import pytest

from repro.sensors import (
    Accelerometer,
    Barometer,
    BatteryMonitor,
    Compass,
    GpsReceiver,
    Gyroscope,
    SensorId,
    SensorRole,
    SensorType,
    iris_sensor_suite,
)
from repro.sensors.suite import SensorSuite, minimal_sensor_suite
from repro.sim.physics import GRAVITY
from repro.sim.state import AttitudeState, VehicleState


def state_at(altitude: float = 10.0, yaw: float = 0.3) -> VehicleState:
    return VehicleState(
        time=5.0,
        position=(3.0, 4.0, altitude),
        velocity=(1.0, -0.5, 0.2),
        acceleration=(0.2, 0.1, 0.0),
        attitude=AttitudeState(yaw=yaw),
        armed=True,
        on_ground=False,
    )


class TestIndividualSensors:
    def test_gyroscope_reports_rates(self):
        gyro = Gyroscope()
        reading = gyro.read(state_at(), 1.0)
        assert set(reading.values) == {"roll_rate", "pitch_rate", "yaw_rate"}
        assert not reading.failed

    def test_accelerometer_senses_gravity_at_rest(self):
        accel = Accelerometer()
        rest = VehicleState()
        reading = accel.read(rest, 0.0)
        assert reading.value("accel_z") == pytest.approx(GRAVITY, abs=0.5)

    def test_gps_altitude_is_quantised(self):
        gps = GpsReceiver()
        reading = gps.read(state_at(altitude=17.3), 1.0)
        assert reading.value("altitude") % GpsReceiver.VERTICAL_RESOLUTION == pytest.approx(0.0)

    def test_gps_horizontal_position_close_to_truth(self):
        gps = GpsReceiver()
        reading = gps.read(state_at(), 1.0)
        assert reading.value("north") == pytest.approx(3.0, abs=2.0)
        assert reading.value("east") == pytest.approx(4.0, abs=2.0)

    def test_compass_reports_heading_near_truth(self):
        compass = Compass()
        reading = compass.read(state_at(yaw=0.3), 1.0)
        assert reading.value("heading") == pytest.approx(0.3, abs=0.1)

    def test_barometer_tracks_altitude(self):
        baro = Barometer()
        reading = baro.read(state_at(altitude=25.0), 1.0)
        assert reading.value("altitude") == pytest.approx(25.0, abs=0.6)
        assert reading.value("pressure_hpa") < 1013.25

    def test_battery_discharges_over_time(self):
        battery = BatteryMonitor()
        early = battery.read(state_at(), 1.0)
        late_state = VehicleState(time=600.0, armed=True, on_ground=False)
        late = battery.read(late_state, 600.0)
        assert late.value("remaining") < early.value("remaining")

    def test_noise_is_deterministic_per_seed(self):
        first = Gyroscope(noise_seed=3).read(state_at(), 1.0)
        second = Gyroscope(noise_seed=3).read(state_at(), 1.0)
        assert first.values == second.values

    def test_noise_differs_between_seeds(self):
        first = Gyroscope(noise_seed=1).read(state_at(), 1.0)
        second = Gyroscope(noise_seed=2).read(state_at(), 1.0)
        assert first.values != second.values


class TestCleanFailureSemantics:
    def test_fail_latches(self):
        gps = GpsReceiver()
        gps.fail()
        reading = gps.read(state_at(), 1.0)
        assert reading.failed
        assert reading.values == {}
        assert gps.failed

    def test_instrumentation_hook_fails_reads(self):
        gps = GpsReceiver()
        gps.instrument(lambda sensor_id, time: time >= 2.0)
        assert not gps.read(state_at(), 1.0).failed
        assert gps.read(state_at(), 2.5).failed
        # Failure is latched even if the hook would say no later.
        gps.remove_instrumentation()
        assert gps.read(state_at(), 3.0).failed

    def test_reset_restores_health(self):
        gps = GpsReceiver()
        gps.fail()
        gps.reset()
        assert gps.healthy
        assert not gps.read(state_at(), 1.0).failed


class TestSensorSuite:
    def test_iris_suite_composition(self):
        suite = iris_sensor_suite()
        assert len(suite) == 9
        assert suite.instance_count(SensorType.GYROSCOPE) == 2
        assert suite.instance_count(SensorType.ACCELEROMETER) == 2
        assert suite.instance_count(SensorType.COMPASS) == 2
        assert suite.instance_count(SensorType.GPS) == 1
        assert suite.instance_count(SensorType.BAROMETER) == 1
        assert suite.instance_count(SensorType.BATTERY) == 1

    def test_primary_first_ordering(self):
        suite = iris_sensor_suite()
        compasses = suite.instances_of(SensorType.COMPASS)
        assert compasses[0].role == SensorRole.PRIMARY
        assert compasses[1].role == SensorRole.BACKUP

    def test_failover_to_backup(self):
        suite = iris_sensor_suite()
        primary = suite.driver(SensorId(SensorType.COMPASS, 0))
        primary.fail()
        active = suite.active_instance(SensorType.COMPASS)
        assert active is not None
        assert active.sensor_id.instance == 1

    def test_all_failed_detection(self):
        suite = iris_sensor_suite()
        for driver in suite.instances_of(SensorType.COMPASS):
            driver.fail()
        assert suite.all_failed(SensorType.COMPASS)
        assert suite.active_instance(SensorType.COMPASS) is None

    def test_read_all_and_read_active(self):
        suite = iris_sensor_suite()
        suite.driver(SensorId(SensorType.GYROSCOPE, 0)).fail()
        readings = suite.read_all(state_at(), 1.0)
        assert len(readings) == 9
        active = suite.read_active(readings, SensorType.GYROSCOPE)
        assert active is not None and active.sensor_id.instance == 1

    def test_read_active_none_when_type_exhausted(self):
        suite = minimal_sensor_suite()
        suite.driver(SensorId(SensorType.GPS, 0)).fail()
        readings = suite.read_all(state_at(), 1.0)
        assert suite.read_active(readings, SensorType.GPS) is None

    def test_instrument_all_drivers(self):
        suite = iris_sensor_suite()
        suite.instrument(lambda sensor_id, time: True)
        readings = suite.read_all(state_at(), 1.0)
        assert all(reading.failed for reading in readings.values())

    def test_duplicate_instances_rejected(self):
        with pytest.raises(ValueError):
            SensorSuite([GpsReceiver(instance=0), GpsReceiver(instance=0)])

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            SensorSuite([])

    def test_reset_restores_all(self):
        suite = iris_sensor_suite()
        suite.driver(SensorId(SensorType.GPS, 0)).fail()
        suite.reset()
        assert not suite.failed_sensor_ids()


class TestSensorId:
    def test_ordering_is_stable_and_by_type_name(self):
        ids = [
            SensorId(SensorType.GYROSCOPE, 1),
            SensorId(SensorType.ACCELEROMETER, 0),
            SensorId(SensorType.GYROSCOPE, 0),
        ]
        ordered = sorted(ids)
        assert ordered[0].sensor_type == SensorType.ACCELEROMETER
        assert ordered[1] == SensorId(SensorType.GYROSCOPE, 0)

    def test_label(self):
        assert SensorId(SensorType.GPS, 0).label == "gps[0]"

    def test_rejects_negative_instance(self):
        with pytest.raises(ValueError):
            SensorId(SensorType.GPS, -1)
