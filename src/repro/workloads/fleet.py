"""Fleet workloads: missions flown by several vehicles at once.

The classic workloads (:mod:`repro.workloads.builtin`) drive exactly one
vehicle through the Figure 8 API.  :class:`FleetTarget` extends the same
framework to a fleet: the harness provides one ground-control station
per vehicle (see :meth:`repro.core.runner.SimulationHarness.vehicle`),
and the base class adds fleet-wide arm / takeoff / land helpers so
workload bodies read like their single-vehicle counterparts.

Three built-in fleet workloads ship with the engine:

* :class:`ConvoyFollowWorkload` -- a lead vehicle flies a corridor out
  and back while a follower tracks it *over the traffic channel*: the
  follower's only view of the lead is the position/velocity beacons the
  lead broadcasts (:mod:`repro.mavlink.traffic`), consumed with latency.
  A stale or lost view of the lead on the return leg -- exactly what the
  coordination fault family injects -- leaves the follower holding in
  the corridor while the lead flies back through it, the canonical
  loss-of-separation hazard of beacon-coordinated fleets.
* :class:`CrossingPathsWorkload` -- two vehicles fly crossing legs that
  are deconflicted by altitude; mishandled altitude-sensor failures
  erode the vertical separation at the crossing point.
* :class:`MultiPadTakeoffLandWorkload` -- every vehicle takes off from
  its own pad simultaneously, hovers, and lands.  A fail-safe return on
  any vehicle flies it to the shared home -- directly above pad 0.

All three pass fault-free (they are profile-able, which the separation
invariant's calibration requires) and keep a healthy margin above the
calibrated minimum-separation threshold on golden runs.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.workloads.framework import Target, WorkloadFailure, WorkloadTimeout


class FleetTarget(Target):
    """Base class for workloads that drive more than one vehicle.

    Subclasses declare how many vehicles they need via ``fleet_size``
    (checked against the harness at run time) and reach individual
    vehicles through :meth:`vehicle`.  The single-vehicle helpers
    inherited from :class:`Target` keep operating on vehicle 0, the
    lead.
    """

    #: Number of vehicles the workload needs; the run configuration's
    #: ``fleet_size`` must be at least this.
    fleet_size: int = 2

    # ------------------------------------------------------------------
    # Fleet introspection
    # ------------------------------------------------------------------
    def vehicle(self, index: int):
        """The harness facade for fleet member ``index``."""
        return self._harness.vehicle(index)

    @property
    def fleet(self) -> List:
        """Handles for the vehicles this workload drives."""
        return [self.vehicle(index) for index in range(self.fleet_size)]

    def vehicle_altitude(self, index: int) -> float:
        """Reported altitude of fleet member ``index``."""
        return self.vehicle(index).telemetry.relative_altitude

    def vehicle_position(self, index: int) -> tuple:
        """Reported (north, east) offset of fleet member ``index``."""
        handle = self.vehicle(index)
        telemetry = handle.telemetry
        home = self._harness.home
        if not telemetry.latitude and not telemetry.longitude:
            return handle.pad_offset
        return home.local_offset_to(
            type(home)(
                latitude_deg=telemetry.latitude or home.latitude_deg,
                longitude_deg=telemetry.longitude or home.longitude_deg,
                altitude_msl_m=home.altitude_msl_m,
            )
        )

    def check_fleet(self) -> None:
        """Fail fast when the harness hosts fewer vehicles than needed."""
        available = getattr(self._harness, "fleet_size", 1)
        if available < self.fleet_size:
            raise WorkloadFailure(
                f"{self.display_name} needs a fleet of {self.fleet_size}, "
                f"harness provides {available}"
            )

    # ------------------------------------------------------------------
    # Fleet-wide operations
    # ------------------------------------------------------------------
    def arm_fleet(self, timeout_s: float = 30.0) -> None:
        """Arm every vehicle, re-requesting until telemetry confirms."""
        last_request = [-10.0] * self.fleet_size

        def all_armed() -> bool:
            armed = True
            for index in range(self.fleet_size):
                handle = self.vehicle(index)
                if handle.telemetry.armed:
                    continue
                armed = False
                if self._harness.time - last_request[index] > 1.0:
                    handle.gcs.arm()
                    last_request[index] = self._harness.time
            return armed

        self.wait_until(all_armed, timeout_s=timeout_s, description="fleet to arm")

    def takeoff_fleet(
        self,
        altitudes: Sequence[float],
        tolerance: float = 1.5,
        timeout_s: Optional[float] = None,
    ) -> None:
        """Command a simultaneous guided takeoff, one altitude per vehicle."""
        if len(altitudes) != self.fleet_size:
            raise ValueError("one takeoff altitude per vehicle required")
        for index, altitude in enumerate(altitudes):
            self.vehicle(index).gcs.command_takeoff(altitude)
        self.step(5)
        self.wait_until(
            lambda: all(
                abs(self.vehicle_altitude(index) - altitudes[index]) <= tolerance
                for index in range(self.fleet_size)
            ),
            timeout_s=timeout_s,
            description="fleet takeoff altitudes",
        )

    def goto_vehicle(
        self,
        index: int,
        north: float,
        east: float,
        altitude: float,
        speed_limit: Optional[float] = None,
    ) -> None:
        """Send one vehicle a guided target (offsets from home, metres)."""
        self.vehicle(index).set_guided_target(
            north, east, altitude, speed_limit=speed_limit
        )

    def wait_vehicle_position(
        self,
        index: int,
        north: float,
        east: float,
        radius: float = 3.0,
        timeout_s: Optional[float] = None,
    ) -> None:
        """Wait until one vehicle is within ``radius`` metres of a point."""

        def reached() -> bool:
            d_north, d_east = self.vehicle_position(index)
            return math.hypot(d_north - north, d_east - east) <= radius

        self.wait_until(
            reached,
            timeout_s=timeout_s,
            description=f"vehicle {index} at ({north:.0f}, {east:.0f})",
        )

    def land_fleet(self, timeout_s: Optional[float] = None) -> None:
        """Switch every vehicle to land and wait until all have disarmed.

        Each vehicle is commanded with its *own* flavour's SET_MODE
        string: a heterogeneous fleet's PX4 wing does not understand the
        ArduPilot lead's mode names.
        """
        for index in range(self.fleet_size):
            handle = self.vehicle(index)
            handle.gcs.set_mode(handle.land_mode_name)
        self.step(5)
        self.wait_until(
            lambda: all(
                not self.vehicle(index).telemetry.armed
                for index in range(self.fleet_size)
            ),
            timeout_s=timeout_s,
            description="fleet to land and disarm",
        )


class ConvoyFollowWorkload(FleetTarget):
    """A two-vehicle convoy flying a northbound corridor out and back.

    The lead launches from pad 0, the follower from pad 1.  After a
    simultaneous takeoff the follower slots in ``gap_m`` metres south of
    the lead on the corridor centreline and *tracks the lead over the
    traffic channel*: its target is re-derived every few steps from the
    lead's most recent position beacon -- the follower never reads the
    lead's state, telemetry, or flight plan.  The pair advances in
    ``leg_step_m`` increments to ``leg_m`` metres north, turns around,
    and returns to the pads, where both land.

    The return leg is the hazard the coordination faults weaponise: the
    lead flies *toward* the follower's slot, and only the beacon stream
    keeps the follower retreating ahead of it.  A frozen or dropped-out
    view of the lead (``beacon_timeout_s`` decides when the follower
    declares its picture stale and holds) leaves the follower parked in
    the corridor while the lead closes head-on.  The convoy altitude is
    deliberately above the firmware's RTL return altitude, so a
    mid-corridor fail-safe return likewise comes back at convoy
    altitude, through the follower's slot.

    ``return_speed_ms`` (None keeps the outbound cruise speed, the
    classic profile) lets the lead fly the return legs faster -- the
    empty-run-home profile real convoys fly.  A fast return sharpens
    the *recovery-window* hazard of intermittent dropouts: a follower
    whose beacon picture recovers mid-return rushes back north to
    re-acquire its slot exactly while the lead bears down on it at
    return speed.
    """

    name = "convoy-follow"
    fleet_size = 2

    #: Class-level default for the return-leg speed.  Deliberately *not*
    #: an instance attribute unless overridden: the cache's workload
    #: fingerprint renders every public instance attribute, so a default
    #: convoy must expose exactly the attribute set it always had --
    #: existing convoy cache entries and grid streams stay valid.
    return_speed_ms: Optional[float] = None

    def __init__(
        self,
        altitude: float = 16.0,
        leg_m: float = 40.0,
        gap_m: float = 10.0,
        leg_step_m: float = 10.0,
        init_wait_ms: float = 2000.0,
        beacon_timeout_s: float = 1.5,
        follow_update_steps: int = 5,
        convoy_speed_ms: float = 3.0,
        checkpoint_pause_ms: float = 1200.0,
        return_speed_ms: Optional[float] = None,
    ) -> None:
        super().__init__()
        self.altitude = altitude
        self.leg_m = leg_m
        self.gap_m = gap_m
        self.leg_step_m = leg_step_m
        self.init_wait_ms = init_wait_ms
        self.beacon_timeout_s = beacon_timeout_s
        self.follow_update_steps = max(1, follow_update_steps)
        self.convoy_speed_ms = convoy_speed_ms
        self.checkpoint_pause_ms = checkpoint_pause_ms
        if return_speed_ms is not None:
            self.return_speed_ms = return_speed_ms

    # ------------------------------------------------------------------
    # Beacon-driven following
    # ------------------------------------------------------------------
    def _follow_lead(self) -> None:
        """One follower control decision from the latest lead beacon.

        No beacon yet, or a beacon older than ``beacon_timeout_s``,
        means the follower has no trustworthy picture of the lead: it
        holds its last commanded slot (the firmware keeps flying toward
        the last guided target and hovers there).
        """
        beacon = self.vehicle(1).traffic_view(0)
        if beacon is None:
            return
        age = beacon.age_at(self._harness.time)
        if age > self.beacon_timeout_s:
            return
        # Dead-reckon the lead forward by the beacon's age -- the same
        # extrapolation real traffic receivers apply to ADS-B velocity.
        # A frozen beacon carries zero velocity, so a stale ghost is
        # (correctly) tracked as stationary.
        north = beacon.position[0] + beacon.velocity[0] * age
        east = beacon.position[1] + beacon.velocity[1] * age
        self.goto_vehicle(1, north - self.gap_m, east, self.altitude)

    def _command_lead(
        self, north: float, east: float = 0.0, speed: Optional[float] = None
    ) -> None:
        """Command the lead to a corridor point (cruise speed default)."""
        self.goto_vehicle(
            0,
            north,
            east,
            self.altitude,
            speed_limit=speed if speed is not None else self.convoy_speed_ms,
        )

    def _advance_lead(
        self,
        north: float,
        east: float = 0.0,
        radius: float = 3.0,
        speed: Optional[float] = None,
    ) -> None:
        """Command the lead to a corridor point and step until it arrives,
        re-deriving the follower's slot from the beacon stream throughout."""
        self._command_lead(north, east, speed=speed)
        deadline = self._harness.time + self.default_timeout_s
        while True:
            d_north, d_east = self.vehicle_position(0)
            if math.hypot(d_north - north, d_east - east) <= radius:
                return
            if self._harness.time >= deadline:
                raise WorkloadTimeout(
                    f"timed out after {self.default_timeout_s:.0f}s waiting "
                    f"for the lead at ({north:.0f}, {east:.0f})"
                )
            self.step(self.follow_update_steps)
            self._follow_lead()

    def _checkpoint_pause(self) -> None:
        """Hold the lead at a corridor checkpoint for a beat.

        The lead drops into its position-hold mode and back to guided --
        an operating-mode transition pair at every checkpoint, which is
        what anchors SABRE's transition queue (and its separation
        weights) to the corridor geometry instead of only takeoff and
        landing.  The follower keeps tracking beacons throughout.
        """
        if self.checkpoint_pause_ms <= 0.0:
            return
        lead = self.vehicle(0)
        lead.gcs.set_mode(lead.position_hold_mode_name)
        pause_steps = max(
            int(self.checkpoint_pause_ms / 1000.0 / self._harness.dt), 1
        )
        for _ in range(0, pause_steps, self.follow_update_steps):
            self.step(self.follow_update_steps)
            self._follow_lead()
        lead.gcs.set_mode(lead.guided_mode_name)
        self.step(self.follow_update_steps)
        self._follow_lead()

    def test(self) -> None:
        self.check_fleet()
        self.wait_time(self.init_wait_ms)
        self.arm_fleet()
        self.takeoff_fleet([self.altitude, self.altitude])

        # Form up: the lead holds over pad 0 while the follower acquires
        # the beacon stream and slots in behind it on the centreline.
        deadline = self._harness.time + self.default_timeout_s
        while True:
            d_north, d_east = self.vehicle_position(1)
            if math.hypot(d_north + self.gap_m, d_east) <= 3.0:
                break
            if self._harness.time >= deadline:
                raise WorkloadTimeout("follower never acquired its convoy slot")
            self.step(self.follow_update_steps)
            self._follow_lead()

        # Outbound leg, turn-around, return leg: the follower's motion
        # is derived from beacons the whole way, and the lead pauses at
        # every checkpoint (a mode-transition pair per checkpoint).
        distance = self.leg_step_m
        while distance <= self.leg_m:
            self._advance_lead(distance)
            self._checkpoint_pause()
            distance += self.leg_step_m
        distance = self.leg_m - self.leg_step_m
        while distance >= 0.0:
            self._advance_lead(distance, speed=self.return_speed_ms)
            self._checkpoint_pause()
            distance -= self.leg_step_m

        self.land_fleet()
        self.pass_test()


class CrossingPathsWorkload(FleetTarget):
    """Two vehicles fly crossing legs deconflicted by altitude.

    Vehicle 0 flies its leg low, vehicle 1 flies high; their ground
    tracks cross mid-leg, so the whole vertical margin
    (``high_altitude - low_altitude``) is what keeps them separated at
    the crossing point.  Sensor failures that corrupt the altitude
    estimate (or trigger a descending fail-safe mid-leg) spend that
    margin.
    """

    name = "crossing-paths"
    fleet_size = 2

    def __init__(
        self,
        low_altitude: float = 10.0,
        high_altitude: float = 16.0,
        leg_m: float = 30.0,
        init_wait_ms: float = 2000.0,
    ) -> None:
        super().__init__()
        self.low_altitude = low_altitude
        self.high_altitude = high_altitude
        self.leg_m = leg_m
        self.init_wait_ms = init_wait_ms

    def test(self) -> None:
        self.check_fleet()
        self.wait_time(self.init_wait_ms)
        pad_east = self.vehicle(1).pad_offset[1]
        self.arm_fleet()
        self.takeoff_fleet([self.low_altitude, self.high_altitude])

        # Crossing ground tracks: vehicle 0 from pad 0 to the far corner
        # above pad 1's column, vehicle 1 the mirror image.
        self.goto_vehicle(0, self.leg_m, pad_east, self.low_altitude)
        self.goto_vehicle(1, self.leg_m, 0.0, self.high_altitude)
        self.wait_vehicle_position(0, self.leg_m, pad_east, radius=3.0)
        self.wait_vehicle_position(1, self.leg_m, 0.0, radius=3.0)

        self.land_fleet()
        self.pass_test()


class MultiPadTakeoffLandWorkload(FleetTarget):
    """Simultaneous takeoff, hover and landing from a row of pads.

    Exercises the densest phase of fleet operation: every vehicle in the
    air at once, separated only by the pad spacing.  Any fail-safe
    return flies the affected vehicle to the shared home point --
    directly above pad 0 and through the hovering formation.
    """

    name = "multi-pad"
    fleet_size = 3

    def __init__(
        self,
        altitude: float = 12.0,
        hover_ms: float = 3000.0,
        init_wait_ms: float = 2000.0,
        fleet_size: Optional[int] = None,
    ) -> None:
        super().__init__()
        if fleet_size is not None:
            if fleet_size < 2:
                raise ValueError("a multi-pad fleet needs at least 2 vehicles")
            self.fleet_size = fleet_size
        self.altitude = altitude
        self.hover_ms = hover_ms
        self.init_wait_ms = init_wait_ms

    def test(self) -> None:
        self.check_fleet()
        self.wait_time(self.init_wait_ms)
        self.arm_fleet()
        self.takeoff_fleet([self.altitude] * self.fleet_size)
        self.wait_time(self.hover_ms)
        self.land_fleet()
        self.pass_test()


def default_fleet_workloads() -> List[FleetTarget]:
    """The three built-in fleet workloads with their default geometry."""
    return [
        ConvoyFollowWorkload(),
        CrossingPathsWorkload(),
        MultiPadTakeoffLandWorkload(),
    ]
