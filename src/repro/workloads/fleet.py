"""Fleet workloads: missions flown by several vehicles at once.

The classic workloads (:mod:`repro.workloads.builtin`) drive exactly one
vehicle through the Figure 8 API.  :class:`FleetTarget` extends the same
framework to a fleet: the harness provides one ground-control station
per vehicle (see :meth:`repro.core.runner.SimulationHarness.vehicle`),
and the base class adds fleet-wide arm / takeoff / land helpers so
workload bodies read like their single-vehicle counterparts.

Three built-in fleet workloads ship with the engine:

* :class:`ConvoyFollowWorkload` -- a lead vehicle flies a straight
  corridor while a follower keeps a fixed gap behind it.  A fail-safe
  return on the lead sends it back *through* the follower's position,
  the canonical loss-of-separation hazard of shared-home fleets.
* :class:`CrossingPathsWorkload` -- two vehicles fly crossing legs that
  are deconflicted by altitude; mishandled altitude-sensor failures
  erode the vertical separation at the crossing point.
* :class:`MultiPadTakeoffLandWorkload` -- every vehicle takes off from
  its own pad simultaneously, hovers, and lands.  A fail-safe return on
  any vehicle flies it to the shared home -- directly above pad 0.

All three pass fault-free (they are profile-able, which the separation
invariant's calibration requires) and keep a healthy margin above the
calibrated minimum-separation threshold on golden runs.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.workloads.framework import Target, WorkloadFailure


class FleetTarget(Target):
    """Base class for workloads that drive more than one vehicle.

    Subclasses declare how many vehicles they need via ``fleet_size``
    (checked against the harness at run time) and reach individual
    vehicles through :meth:`vehicle`.  The single-vehicle helpers
    inherited from :class:`Target` keep operating on vehicle 0, the
    lead.
    """

    #: Number of vehicles the workload needs; the run configuration's
    #: ``fleet_size`` must be at least this.
    fleet_size: int = 2

    # ------------------------------------------------------------------
    # Fleet introspection
    # ------------------------------------------------------------------
    def vehicle(self, index: int):
        """The harness facade for fleet member ``index``."""
        return self._harness.vehicle(index)

    @property
    def fleet(self) -> List:
        """Handles for the vehicles this workload drives."""
        return [self.vehicle(index) for index in range(self.fleet_size)]

    def vehicle_altitude(self, index: int) -> float:
        """Reported altitude of fleet member ``index``."""
        return self.vehicle(index).telemetry.relative_altitude

    def vehicle_position(self, index: int) -> tuple:
        """Reported (north, east) offset of fleet member ``index``."""
        handle = self.vehicle(index)
        telemetry = handle.telemetry
        home = self._harness.home
        if not telemetry.latitude and not telemetry.longitude:
            return handle.pad_offset
        return home.local_offset_to(
            type(home)(
                latitude_deg=telemetry.latitude or home.latitude_deg,
                longitude_deg=telemetry.longitude or home.longitude_deg,
                altitude_msl_m=home.altitude_msl_m,
            )
        )

    def check_fleet(self) -> None:
        """Fail fast when the harness hosts fewer vehicles than needed."""
        available = getattr(self._harness, "fleet_size", 1)
        if available < self.fleet_size:
            raise WorkloadFailure(
                f"{self.display_name} needs a fleet of {self.fleet_size}, "
                f"harness provides {available}"
            )

    # ------------------------------------------------------------------
    # Fleet-wide operations
    # ------------------------------------------------------------------
    def arm_fleet(self, timeout_s: float = 30.0) -> None:
        """Arm every vehicle, re-requesting until telemetry confirms."""
        last_request = [-10.0] * self.fleet_size

        def all_armed() -> bool:
            armed = True
            for index in range(self.fleet_size):
                handle = self.vehicle(index)
                if handle.telemetry.armed:
                    continue
                armed = False
                if self._harness.time - last_request[index] > 1.0:
                    handle.gcs.arm()
                    last_request[index] = self._harness.time
            return armed

        self.wait_until(all_armed, timeout_s=timeout_s, description="fleet to arm")

    def takeoff_fleet(
        self,
        altitudes: Sequence[float],
        tolerance: float = 1.5,
        timeout_s: Optional[float] = None,
    ) -> None:
        """Command a simultaneous guided takeoff, one altitude per vehicle."""
        if len(altitudes) != self.fleet_size:
            raise ValueError("one takeoff altitude per vehicle required")
        for index, altitude in enumerate(altitudes):
            self.vehicle(index).gcs.command_takeoff(altitude)
        self.step(5)
        self.wait_until(
            lambda: all(
                abs(self.vehicle_altitude(index) - altitudes[index]) <= tolerance
                for index in range(self.fleet_size)
            ),
            timeout_s=timeout_s,
            description="fleet takeoff altitudes",
        )

    def goto_vehicle(self, index: int, north: float, east: float, altitude: float) -> None:
        """Send one vehicle a guided target (offsets from home, metres)."""
        self.vehicle(index).set_guided_target(north, east, altitude)

    def wait_vehicle_position(
        self,
        index: int,
        north: float,
        east: float,
        radius: float = 3.0,
        timeout_s: Optional[float] = None,
    ) -> None:
        """Wait until one vehicle is within ``radius`` metres of a point."""

        def reached() -> bool:
            d_north, d_east = self.vehicle_position(index)
            return math.hypot(d_north - north, d_east - east) <= radius

        self.wait_until(
            reached,
            timeout_s=timeout_s,
            description=f"vehicle {index} at ({north:.0f}, {east:.0f})",
        )

    def land_fleet(self, timeout_s: Optional[float] = None) -> None:
        """Switch every vehicle to land and wait until all have disarmed."""
        for index in range(self.fleet_size):
            self.vehicle(index).gcs.set_mode(self._harness.land_mode_name)
        self.step(5)
        self.wait_until(
            lambda: all(
                not self.vehicle(index).telemetry.armed
                for index in range(self.fleet_size)
            ),
            timeout_s=timeout_s,
            description="fleet to land and disarm",
        )


class ConvoyFollowWorkload(FleetTarget):
    """A two-vehicle convoy along a straight northbound corridor.

    The lead launches from pad 0, the follower from pad 1.  After a
    simultaneous takeoff the follower falls in ``gap_m`` metres behind
    the lead on the corridor's centreline, and the pair advances in
    ``leg_step_m`` increments until the lead has covered ``leg_m``
    metres.  Both land in place.

    The convoy altitude is deliberately above the firmware's RTL return
    altitude so a mid-corridor fail-safe return flies the lead back at
    convoy altitude -- head-on through the follower's slot.
    """

    name = "convoy-follow"
    fleet_size = 2

    def __init__(
        self,
        altitude: float = 16.0,
        leg_m: float = 40.0,
        gap_m: float = 6.0,
        leg_step_m: float = 10.0,
        init_wait_ms: float = 2000.0,
    ) -> None:
        super().__init__()
        self.altitude = altitude
        self.leg_m = leg_m
        self.gap_m = gap_m
        self.leg_step_m = leg_step_m
        self.init_wait_ms = init_wait_ms

    def test(self) -> None:
        self.check_fleet()
        self.wait_time(self.init_wait_ms)
        self.arm_fleet()
        self.takeoff_fleet([self.altitude, self.altitude])

        # Form up: the follower slots in behind the lead on the corridor
        # centreline (north axis through pad 0).
        self.goto_vehicle(1, -self.gap_m, 0.0, self.altitude)
        self.wait_vehicle_position(1, -self.gap_m, 0.0, radius=3.0)

        distance = self.leg_step_m
        while distance <= self.leg_m:
            self.goto_vehicle(0, distance, 0.0, self.altitude)
            self.goto_vehicle(1, distance - self.gap_m, 0.0, self.altitude)
            self.wait_vehicle_position(0, distance, 0.0, radius=3.0)
            distance += self.leg_step_m

        self.land_fleet()
        self.pass_test()


class CrossingPathsWorkload(FleetTarget):
    """Two vehicles fly crossing legs deconflicted by altitude.

    Vehicle 0 flies its leg low, vehicle 1 flies high; their ground
    tracks cross mid-leg, so the whole vertical margin
    (``high_altitude - low_altitude``) is what keeps them separated at
    the crossing point.  Sensor failures that corrupt the altitude
    estimate (or trigger a descending fail-safe mid-leg) spend that
    margin.
    """

    name = "crossing-paths"
    fleet_size = 2

    def __init__(
        self,
        low_altitude: float = 10.0,
        high_altitude: float = 16.0,
        leg_m: float = 30.0,
        init_wait_ms: float = 2000.0,
    ) -> None:
        super().__init__()
        self.low_altitude = low_altitude
        self.high_altitude = high_altitude
        self.leg_m = leg_m
        self.init_wait_ms = init_wait_ms

    def test(self) -> None:
        self.check_fleet()
        self.wait_time(self.init_wait_ms)
        pad_east = self.vehicle(1).pad_offset[1]
        self.arm_fleet()
        self.takeoff_fleet([self.low_altitude, self.high_altitude])

        # Crossing ground tracks: vehicle 0 from pad 0 to the far corner
        # above pad 1's column, vehicle 1 the mirror image.
        self.goto_vehicle(0, self.leg_m, pad_east, self.low_altitude)
        self.goto_vehicle(1, self.leg_m, 0.0, self.high_altitude)
        self.wait_vehicle_position(0, self.leg_m, pad_east, radius=3.0)
        self.wait_vehicle_position(1, self.leg_m, 0.0, radius=3.0)

        self.land_fleet()
        self.pass_test()


class MultiPadTakeoffLandWorkload(FleetTarget):
    """Simultaneous takeoff, hover and landing from a row of pads.

    Exercises the densest phase of fleet operation: every vehicle in the
    air at once, separated only by the pad spacing.  Any fail-safe
    return flies the affected vehicle to the shared home point --
    directly above pad 0 and through the hovering formation.
    """

    name = "multi-pad"
    fleet_size = 3

    def __init__(
        self,
        altitude: float = 12.0,
        hover_ms: float = 3000.0,
        init_wait_ms: float = 2000.0,
        fleet_size: Optional[int] = None,
    ) -> None:
        super().__init__()
        if fleet_size is not None:
            if fleet_size < 2:
                raise ValueError("a multi-pad fleet needs at least 2 vehicles")
            self.fleet_size = fleet_size
        self.altitude = altitude
        self.hover_ms = hover_ms
        self.init_wait_ms = init_wait_ms

    def test(self) -> None:
        self.check_fleet()
        self.wait_time(self.init_wait_ms)
        self.arm_fleet()
        self.takeoff_fleet([self.altitude] * self.fleet_size)
        self.wait_time(self.hover_ms)
        self.land_fleet()
        self.pass_test()


def default_fleet_workloads() -> List[FleetTarget]:
    """The three built-in fleet workloads with their default geometry."""
    return [
        ConvoyFollowWorkload(),
        CrossingPathsWorkload(),
        MultiPadTakeoffLandWorkload(),
    ]
