"""Workloads and the high-level workload framework.

A workload is "a sequence of pilot commands" (Section II).  The paper's
framework exists because raw MAVLink is awkward and deadlock-prone to
drive in lock-step; its high-level APIs (``takeoff``, ``upload_mission``,
``wait_altitude`` ...) hide the protocol transactions.  Figure 8 of the
paper shows the ``AutoWorkload`` reproduced verbatim in
:mod:`repro.workloads.builtin`.

Two default workloads are provided, matching Section V-A:

* :class:`~repro.workloads.builtin.PositionHoldBoxWorkload` -- ascend to
  20 m, fly the perimeter of a 20 m x 20 m box using position-hold style
  modes, land at the launch point.
* :class:`~repro.workloads.builtin.WaypointFenceWorkload` -- ascend to
  20 m and fly a 20 m x 20 m waypoint box that overlaps a geo-fenced
  region, then land at the launch site.

Plus the Figure 8 :class:`~repro.workloads.builtin.AutoWorkload` used by
the quickstart example.

Fleet workloads (:mod:`repro.workloads.fleet`) drive several vehicles in
one simulation through the same framework: a convoy follow, an
altitude-deconflicted path crossing, and a simultaneous multi-pad
takeoff/landing.
"""

from repro.workloads.builtin import (
    AutoWorkload,
    PositionHoldBoxWorkload,
    WaypointFenceWorkload,
    default_workloads,
)
from repro.workloads.fleet import (
    ConvoyFollowWorkload,
    CrossingPathsWorkload,
    FleetTarget,
    MultiPadTakeoffLandWorkload,
    default_fleet_workloads,
)
from repro.workloads.framework import (
    Target,
    WorkloadError,
    WorkloadFailure,
    WorkloadOutcome,
    WorkloadResult,
    WorkloadTimeout,
)

__all__ = [
    "AutoWorkload",
    "ConvoyFollowWorkload",
    "CrossingPathsWorkload",
    "FleetTarget",
    "MultiPadTakeoffLandWorkload",
    "PositionHoldBoxWorkload",
    "Target",
    "WaypointFenceWorkload",
    "WorkloadError",
    "WorkloadFailure",
    "WorkloadOutcome",
    "WorkloadResult",
    "WorkloadTimeout",
    "default_fleet_workloads",
    "default_workloads",
]
