"""The default workloads shipped with Avis (Section IV-A / V-A).

All three workloads are parameterised by the target altitude and the box
side length so tests and benchmarks can run shortened variants; the
defaults match the paper (20 m altitude, 20 m x 20 m box).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.workloads.framework import Target


class AutoWorkload(Target):
    """The Figure 8 workload: upload takeoff + land, fly it in AUTO.

    The paper's listing waits 40 s for the real firmware to initialise;
    the simulated firmware boots instantly, so the default wait is much
    shorter (still present so the pre-flight operating mode is exercised
    and pre-flight injection windows exist).
    """

    name = "auto"

    def __init__(self, altitude: float = 20.0, init_wait_ms: float = 4000.0) -> None:
        super().__init__()
        self.altitude = altitude
        self.init_wait_ms = init_wait_ms

    def test(self) -> None:
        self.wait_time(self.init_wait_ms)
        self.upload_mission(
            self.takeoff_mission(self.altitude, self.cur_lati, self.cur_longi, self.home_alti)
            + self.land_mission()
        )
        self.arm_system_completely()
        self.enter_auto_mode()
        self.wait_altitude(self.altitude, tolerance=1.5)
        self.wait_altitude(0.0, tolerance=0.75)
        self.wait_disarmed()
        self.pass_test()


def _box_corners(side: float) -> List[Tuple[float, float]]:
    """The corners of a box flown north/east of the launch point."""
    return [(side, 0.0), (side, side), (0.0, side), (0.0, 0.0)]


class PositionHoldBoxWorkload(Target):
    """Default workload 1: position-hold flight around a box.

    The UAV ascends to the target altitude, flies the perimeter of a box
    using guided targets with a brief position-hold dwell at each corner
    (exercising the manual/position-hold family of modes -- the paper
    notes that testing the position-hold mode also covers the orientation
    and altitude hold modes, which reuse the same code), then lands at
    the launch point.
    """

    name = "position-hold-box"

    def __init__(
        self,
        altitude: float = 20.0,
        box_side: float = 20.0,
        corner_hold_ms: float = 1000.0,
        init_wait_ms: float = 2000.0,
    ) -> None:
        super().__init__()
        self.altitude = altitude
        self.box_side = box_side
        self.corner_hold_ms = corner_hold_ms
        self.init_wait_ms = init_wait_ms

    def test(self) -> None:
        self.wait_time(self.init_wait_ms)
        self.arm_system_completely()
        self.command_takeoff(self.altitude)
        self.wait_altitude(self.altitude, tolerance=1.5)

        for north, east in _box_corners(self.box_side):
            self.goto(north, east, self.altitude)
            self.wait_position(north, east, radius=3.0)
            self.enter_position_hold()
            self.wait_time(self.corner_hold_ms)
            # Return to guided flight for the next leg.
            self._harness.gcs.set_mode(self._harness.guided_mode_name)
            self.step(5)

        self.enter_land_mode()
        self.wait_altitude(0.0, tolerance=0.75)
        self.wait_disarmed()
        self.pass_test()


class WaypointFenceWorkload(Target):
    """Default workload 2: an AUTO waypoint box that can overlap a fence.

    The mission takes off, flies the four corners of a box, returns to
    launch and lands.  When the environment carries a geo-fence (see
    :func:`repro.sim.environment.fenced_environment`), the box overlaps
    the fenced region and the firmware's fence handling engages
    mid-mission -- which is why the paper uses it as the second default
    workload.
    """

    name = "waypoint-fence"

    def __init__(
        self,
        altitude: float = 20.0,
        box_side: float = 20.0,
        init_wait_ms: float = 2000.0,
    ) -> None:
        super().__init__()
        self.altitude = altitude
        self.box_side = box_side
        self.init_wait_ms = init_wait_ms

    def test(self) -> None:
        self.wait_time(self.init_wait_ms)
        corners = _box_corners(self.box_side)
        items = (
            self.takeoff_mission(self.altitude, self.cur_lati, self.cur_longi, self.home_alti)
            + self.waypoint_mission(corners, self.altitude)
            + self.rtl_mission()
            + self.land_mission()
        )
        self.upload_mission(items)
        self.arm_system_completely()
        self.enter_auto_mode()
        self.wait_altitude(self.altitude, tolerance=1.5)
        self.wait_disarmed(timeout_s=150.0)
        self.pass_test()


def default_workloads(
    altitude: float = 20.0, box_side: float = 20.0
) -> List[Target]:
    """The two default workloads the paper evaluates with."""
    return [
        PositionHoldBoxWorkload(altitude=altitude, box_side=box_side),
        WaypointFenceWorkload(altitude=altitude, box_side=box_side),
    ]
