"""The high-level workload framework (the paper's Figure 8 API).

Workloads subclass :class:`Target` and implement :meth:`Target.test`
using the framework's high-level calls.  The calls ultimately boil down
to the ``step()`` RPC of Figure 7: every wait loops over ``step()`` until
its condition holds or a timeout expires, so the simulation, fault
injection and invariant monitoring all advance in lock-step with the
workload.

The harness object a workload runs against is provided by Avis's test
runner (:mod:`repro.core.runner`); the framework only relies on the small
interface documented on :class:`Target`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from repro.mavlink.messages import MavCommand, MissionItem
from repro.mavlink.mission import MissionPlan, mission_item


class WorkloadError(Exception):
    """Base class for workload-level failures."""


class WorkloadTimeout(WorkloadError):
    """A wait condition did not become true within its timeout."""


class WorkloadFailure(WorkloadError):
    """The workload itself decided the test failed."""


class SimulationBudgetExhausted(WorkloadError):
    """The harness's maximum simulated time was reached mid-workload."""


class WorkloadOutcome(enum.Enum):
    """How a workload execution ended."""

    PASSED = "passed"
    FAILED = "failed"
    TIMEOUT = "timeout"
    BUDGET_EXHAUSTED = "budget-exhausted"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class WorkloadResult:
    """Result of one workload execution."""

    outcome: WorkloadOutcome
    reason: str = ""
    duration_s: float = 0.0

    @property
    def passed(self) -> bool:
        """True when the workload reported success."""
        return self.outcome == WorkloadOutcome.PASSED


class Target:
    """Base class for workloads (named after the paper's framework class).

    Subclasses implement :meth:`test`.  Before :meth:`run` is called the
    framework binds the workload to a *harness* that provides:

    ``step(count)``
        Advance the lock-step simulation by ``count`` time-steps.
    ``dt``
        The simulation time-step in seconds.
    ``time``
        Current simulation time in seconds.
    ``gcs``
        The :class:`~repro.mavlink.gcs.GroundControlStation`.
    ``telemetry``
        The GCS's latest :class:`~repro.mavlink.gcs.TelemetrySnapshot`.
    ``home``
        The :class:`~repro.sim.environment.GeoLocation` of the launch point.
    ``auto_mode_name`` / ``position_hold_mode_name`` / ``land_mode_name``
        The flavour-specific SET_MODE strings (this is how the framework
        hides the ArduPilot/PX4 naming quirks).
    ``should_abort()``
        True when the harness wants the workload to stop early (for
        example because the invariant monitor already found a violation).
    """

    #: Name used in reports; defaults to the class name.
    name: str = ""
    #: Default timeout for wait conditions, in simulated seconds.
    default_timeout_s: float = 90.0

    def __init__(self) -> None:
        self._harness = None
        self._passed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, harness) -> None:
        """Attach the workload to a harness before running."""
        self._harness = harness
        # Adaptive-stepper harnesses plan macro-steps around statically
        # known event boundaries; hand them the workload's scheduled
        # checkpoint times (a no-op for every other harness).
        register = getattr(harness, "add_planned_events", None)
        if register is not None:
            register(self.scheduled_event_times())

    def scheduled_event_times(self) -> tuple:
        """Simulated times (seconds) at which this workload acts on a
        schedule rather than on observed state.

        The adaptive stepper refines to the reference cadence around
        these, exactly as it does around fault windows.  Workloads whose
        actions are purely state-driven (every built-in one) return an
        empty tuple.
        """
        return ()

    def run(self) -> WorkloadResult:
        """Execute the workload and translate exceptions into a result."""
        if self._harness is None:
            raise RuntimeError("workload must be bound to a harness before running")
        start = self._harness.time
        try:
            self.test()
        except WorkloadTimeout as error:
            return WorkloadResult(
                outcome=WorkloadOutcome.TIMEOUT,
                reason=str(error),
                duration_s=self._harness.time - start,
            )
        except SimulationBudgetExhausted as error:
            return WorkloadResult(
                outcome=WorkloadOutcome.BUDGET_EXHAUSTED,
                reason=str(error),
                duration_s=self._harness.time - start,
            )
        except WorkloadFailure as error:
            return WorkloadResult(
                outcome=WorkloadOutcome.FAILED,
                reason=str(error),
                duration_s=self._harness.time - start,
            )
        outcome = WorkloadOutcome.PASSED if self._passed else WorkloadOutcome.FAILED
        reason = "" if self._passed else "workload finished without calling pass_test()"
        return WorkloadResult(
            outcome=outcome, reason=reason, duration_s=self._harness.time - start
        )

    def test(self) -> None:
        """The workload body; subclasses override."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def display_name(self) -> str:
        """The workload's report name."""
        return self.name or type(self).__name__

    @property
    def cur_lati(self) -> float:
        """Current latitude reported by the vehicle (Figure 8 API)."""
        telemetry = self._harness.telemetry
        if telemetry.latitude:
            return telemetry.latitude
        return self._harness.home.latitude_deg

    @property
    def cur_longi(self) -> float:
        """Current longitude reported by the vehicle (Figure 8 API)."""
        telemetry = self._harness.telemetry
        if telemetry.longitude:
            return telemetry.longitude
        return self._harness.home.longitude_deg

    @property
    def home_alti(self) -> float:
        """Home altitude above mean sea level (Figure 8 API)."""
        return self._harness.home.altitude_msl_m

    @property
    def current_altitude(self) -> float:
        """The vehicle's reported altitude above home."""
        return self._harness.telemetry.relative_altitude

    # ------------------------------------------------------------------
    # Stepping and waiting
    # ------------------------------------------------------------------
    def step(self, count: int = 1) -> None:
        """Advance the simulation by ``count`` time-steps."""
        self._harness.step(count)
        if self._harness.should_abort():
            raise SimulationBudgetExhausted("harness requested early abort")

    def wait_time(self, milliseconds: float) -> None:
        """Let the simulation run for ``milliseconds`` of simulated time."""
        steps = max(int(milliseconds / 1000.0 / self._harness.dt), 1)
        self.step(steps)

    def wait_until(
        self,
        predicate: Callable[[], bool],
        timeout_s: Optional[float] = None,
        description: str = "condition",
    ) -> None:
        """Step the simulation until ``predicate()`` holds.

        Raises :class:`WorkloadTimeout` if the condition is still false
        after ``timeout_s`` simulated seconds.
        """
        timeout = timeout_s if timeout_s is not None else self.default_timeout_s
        deadline = self._harness.time + timeout
        # Reference/SoA harnesses poll every step (stride 1, the classic
        # loop); an adaptive harness reports its fused-window stride so
        # waiting polls once per macro-step instead.
        stride = getattr(self._harness, "wait_stride", None)
        while not predicate():
            if self._harness.time >= deadline:
                raise WorkloadTimeout(
                    f"timed out after {timeout:.0f}s waiting for {description}"
                )
            self.step(stride() if stride is not None else 1)

    # ------------------------------------------------------------------
    # Mission construction (Figure 8 helpers)
    # ------------------------------------------------------------------
    def takeoff_mission(
        self, altitude: float, latitude: float, longitude: float, home_altitude: float
    ) -> List[MissionItem]:
        """A single-item mission fragment commanding a takeoff."""
        del home_altitude  # retained for Figure 8 signature compatibility
        return [
            mission_item(
                0, MavCommand.NAV_TAKEOFF, latitude=latitude, longitude=longitude, altitude=altitude
            )
        ]

    def land_mission(
        self, latitude: Optional[float] = None, longitude: Optional[float] = None
    ) -> List[MissionItem]:
        """A single-item mission fragment commanding a landing."""
        return [
            mission_item(
                0,
                MavCommand.NAV_LAND,
                latitude=latitude if latitude is not None else self.cur_lati,
                longitude=longitude if longitude is not None else self.cur_longi,
                altitude=0.0,
            )
        ]

    def waypoint_mission(
        self, waypoints: Sequence, altitude: float
    ) -> List[MissionItem]:
        """Mission items visiting ``waypoints`` (north, east offsets in metres)."""
        items: List[MissionItem] = []
        home = self._harness.home
        for north, east in waypoints:
            location = home.offset(north, east)
            items.append(
                mission_item(
                    0,
                    MavCommand.NAV_WAYPOINT,
                    latitude=location.latitude_deg,
                    longitude=location.longitude_deg,
                    altitude=altitude,
                )
            )
        return items

    def rtl_mission(self) -> List[MissionItem]:
        """A single-item mission fragment commanding return-to-launch."""
        return [mission_item(0, MavCommand.NAV_RETURN_TO_LAUNCH)]

    # ------------------------------------------------------------------
    # High-level vehicle operations
    # ------------------------------------------------------------------
    def upload_mission(self, items: Iterable[MissionItem], timeout_s: float = 20.0) -> None:
        """Upload a mission plan and wait for the vehicle to acknowledge it."""
        plan = MissionPlan(items=list(items))
        gcs = self._harness.gcs
        gcs.begin_mission_upload(plan)
        self.wait_until(
            lambda: gcs.mission_upload_complete or gcs.mission_upload_failed,
            timeout_s=timeout_s,
            description="mission upload acknowledgement",
        )
        if gcs.mission_upload_failed:
            raise WorkloadFailure(
                f"mission upload rejected: {gcs.mission_upload_failure_reason}"
            )

    def arm_system_completely(self, timeout_s: float = 30.0) -> None:
        """Arm the vehicle, re-requesting until telemetry confirms it."""
        gcs = self._harness.gcs
        last_request = -10.0

        def armed() -> bool:
            nonlocal last_request
            if not self._harness.telemetry.armed and self._harness.time - last_request > 1.0:
                gcs.arm()
                last_request = self._harness.time
            return self._harness.telemetry.armed

        self.wait_until(armed, timeout_s=timeout_s, description="vehicle to arm")

    def enter_auto_mode(self) -> None:
        """Switch to the mission (AUTO) mode and start the mission."""
        gcs = self._harness.gcs
        gcs.set_mode(self._harness.auto_mode_name)
        gcs.start_mission()
        self.step(5)

    def enter_position_hold(self) -> None:
        """Switch to the flavour's position-hold mode."""
        self._harness.gcs.set_mode(self._harness.position_hold_mode_name)
        self.step(5)

    def enter_land_mode(self) -> None:
        """Switch to the land mode."""
        self._harness.gcs.set_mode(self._harness.land_mode_name)
        self.step(5)

    def command_takeoff(self, altitude: float) -> None:
        """Issue a guided takeoff command."""
        self._harness.gcs.command_takeoff(altitude)
        self.step(5)

    def goto(self, north: float, east: float, altitude: float) -> None:
        """Send a guided-mode target (offsets from home, metres)."""
        self._harness.set_guided_target(north, east, altitude)
        self.step(5)

    def wait_altitude(
        self, altitude: float, tolerance: float = 1.0, timeout_s: Optional[float] = None
    ) -> None:
        """Wait until the reported altitude is within ``tolerance`` of ``altitude``."""
        self.wait_until(
            lambda: abs(self._harness.telemetry.relative_altitude - altitude) <= tolerance,
            timeout_s=timeout_s,
            description=f"altitude {altitude:.1f} m",
        )

    def wait_position(
        self,
        north: float,
        east: float,
        radius: float = 3.0,
        timeout_s: Optional[float] = None,
    ) -> None:
        """Wait until the vehicle is within ``radius`` metres of a point."""

        def reached() -> bool:
            home = self._harness.home
            telemetry = self._harness.telemetry
            d_north, d_east = home.local_offset_to(
                type(home)(
                    latitude_deg=telemetry.latitude or home.latitude_deg,
                    longitude_deg=telemetry.longitude or home.longitude_deg,
                    altitude_msl_m=home.altitude_msl_m,
                )
            )
            return math.hypot(d_north - north, d_east - east) <= radius

        self.wait_until(
            reached, timeout_s=timeout_s, description=f"position ({north:.0f}, {east:.0f})"
        )

    def wait_mission_item_reached(
        self, seq: int, timeout_s: Optional[float] = None
    ) -> None:
        """Wait until mission item ``seq`` is reported reached."""
        self.wait_until(
            lambda: seq in self._harness.telemetry.reached_items,
            timeout_s=timeout_s,
            description=f"mission item {seq}",
        )

    def wait_disarmed(self, timeout_s: Optional[float] = None) -> None:
        """Wait until the vehicle reports it has disarmed (landed)."""
        self.wait_until(
            lambda: not self._harness.telemetry.armed,
            timeout_s=timeout_s,
            description="vehicle to disarm after landing",
        )

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    def pass_test(self) -> None:
        """Mark the workload as passed (Figure 8's final call)."""
        self._passed = True

    def fail_test(self, reason: str) -> None:
        """Mark the workload as failed."""
        raise WorkloadFailure(reason)
