"""Firmware instrumentation interface (the ``libhinj`` API surface).

The paper instruments two points in the firmware:

* the function that updates the vehicle's operating mode, where a call to
  ``hinj_update_mode()`` is inserted so Avis learns about every mode
  transition as it happens, and
* the ``read()`` procedure of every sensor driver, where a query to the
  scheduler decides whether the read fails.

:class:`HinjInterface` bundles both: the firmware calls
:meth:`update_mode` from its mode-setting path, and :meth:`install`
hooks the sensor suite's read path up to a :class:`FaultScheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.hinj.scheduler import FaultScheduler
from repro.sensors.suite import SensorSuite


@dataclass(frozen=True)
class ModeTransition:
    """One operating-mode transition observed during a run.

    ``label`` is the operating-mode label the firmware reports (for
    example ``takeoff``, ``waypoint-2`` or ``rtl``); ``previous`` is the
    label before the transition (None for the initial mode announcement).
    """

    time: float
    label: str
    previous: Optional[str] = None

    def describe(self) -> str:
        """Human readable form, e.g. ``takeoff -> waypoint-1 @ 12.3s``."""
        if self.previous is None:
            return f"start in {self.label} @ {self.time:.2f}s"
        return f"{self.previous} -> {self.label} @ {self.time:.2f}s"


class HinjInterface:
    """The bridge between the firmware and Avis's fault injection engine."""

    def __init__(self, scheduler: Optional[FaultScheduler] = None) -> None:
        self._scheduler = scheduler if scheduler is not None else FaultScheduler()
        self._transitions: List[ModeTransition] = []
        self._current_mode: Optional[str] = None
        self._mode_listeners: List[Callable[[ModeTransition], None]] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def scheduler(self) -> FaultScheduler:
        """The fault scheduler answering read-time queries."""
        return self._scheduler

    def install(self, suite: SensorSuite) -> None:
        """Instrument every sensor driver in ``suite``.

        Equivalent to linking the firmware against ``libhinj`` and adding
        the API call to each driver's ``read()``.
        """
        suite.instrument(self._scheduler.should_fail)

    def uninstall(self, suite: SensorSuite) -> None:
        """Remove the instrumentation from ``suite``."""
        suite.remove_instrumentation()

    def add_mode_listener(self, listener: Callable[[ModeTransition], None]) -> None:
        """Register a callback invoked on every mode transition."""
        self._mode_listeners.append(listener)

    # ------------------------------------------------------------------
    # The hinj_update_mode() API
    # ------------------------------------------------------------------
    def update_mode(self, label: str, time: float) -> None:
        """Report that the firmware's operating mode changed to ``label``.

        Repeated announcements of the same label are ignored, mirroring
        the insertion point in the firmware's set-mode function, which is
        only reached when the mode actually changes.
        """
        if label == self._current_mode:
            return
        transition = ModeTransition(time=time, label=label, previous=self._current_mode)
        self._current_mode = label
        self._transitions.append(transition)
        for listener in self._mode_listeners:
            listener(transition)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def current_mode(self) -> Optional[str]:
        """The most recently reported operating-mode label."""
        return self._current_mode

    @property
    def transitions(self) -> List[ModeTransition]:
        """Every transition reported so far, in order."""
        return list(self._transitions)

    def mode_at(self, time: float) -> Optional[str]:
        """The operating-mode label in effect at simulation time ``time``."""
        label: Optional[str] = None
        for transition in self._transitions:
            if transition.time <= time:
                label = transition.label
            else:
                break
        return label

    def transition_times(self) -> List[float]:
        """The times of every mode transition (used to seed SABRE)."""
        return [transition.time for transition in self._transitions]
