"""The fault scheduler: decides, per sensor read, whether to inject.

This is the Python analogue of the paper's scheduler process.  The real
scheduler answers RPCs issued from ``libhinj`` calls embedded in the
driver ``read()`` procedures; here the scheduler object is handed to the
sensor suite as the fail-decision hook, so the query happens in-process
with identical semantics: the scheduler is consulted on every read, and
when the current scenario schedules a failure for that instance at or
before the current time, the read fails and the instance stays failed.

The scheduler also keeps the record of injections it actually performed
(the first read at which each fault took effect), which is what bug
replay uses to line injections up with mode transitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set

from repro.hinj.faults import EMPTY_SCENARIO, FaultScenario, FaultSpec
from repro.sensors.base import SensorId


@dataclass(frozen=True)
class InjectionRecord:
    """A fault the scheduler actually injected during a run.

    ``duration_s`` and ``recovered_time`` describe intermittent faults:
    the scheduled recovery window, and the first read at which the
    instance actually reported healthy again after having failed.  Both
    stay ``None`` for the paper's latched faults.
    """

    sensor_id: SensorId
    scheduled_time: float
    injected_time: float
    duration_s: Optional[float] = None
    recovered_time: Optional[float] = None

    @property
    def delay(self) -> float:
        """Latency between the scheduled time and the read that applied it."""
        return self.injected_time - self.scheduled_time

    @property
    def recovered(self) -> bool:
        """True once the fault's recovery has taken effect."""
        return self.recovered_time is not None


def injection_flight_events(records: List[InjectionRecord]) -> list:
    """Flight-recorder events for a run's sensor-fault injection log.

    One ``fault.injected`` event per applied fault, plus a
    ``fault.recovered`` event for every intermittent fault whose window
    actually closed during the run.
    """
    from repro.obs.recorder import FlightEvent

    events = []
    for record in records:
        detail = record.sensor_id.label
        if record.duration_s is not None:
            detail += f" (window {record.duration_s:g}s)"
        events.append(
            FlightEvent(record.injected_time, "fault.injected", detail)
        )
        if record.recovered_time is not None:
            events.append(
                FlightEvent(
                    record.recovered_time, "fault.recovered", record.sensor_id.label
                )
            )
    return events


class FaultScheduler:
    """Executes one :class:`FaultScenario` during a simulated run."""

    def __init__(self, scenario: FaultScenario = EMPTY_SCENARIO) -> None:
        self._scenario = scenario
        # Keyed by fault spec (not sensor id): a scenario can schedule
        # several disjoint recovery windows on one instance, and each
        # applied window gets its own record -- mirroring the traffic
        # channel's per-fault injection log, and keeping replay plans
        # complete for multi-window scenarios.
        self._injected: Dict[FaultSpec, InjectionRecord] = {}
        self._query_count = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def scenario(self) -> FaultScenario:
        """The scenario this scheduler is executing."""
        return self._scenario

    def load_scenario(self, scenario: FaultScenario) -> None:
        """Replace the scenario and clear the injection record.

        Avis provisions a new firmware + simulator instance per test, so
        in practice a fresh scheduler is created per run; ``load_scenario``
        exists for tests and for replay, which reuses one scheduler.
        """
        self._scenario = scenario
        self._injected = {}
        self._query_count = 0

    # ------------------------------------------------------------------
    # The libhinj query (Step 4 of Figure 7)
    # ------------------------------------------------------------------
    def should_fail(self, sensor_id: SensorId, time: float) -> bool:
        """Answer a driver's "should this read fail?" query.

        With latched faults the answer, once positive, stays positive
        for the rest of the run.  An intermittent fault's window can
        close, after which the answer reverts to False -- the driver
        recovers -- and that fault's injection record is stamped with
        the first read at or after the window closed (a latched fault
        never recovers, so its record never gains a recovery stamp).
        """
        self._query_count += 1
        self._stamp_recoveries(sensor_id, time)
        fault = self._scenario.active_fault_for(sensor_id, time)
        if fault is None:
            return False
        if fault not in self._injected:
            self._injected[fault] = InjectionRecord(
                sensor_id=sensor_id,
                scheduled_time=fault.start_time,
                injected_time=time,
                duration_s=fault.duration_s,
            )
        return True

    def _stamp_recoveries(self, sensor_id: SensorId, time: float) -> None:
        """Stamp applied faults of ``sensor_id`` whose window has closed."""
        for fault, record in list(self._injected.items()):
            if (
                record.sensor_id == sensor_id
                and record.recovered_time is None
                and fault.end_time is not None
                and time >= fault.end_time
            ):
                self._injected[fault] = replace(record, recovered_time=time)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def query_count(self) -> int:
        """Number of fail-decision queries answered so far."""
        return self._query_count

    @property
    def injections(self) -> List[InjectionRecord]:
        """Faults that have actually been applied, in injection order.

        One record per applied fault spec: a sensor with several
        disjoint recovery windows contributes one record per window
        that fired.
        """
        return sorted(
            self._injected.values(),
            key=lambda record: (record.injected_time, record.sensor_id),
        )

    @property
    def injected_sensor_ids(self) -> Set[SensorId]:
        """The sensor instances failed so far."""
        return {record.sensor_id for record in self._injected.values()}

    def pending_faults(self, time: float) -> List[SensorId]:
        """Sensor instances with scheduled faults not yet applied at ``time``."""
        pending = []
        for fault in self._scenario:
            if fault not in self._injected and fault.start_time > time:
                if fault.sensor_id not in pending:
                    pending.append(fault.sensor_id)
        return pending
