"""The fault scheduler: decides, per sensor read, whether to inject.

This is the Python analogue of the paper's scheduler process.  The real
scheduler answers RPCs issued from ``libhinj`` calls embedded in the
driver ``read()`` procedures; here the scheduler object is handed to the
sensor suite as the fail-decision hook, so the query happens in-process
with identical semantics: the scheduler is consulted on every read, and
when the current scenario schedules a failure for that instance at or
before the current time, the read fails and the instance stays failed.

The scheduler also keeps the record of injections it actually performed
(the first read at which each fault took effect), which is what bug
replay uses to line injections up with mode transitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.hinj.faults import EMPTY_SCENARIO, FaultScenario
from repro.sensors.base import SensorId


@dataclass(frozen=True)
class InjectionRecord:
    """A fault the scheduler actually injected during a run."""

    sensor_id: SensorId
    scheduled_time: float
    injected_time: float

    @property
    def delay(self) -> float:
        """Latency between the scheduled time and the read that applied it."""
        return self.injected_time - self.scheduled_time


class FaultScheduler:
    """Executes one :class:`FaultScenario` during a simulated run."""

    def __init__(self, scenario: FaultScenario = EMPTY_SCENARIO) -> None:
        self._scenario = scenario
        self._injected: Dict[SensorId, InjectionRecord] = {}
        self._query_count = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def scenario(self) -> FaultScenario:
        """The scenario this scheduler is executing."""
        return self._scenario

    def load_scenario(self, scenario: FaultScenario) -> None:
        """Replace the scenario and clear the injection record.

        Avis provisions a new firmware + simulator instance per test, so
        in practice a fresh scheduler is created per run; ``load_scenario``
        exists for tests and for replay, which reuses one scheduler.
        """
        self._scenario = scenario
        self._injected = {}
        self._query_count = 0

    # ------------------------------------------------------------------
    # The libhinj query (Step 4 of Figure 7)
    # ------------------------------------------------------------------
    def should_fail(self, sensor_id: SensorId, time: float) -> bool:
        """Answer a driver's "should this read fail?" query."""
        self._query_count += 1
        fault = self._scenario.fault_for(sensor_id)
        if fault is None or not fault.active_at(time):
            return False
        if sensor_id not in self._injected:
            self._injected[sensor_id] = InjectionRecord(
                sensor_id=sensor_id,
                scheduled_time=fault.start_time,
                injected_time=time,
            )
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def query_count(self) -> int:
        """Number of fail-decision queries answered so far."""
        return self._query_count

    @property
    def injections(self) -> List[InjectionRecord]:
        """Faults that have actually been applied, in injection order."""
        return sorted(self._injected.values(), key=lambda record: record.injected_time)

    @property
    def injected_sensor_ids(self) -> Set[SensorId]:
        """The sensor instances failed so far."""
        return set(self._injected)

    def pending_faults(self, time: float) -> List[SensorId]:
        """Sensor instances with scheduled faults not yet applied at ``time``."""
        pending = []
        for fault in self._scenario:
            if fault.sensor_id not in self._injected and fault.start_time > time:
                pending.append(fault.sensor_id)
        return pending
