"""Fault specifications: what to fail, when -- and for how long.

The paper's scheduler "represents a fault injection scenario as a set of
tuples (Timestamp, Fault), where the fault component describes the
injected fault (e.g. sensor and instance) and the timestamp is the
simulation time when the fault was injected".  :class:`FaultSpec` is one
such tuple and :class:`FaultScenario` is the (immutable, hashable) set,
so scenarios can be stored in the scheduler's already-explored hash-set.

Beyond the paper's clean sensor failures, fleet campaigns add a
*coordination* fault family targeting the inter-vehicle traffic channel
(:mod:`repro.mavlink.traffic`): :class:`TrafficFaultSpec` schedules a
beacon dropout, a frozen (stale) beacon, or a delayed beacon on one
fleet member's broadcast, exactly like a sensor fault is scheduled on
one sensor instance.  Both spec kinds live in the same
:class:`FaultScenario`, hash together, and are enumerated by the search
strategies through the same failure-handle interface
(:func:`spec_for`).

Intermittent faults
-------------------

Both spec kinds carry an optional ``duration_s``.  The default of
``None`` is the paper's latched model -- the fault becomes active at
``start_time`` and never recovers, and every hash, label, sort order,
replay plan and cache fingerprint is bit-identical to the pre-window
grammar.  A finite ``duration_s`` makes the fault *intermittent*: it is
active only inside ``[start_time, start_time + duration_s)``, after
which the sensor read path (or the traffic channel) recovers.  Recovery
timing is itself a bug surface -- a GPS glitch that clears just after a
fail-safe engaged, a beacon dropout that ends while the follower is
rushing to catch up -- which is why the search strategies can enumerate
:class:`BurstFailure` handles scheduling bounded fault windows alongside
the latched ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.sensors.base import SensorId, SensorType


class _WindowedSpec:
    """Shared recovery-window behaviour of both fault spec kinds.

    A spec with ``duration_s=None`` is latched (the classic model); a
    finite duration bounds the active window.  The mixin also supplies a
    total ordering through ``sort_key`` so specs with mixed latched /
    windowed durations sort without comparing ``None`` to a float.
    """

    __slots__ = ()

    def active_at(self, time: float) -> bool:
        """True when the fault should be in effect at ``time``."""
        if time < self.start_time:
            return False
        return self.duration_s is None or time < self.start_time + self.duration_s

    @property
    def recovers(self) -> bool:
        """True for intermittent faults (a finite recovery window)."""
        return self.duration_s is not None

    @property
    def end_time(self) -> Optional[float]:
        """Time the fault recovers, or None for latched faults."""
        if self.duration_s is None:
            return None
        return self.start_time + self.duration_s

    def _window_suffix(self) -> str:
        """Description suffix for the recovery window ('' when latched)."""
        if self.duration_s is None:
            return ""
        return f" for {self.duration_s:g}s"

    @staticmethod
    def _duration_key(duration: Optional[float]) -> float:
        """Sortable stand-in for a duration (latched = infinite window)."""
        return float("inf") if duration is None else duration

    def __lt__(self, other) -> bool:
        if not isinstance(other, _WindowedSpec):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __le__(self, other) -> bool:
        if not isinstance(other, _WindowedSpec):
            return NotImplemented
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other) -> bool:
        if not isinstance(other, _WindowedSpec):
            return NotImplemented
        return self.sort_key() > other.sort_key()

    def __ge__(self, other) -> bool:
        if not isinstance(other, _WindowedSpec):
            return NotImplemented
        return self.sort_key() >= other.sort_key()


@dataclass(frozen=True)
class FaultSpec(_WindowedSpec):
    """A single clean sensor failure scheduled at a simulation time.

    Attributes
    ----------
    sensor_id:
        The sensor instance that stops communicating.
    start_time:
        Simulation time (seconds) at which the failure becomes active.
        From that moment on, every read of the instance reports failure.
    duration_s:
        Optional recovery window.  ``None`` (the default) is the paper's
        latched model: the instance never recovers within the run.  A
        finite duration makes the failure intermittent: reads recover
        once the window closes.
    """

    sensor_id: SensorId
    start_time: float
    duration_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start_time < 0.0:
            raise ValueError("a fault cannot start before the simulation begins")
        if self.duration_s is not None and self.duration_s <= 0.0:
            raise ValueError("duration_s, when given, must be positive")

    @property
    def vehicle(self) -> int:
        """The fleet member this fault targets (0 for classic runs)."""
        return self.sensor_id.vehicle

    def for_vehicle(self, vehicle: int) -> "FaultSpec":
        """This fault re-namespaced onto ``vehicle`` (self when unchanged)."""
        if vehicle == self.sensor_id.vehicle:
            return self
        return FaultSpec(
            self.sensor_id.for_vehicle(vehicle), self.start_time, self.duration_s
        )

    def sort_key(self) -> tuple:
        """Stable ordering key; sensor faults sort before traffic faults
        in exactly the pre-traffic order among themselves (the duration
        term only breaks ties between otherwise-identical specs)."""
        return (
            0,
            self.sensor_id._sort_key(),
            self.start_time,
            self._duration_key(self.duration_s),
        )

    def describe(self) -> str:
        """Short human readable description used in reports."""
        return (
            f"{self.sensor_id.label} fails at t={self.start_time:.2f}s"
            + self._window_suffix()
        )


class TrafficFaultKind(enum.Enum):
    """The coordination fault families injectable on the traffic channel.

    * ``DROPOUT`` -- the vehicle's beacons stop being delivered; every
      receiver's view of it goes (and stays) stale.
    * ``FREEZE`` -- receivers keep getting apparently-fresh beacons, but
      the position payload is frozen at the pre-fault state and the
      velocity is zeroed, so dead-reckoning consumers track a
      stationary ghost (the classic stale-but-plausible ADS-B failure).
    * ``DELAY`` -- beacons keep flowing but arrive with an extra fixed
      delay, so every receiver tracks a delayed ghost of the vehicle.
    """

    DROPOUT = "dropout"
    FREEZE = "freeze"
    DELAY = "delay"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Default ``extra_delay_s`` of the coordination fault family.  Non-DELAY
#: specs are canonicalised to it: the parameter is meaningless for a
#: dropout or a freeze, and letting it vary would split behaviourally
#: identical scenarios into distinct hash/sort identities.
DEFAULT_EXTRA_DELAY_S = 1.0


@dataclass(frozen=True)
class TrafficFaultSpec(_WindowedSpec):
    """A coordination fault on one fleet member's beacon broadcast.

    Attributes
    ----------
    vehicle:
        The fleet member whose *outgoing* beacons are faulted (every
        other vehicle's view of it degrades).
    kind:
        The fault family (:class:`TrafficFaultKind`).
    start_time:
        Simulation time (seconds) at which the fault becomes active.
    extra_delay_s:
        Additional delivery delay for ``DELAY`` faults, in seconds.
        Meaningless for the other kinds and therefore canonicalised to
        the default there, so two dropouts differing only in this field
        are one scenario (one hash, one label, one cache entry).
    duration_s:
        Optional recovery window.  ``None`` (the default) latches the
        fault for the rest of the run, matching the sensor fault model;
        a finite duration recovers the channel once the window closes
        (dropout ends and beacons resume, a freeze thaws back to live
        payloads, a delay reverts to the base latency).
    """

    vehicle: int
    kind: TrafficFaultKind
    start_time: float
    extra_delay_s: float = DEFAULT_EXTRA_DELAY_S
    duration_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.vehicle < 0:
            raise ValueError("vehicle index cannot be negative")
        if self.start_time < 0.0:
            raise ValueError("a fault cannot start before the simulation begins")
        if self.extra_delay_s < 0.0:
            raise ValueError("extra_delay_s cannot be negative")
        if self.duration_s is not None and self.duration_s <= 0.0:
            raise ValueError("duration_s, when given, must be positive")
        if (
            self.kind != TrafficFaultKind.DELAY
            and self.extra_delay_s != DEFAULT_EXTRA_DELAY_S
        ):
            # Canonicalise: only DELAY faults consume the parameter, so
            # equality, hashing, sorting and labels must not depend on
            # it for the other kinds.
            object.__setattr__(self, "extra_delay_s", DEFAULT_EXTRA_DELAY_S)

    @property
    def label(self) -> str:
        """Vehicle-namespaced label, e.g. ``traffic:v1:dropout``."""
        base = f"traffic:v{self.vehicle}:{self.kind.value}"
        if self.kind == TrafficFaultKind.DELAY:
            base += f"+{self.extra_delay_s:g}s"
        return base

    def for_vehicle(self, vehicle: int) -> "TrafficFaultSpec":
        """This fault re-namespaced onto ``vehicle`` (self when unchanged)."""
        if vehicle == self.vehicle:
            return self
        return TrafficFaultSpec(
            vehicle, self.kind, self.start_time, self.extra_delay_s, self.duration_s
        )

    def sort_key(self) -> tuple:
        return (
            1,
            self.vehicle,
            self.kind.value,
            self.extra_delay_s,
            self.start_time,
            self._duration_key(self.duration_s),
        )

    def describe(self) -> str:
        """Short human readable description used in reports."""
        return f"{self.label} at t={self.start_time:.2f}s" + self._window_suffix()


#: Either fault kind a scenario may carry.
AnyFaultSpec = Union[FaultSpec, TrafficFaultSpec]


@dataclass(frozen=True)
class TrafficFailure:
    """An enumeration handle for the coordination fault space.

    Plays the role :class:`~repro.sensors.base.SensorId` plays for the
    sensor fault space: the search strategies enumerate handles and turn
    each into a scheduled spec with :func:`spec_for`.
    """

    vehicle: int
    kind: TrafficFaultKind
    extra_delay_s: float = DEFAULT_EXTRA_DELAY_S

    def __post_init__(self) -> None:
        if (
            self.kind != TrafficFaultKind.DELAY
            and self.extra_delay_s != DEFAULT_EXTRA_DELAY_S
        ):
            # Mirror the spec-level canonicalisation: two handles that
            # produce the same scheduled fault must be one handle.
            object.__setattr__(self, "extra_delay_s", DEFAULT_EXTRA_DELAY_S)

    @property
    def label(self) -> str:
        """Vehicle-namespaced label matching the spec it produces."""
        return TrafficFaultSpec(self.vehicle, self.kind, 0.0, self.extra_delay_s).label

    def spec_at(
        self, time: float, duration_s: Optional[float] = None
    ) -> TrafficFaultSpec:
        """The scheduled fault this handle denotes at ``time``."""
        return TrafficFaultSpec(
            self.vehicle, self.kind, time, self.extra_delay_s, duration_s
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


#: A failure handle the strategies can schedule: a sensor instance or a
#: traffic-channel handle.
FailureHandle = Union[SensorId, TrafficFailure, "BurstFailure"]


@dataclass(frozen=True)
class BurstFailure:
    """A failure handle with a bounded (recovering) fault window.

    Wraps a base handle -- a sensor instance or a traffic-channel handle
    -- and schedules it as an *intermittent* fault: active for
    ``duration_s`` seconds from the injection time, then recovered.  The
    search strategies enumerate burst handles next to the latched ones,
    so recovery-window timing is explored like any other fault axis.
    """

    failure: Union[SensorId, TrafficFailure]
    duration_s: float

    def __post_init__(self) -> None:
        if isinstance(self.failure, BurstFailure):
            raise ValueError("burst handles do not nest")
        if self.duration_s <= 0.0:
            raise ValueError("a burst needs a positive duration")

    @property
    def label(self) -> str:
        """The base handle's label with the window, e.g. ``gps[0]~3s``."""
        return f"{failure_label(self.failure)}~{self.duration_s:g}s"

    def spec_at(self, time: float) -> AnyFaultSpec:
        """The intermittent fault this handle denotes at ``time``."""
        return spec_for(self.failure, time, self.duration_s)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


def burst_failures(
    failures: Iterable[FailureHandle], durations: Sequence[float]
) -> List[BurstFailure]:
    """Burst variants of ``failures``, duration-major (all handles at the
    first duration, then the next), skipping handles that already carry a
    window."""
    return [
        BurstFailure(failure, duration)
        for duration in durations
        for failure in failures
        if not isinstance(failure, BurstFailure)
    ]


def validate_burst_durations(durations: Sequence[float]) -> Tuple[float, ...]:
    """Validate a burst-duration sweep; returns it as a tuple.

    The one shared gate every burst-capable surface (SABRE, the BFI
    family, ``Avis``, the CLI) applies to its ``burst_durations``.
    """
    durations = tuple(durations)
    if any(duration <= 0.0 for duration in durations):
        raise ValueError("burst durations must be positive")
    return durations


def admissible_burst_windows(
    durations: Sequence[float], mission_duration: float
) -> List[Optional[float]]:
    """The recovery windows a strategy sweeps per candidate site.

    The latched window (``None``) always comes first -- in exactly the
    classic order -- followed by each burst duration that can actually
    recover within the mission; a window that outlives the mission is
    behaviourally the latched fault and is dropped rather than explored
    twice.
    """
    windows: List[Optional[float]] = [None]
    windows.extend(
        duration for duration in durations if duration < mission_duration
    )
    return windows


def spec_for(
    failure: FailureHandle, time: float, duration_s: Optional[float] = None
) -> AnyFaultSpec:
    """Schedule ``failure`` at ``time``: the one constructor the search
    strategies need, regardless of the fault family.  ``duration_s``
    bounds the fault window (None latches, as the paper's model does);
    a :class:`BurstFailure` handle carries its own window and rejects a
    conflicting override."""
    if isinstance(failure, BurstFailure):
        if duration_s is not None and duration_s != failure.duration_s:
            raise ValueError("a burst handle already carries its own duration")
        return failure.spec_at(time)
    if isinstance(failure, TrafficFailure):
        return failure.spec_at(time, duration_s)
    return FaultSpec(failure, time, duration_s)


def failure_label(failure: FailureHandle) -> str:
    """The stable display label of a failure handle."""
    return failure.label


def _spec_sort_key(spec: AnyFaultSpec) -> tuple:
    return spec.sort_key()


class FaultScenario:
    """An immutable set of fault specs forming one test scenario.

    Holds :class:`FaultSpec` (sensor) and :class:`TrafficFaultSpec`
    (coordination) entries; classic sensor-only scenarios iterate, hash
    and render exactly as they did before traffic faults existed.
    """

    __slots__ = ("_faults",)

    def __init__(self, faults: Iterable[AnyFaultSpec] = ()) -> None:
        self._faults: FrozenSet[AnyFaultSpec] = frozenset(faults)

    # ------------------------------------------------------------------
    # Set-like behaviour
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[AnyFaultSpec]:
        return iter(sorted(self._faults, key=_spec_sort_key))

    def __len__(self) -> int:
        return len(self._faults)

    def __contains__(self, fault: AnyFaultSpec) -> bool:
        return fault in self._faults

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultScenario):
            return NotImplemented
        return self._faults == other._faults

    def __hash__(self) -> int:
        return hash(self._faults)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f.describe() for f in self)
        return f"FaultScenario({{{inner}}})"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True for the fault-free (golden / profiling) scenario."""
        return not self._faults

    @property
    def faults(self) -> List[AnyFaultSpec]:
        """The faults, sorted for stable display."""
        return sorted(self._faults, key=_spec_sort_key)

    @property
    def sensor_faults(self) -> List[FaultSpec]:
        """The sensor faults only, sorted."""
        return sorted(
            (f for f in self._faults if isinstance(f, FaultSpec)),
            key=_spec_sort_key,
        )

    @property
    def traffic_faults(self) -> List[TrafficFaultSpec]:
        """The coordination (traffic-channel) faults only, sorted."""
        return sorted(
            (f for f in self._faults if isinstance(f, TrafficFaultSpec)),
            key=_spec_sort_key,
        )

    @property
    def has_traffic_faults(self) -> bool:
        """True when at least one coordination fault is scheduled."""
        return any(isinstance(f, TrafficFaultSpec) for f in self._faults)

    @property
    def recovering_faults(self) -> List[AnyFaultSpec]:
        """The intermittent faults (finite ``duration_s``), sorted."""
        return sorted(
            (f for f in self._faults if f.duration_s is not None),
            key=_spec_sort_key,
        )

    @property
    def has_recovering_faults(self) -> bool:
        """True when at least one fault recovers within the run."""
        return any(f.duration_s is not None for f in self._faults)

    @property
    def sensor_ids(self) -> List[SensorId]:
        """The failed sensor instances, sorted, without duplicates."""
        return sorted({fault.sensor_id for fault in self.sensor_faults})

    @property
    def sensor_types(self) -> List[SensorType]:
        """The failed sensor types, without duplicates."""
        seen: List[SensorType] = []
        for sensor_id in self.sensor_ids:
            if sensor_id.sensor_type not in seen:
                seen.append(sensor_id.sensor_type)
        return seen

    @property
    def earliest_time(self) -> Optional[float]:
        """Time of the first scheduled failure, or None when empty."""
        if not self._faults:
            return None
        return min(fault.start_time for fault in self._faults)

    def fault_for(self, sensor_id: SensorId) -> Optional[FaultSpec]:
        """The fault scheduled for ``sensor_id``, if any (earliest wins)."""
        candidates = [f for f in self.sensor_faults if f.sensor_id == sensor_id]
        if not candidates:
            return None
        return min(candidates, key=lambda fault: fault.start_time)

    def active_fault_for(
        self, sensor_id: SensorId, time: float
    ) -> Optional[FaultSpec]:
        """The fault actively failing ``sensor_id`` at ``time``, if any.

        With latched faults this is exactly :meth:`fault_for` whenever
        that fault has started; with recovery windows a sensor can carry
        several disjoint windows, and the earliest-starting *active* one
        is the fault in effect.
        """
        active = [
            f
            for f in self.sensor_faults
            if f.sensor_id == sensor_id and f.active_at(time)
        ]
        if not active:
            return None
        return min(active, key=lambda fault: fault.start_time)

    def should_fail(self, sensor_id: SensorId, time: float) -> bool:
        """True when ``sensor_id`` should report failure at ``time``."""
        return self.active_fault_for(sensor_id, time) is not None

    # ------------------------------------------------------------------
    # Fleet namespacing
    # ------------------------------------------------------------------
    @property
    def vehicles(self) -> List[int]:
        """The fleet members targeted by at least one fault, sorted."""
        return sorted({fault.vehicle for fault in self._faults})

    def for_vehicle(self, vehicle: int) -> "FaultScenario":
        """Every fault re-namespaced onto ``vehicle``."""
        return FaultScenario(fault.for_vehicle(vehicle) for fault in self._faults)

    def vehicle_view(self, vehicle: int) -> "FaultScenario":
        """The sensor faults targeting ``vehicle``, projected to
        suite-local ids.

        A fleet harness hands each vehicle's fault scheduler this view:
        the per-vehicle sensor suite identifies its drivers by vehicle-0
        ids, so the projection strips the namespace.  Coordination
        faults target the shared traffic channel, not a vehicle's sensor
        suite, so they never appear in a vehicle view.  For vehicle 0 of
        a classic (fleet size 1) run the view is the scenario itself.
        """
        mine = [fault for fault in self.sensor_faults if fault.vehicle == vehicle]
        if vehicle == 0 and len(mine) == len(self._faults):
            return self
        return FaultScenario(fault.for_vehicle(0) for fault in mine)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def extended(self, extra: Iterable[AnyFaultSpec]) -> "FaultScenario":
        """Return a new scenario with ``extra`` faults added."""
        return FaultScenario(set(self._faults) | set(extra))

    def shifted(self, offset: float) -> "FaultScenario":
        """Return a copy with every fault time shifted by ``offset``.

        Start times clamp at 0.0 (a fault cannot precede the run), so a
        large negative offset can collapse previously distinct faults --
        and therefore scenarios -- onto one another.  Recovery windows
        (``duration_s``) shift with their fault unchanged.
        """
        shifted_faults: List[AnyFaultSpec] = []
        for fault in self._faults:
            start = max(fault.start_time + offset, 0.0)
            if isinstance(fault, TrafficFaultSpec):
                shifted_faults.append(
                    TrafficFaultSpec(
                        fault.vehicle,
                        fault.kind,
                        start,
                        fault.extra_delay_s,
                        fault.duration_s,
                    )
                )
            else:
                shifted_faults.append(
                    FaultSpec(fault.sensor_id, start, fault.duration_s)
                )
        return FaultScenario(shifted_faults)

    def describe(self) -> str:
        """Multi-fault description used in reports."""
        if self.is_empty:
            return "no injected faults (golden run)"
        return "; ".join(fault.describe() for fault in self)


#: The fault-free scenario used for profiling/golden runs.
EMPTY_SCENARIO = FaultScenario()


def scenario_from_pairs(pairs: Sequence[Tuple[SensorId, float]]) -> FaultScenario:
    """Build a scenario from ``(sensor_id, start_time)`` pairs."""
    return FaultScenario(FaultSpec(sensor_id, time) for sensor_id, time in pairs)


def default_traffic_failures(
    fleet_size: int,
    kinds: Sequence[TrafficFaultKind] = (
        TrafficFaultKind.DROPOUT,
        TrafficFaultKind.FREEZE,
        TrafficFaultKind.DELAY,
    ),
    extra_delay_s: float = DEFAULT_EXTRA_DELAY_S,
) -> List[TrafficFailure]:
    """The default coordination fault space of a fleet: one handle per
    (vehicle, fault kind), in vehicle-major order."""
    if fleet_size < 2:
        return []
    return [
        TrafficFailure(vehicle, kind, extra_delay_s)
        for vehicle in range(fleet_size)
        for kind in kinds
    ]
