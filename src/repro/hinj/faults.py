"""Fault specifications: what to fail, and when.

The paper's scheduler "represents a fault injection scenario as a set of
tuples (Timestamp, Fault), where the fault component describes the
injected fault (e.g. sensor and instance) and the timestamp is the
simulation time when the fault was injected".  :class:`FaultSpec` is one
such tuple and :class:`FaultScenario` is the (immutable, hashable) set,
so scenarios can be stored in the scheduler's already-explored hash-set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.sensors.base import SensorId, SensorType


@dataclass(frozen=True, order=True)
class FaultSpec:
    """A single clean sensor failure scheduled at a simulation time.

    Attributes
    ----------
    sensor_id:
        The sensor instance that stops communicating.
    start_time:
        Simulation time (seconds) at which the failure becomes active.
        From that moment on, every read of the instance reports failure
        and the instance never recovers within the run.
    """

    sensor_id: SensorId
    start_time: float

    def __post_init__(self) -> None:
        if self.start_time < 0.0:
            raise ValueError("a fault cannot start before the simulation begins")

    def active_at(self, time: float) -> bool:
        """True when the failure should be in effect at ``time``."""
        return time >= self.start_time

    @property
    def vehicle(self) -> int:
        """The fleet member this fault targets (0 for classic runs)."""
        return self.sensor_id.vehicle

    def for_vehicle(self, vehicle: int) -> "FaultSpec":
        """This fault re-namespaced onto ``vehicle`` (self when unchanged)."""
        if vehicle == self.sensor_id.vehicle:
            return self
        return FaultSpec(self.sensor_id.for_vehicle(vehicle), self.start_time)

    def describe(self) -> str:
        """Short human readable description used in reports."""
        return f"{self.sensor_id.label} fails at t={self.start_time:.2f}s"


class FaultScenario:
    """An immutable set of :class:`FaultSpec` forming one test scenario."""

    __slots__ = ("_faults",)

    def __init__(self, faults: Iterable[FaultSpec] = ()) -> None:
        self._faults: FrozenSet[FaultSpec] = frozenset(faults)

    # ------------------------------------------------------------------
    # Set-like behaviour
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(sorted(self._faults))

    def __len__(self) -> int:
        return len(self._faults)

    def __contains__(self, fault: FaultSpec) -> bool:
        return fault in self._faults

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultScenario):
            return NotImplemented
        return self._faults == other._faults

    def __hash__(self) -> int:
        return hash(self._faults)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f.describe() for f in self)
        return f"FaultScenario({{{inner}}})"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True for the fault-free (golden / profiling) scenario."""
        return not self._faults

    @property
    def faults(self) -> List[FaultSpec]:
        """The faults, sorted for stable display."""
        return sorted(self._faults)

    @property
    def sensor_ids(self) -> List[SensorId]:
        """The failed sensor instances, sorted, without duplicates."""
        return sorted({fault.sensor_id for fault in self._faults})

    @property
    def sensor_types(self) -> List[SensorType]:
        """The failed sensor types, without duplicates."""
        seen: List[SensorType] = []
        for sensor_id in self.sensor_ids:
            if sensor_id.sensor_type not in seen:
                seen.append(sensor_id.sensor_type)
        return seen

    @property
    def earliest_time(self) -> Optional[float]:
        """Time of the first scheduled failure, or None when empty."""
        if not self._faults:
            return None
        return min(fault.start_time for fault in self._faults)

    def fault_for(self, sensor_id: SensorId) -> Optional[FaultSpec]:
        """The fault scheduled for ``sensor_id``, if any (earliest wins)."""
        candidates = [f for f in self._faults if f.sensor_id == sensor_id]
        if not candidates:
            return None
        return min(candidates, key=lambda fault: fault.start_time)

    def should_fail(self, sensor_id: SensorId, time: float) -> bool:
        """True when ``sensor_id`` should report failure at ``time``."""
        fault = self.fault_for(sensor_id)
        return fault is not None and fault.active_at(time)

    # ------------------------------------------------------------------
    # Fleet namespacing
    # ------------------------------------------------------------------
    @property
    def vehicles(self) -> List[int]:
        """The fleet members targeted by at least one fault, sorted."""
        return sorted({fault.vehicle for fault in self._faults})

    def for_vehicle(self, vehicle: int) -> "FaultScenario":
        """Every fault re-namespaced onto ``vehicle``."""
        return FaultScenario(fault.for_vehicle(vehicle) for fault in self._faults)

    def vehicle_view(self, vehicle: int) -> "FaultScenario":
        """The faults targeting ``vehicle``, projected to suite-local ids.

        A fleet harness hands each vehicle's fault scheduler this view:
        the per-vehicle sensor suite identifies its drivers by vehicle-0
        ids, so the projection strips the namespace.  For vehicle 0 of a
        classic (fleet size 1) run the view is the scenario itself.
        """
        mine = [fault for fault in self._faults if fault.vehicle == vehicle]
        if vehicle == 0 and len(mine) == len(self._faults):
            return self
        return FaultScenario(fault.for_vehicle(0) for fault in mine)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def extended(self, extra: Iterable[FaultSpec]) -> "FaultScenario":
        """Return a new scenario with ``extra`` faults added."""
        return FaultScenario(set(self._faults) | set(extra))

    def shifted(self, offset: float) -> "FaultScenario":
        """Return a copy with every fault time shifted by ``offset``."""
        return FaultScenario(
            FaultSpec(f.sensor_id, max(f.start_time + offset, 0.0)) for f in self._faults
        )

    def describe(self) -> str:
        """Multi-fault description used in reports."""
        if self.is_empty:
            return "no injected faults (golden run)"
        return "; ".join(fault.describe() for fault in self)


#: The fault-free scenario used for profiling/golden runs.
EMPTY_SCENARIO = FaultScenario()


def scenario_from_pairs(pairs: Sequence[Tuple[SensorId, float]]) -> FaultScenario:
    """Build a scenario from ``(sensor_id, start_time)`` pairs."""
    return FaultScenario(FaultSpec(sensor_id, time) for sensor_id, time in pairs)
