"""The ``libhinj`` equivalent: driver instrumentation and fault scheduling.

In the paper, ``libhinj`` is a small C library linked into ArduPilot and
PX4 that (1) reports every operating-mode change to Avis through
``hinj_update_mode()`` and (2) intercepts each sensor driver's ``read()``
to ask Avis's scheduler whether the read should fail.  The scheduler, in
turn, executes the fault scenario chosen by the search strategy.

This package reproduces both halves in-process:

* :class:`~repro.hinj.faults.FaultSpec` / :class:`~repro.hinj.faults.FaultScenario`
  describe *what* to fail and *when* -- the ``(Timestamp, Fault)`` tuples
  of Section V-B.
* :class:`~repro.hinj.faults.TrafficFaultSpec` extends the scenario
  grammar to the inter-vehicle traffic channel: vehicle-namespaced
  beacon dropout / freeze / delay faults, scheduled exactly like sensor
  faults (and enumerated by the strategies through
  :class:`~repro.hinj.faults.TrafficFailure` handles).
* :class:`~repro.hinj.scheduler.FaultScheduler` answers the per-read
  "should this instance fail now?" query and records the injections it
  actually performed.
* :class:`~repro.hinj.instrumentation.HinjInterface` is the firmware-facing
  API: ``update_mode()`` reports mode transitions, ``install()`` hooks the
  sensor suite's read path.
"""

from repro.hinj.faults import (
    BurstFailure,
    FaultScenario,
    FaultSpec,
    TrafficFailure,
    TrafficFaultKind,
    TrafficFaultSpec,
    burst_failures,
    default_traffic_failures,
    scenario_from_pairs,
    spec_for,
)
from repro.hinj.instrumentation import HinjInterface, ModeTransition
from repro.hinj.scheduler import FaultScheduler, InjectionRecord

__all__ = [
    "BurstFailure",
    "FaultScenario",
    "FaultScheduler",
    "FaultSpec",
    "HinjInterface",
    "InjectionRecord",
    "ModeTransition",
    "TrafficFailure",
    "TrafficFaultKind",
    "TrafficFaultSpec",
    "burst_failures",
    "default_traffic_failures",
    "scenario_from_pairs",
    "spec_for",
]
