"""Campaign observability: metrics, structured tracing, flight recorder.

``repro.obs`` is the zero-dependency observability layer of the
reproduction.  Three primitives, composable and individually usable:

* :class:`~repro.obs.metrics.MetricsRegistry` -- labelled counters,
  gauges and fixed-bucket histograms with deterministic snapshots and
  JSON export.
* :class:`~repro.obs.trace.Tracer` -- structured span tracing with
  explicit injectable clocks, exporting Chrome-trace-format JSON (load
  it in ``chrome://tracing`` or Perfetto) and a JSONL event stream.
* :class:`~repro.obs.recorder.FlightRecorder` -- a per-run ring buffer
  of phase timings and simulation events (fault injection/recovery,
  mode transitions, proximity conflicts), attached to
  :class:`~repro.core.runner.RunResult` as ``flight_log``.

The layer is **inert by default**: nothing is recorded until an
:class:`~repro.obs.runtime.Observability` is installed (see
:mod:`repro.obs.runtime`), instrumentation sites guard on a single
``runtime.current() is None`` check, and no observability state ever
enters cache fingerprints, scenario hashes or result ordering -- a
traced campaign is bit-identical to an untraced one.

``python -m repro.obs report TRACE`` summarizes a recorded trace (top
spans, per-phase breakdown, cache/worker utilization).
"""

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.recorder import FlightEvent, FlightLog, FlightRecorder
from repro.obs.runtime import Observability, current, install, observed, uninstall
from repro.obs.trace import Tracer, validate_chrome_trace

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS_S",
    "FlightEvent",
    "FlightLog",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Tracer",
    "current",
    "install",
    "merge_snapshots",
    "observed",
    "uninstall",
    "validate_chrome_trace",
]
