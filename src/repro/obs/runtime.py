"""The observability runtime: one process-wide switch, inert by default.

Instrumentation sites throughout the engine, SABRE and the fault stack
all funnel through one question — :func:`current` — and do nothing when
it returns ``None``.  That is the whole inertness contract: no
:class:`Observability` installed, no clocks read, no objects allocated,
no behaviour perturbed.

``fork``-started pool workers inherit the installed runtime, so a
traced ``ProcessPoolBackend`` campaign records flight logs inside
workers without any plumbing; the parent reads them off the returned
``RunResult``s.  Grid cells install a *fresh* runtime per cell (via
:func:`observed`) so each JSONL record carries that cell's metrics
alone.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import DEFAULT_CAPACITY, FlightRecorder
from repro.obs.trace import Tracer


class Observability:
    """A bundle of live instruments: one registry, one tracer.

    ``recorder_capacity`` sizes the per-run flight recorder rings the
    harness creates while this runtime is installed.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        recorder_capacity: int = DEFAULT_CAPACITY,
        clock: Optional[Callable[[], float]] = None,
        pid: Optional[int] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(clock=clock, pid=pid)
        self.recorder_capacity = recorder_capacity

    def new_recorder(self) -> FlightRecorder:
        """A fresh per-run flight recorder sized by this runtime."""
        return FlightRecorder(capacity=self.recorder_capacity)


_ACTIVE: Optional[Observability] = None


def current() -> Optional[Observability]:
    """The installed runtime, or None — the single inertness gate."""
    return _ACTIVE


def install(obs: Observability) -> Observability:
    """Make ``obs`` the process-wide runtime (replacing any prior one)."""
    global _ACTIVE  # repro-lint: disable=FAB003 -- the gate's one process-wide slot; workers deliberately inherit the inert default
    _ACTIVE = obs
    return obs


def uninstall() -> None:
    """Return the process to the inert default."""
    global _ACTIVE  # repro-lint: disable=FAB003 -- the gate's one process-wide slot; workers deliberately inherit the inert default
    _ACTIVE = None


@contextmanager
def observed(obs: Optional[Observability] = None) -> Iterator[Observability]:
    """Install a runtime for the duration of a block, then restore.

    The previous runtime (usually None) comes back on exit even if the
    block raises, so tests and grid cells cannot leak instrumentation
    into later work.
    """
    global _ACTIVE  # repro-lint: disable=FAB003 -- the gate's one process-wide slot; restored on exit even when the block raises
    previous = _ACTIVE
    _ACTIVE = obs if obs is not None else Observability()
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
