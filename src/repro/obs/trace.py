"""Structured span tracing with explicit clocks and Chrome-trace export.

A :class:`Tracer` records two event shapes:

* **spans** -- ``with tracer.span("simulate", scenario=...)`` records a
  complete (begin + duration) event when the block exits;
* **instants** -- ``tracer.instant("engine.autotune", size=24)`` marks a
  point in time (fault injections, autotune decisions).

The clock is *injected*: the default is ``time.perf_counter``, but
tests pass a deterministic fake so two traced runs produce
byte-identical trace files.  ``pid`` is likewise injectable (defaults
to the real process id) so multi-process traces keep one track per
worker while deterministic tests pin it to 0.

Export targets:

* :meth:`Tracer.chrome_trace` / :meth:`Tracer.write_chrome` -- the
  Chrome trace event format (the ``{"traceEvents": [...]}`` object
  form), loadable in ``chrome://tracing`` and https://ui.perfetto.dev.
  Span nesting is implied by timestamps on a shared track, exactly how
  the format expects it.
* :meth:`Tracer.write_jsonl` -- one JSON object per event, the stream
  form log-processing pipelines consume.

:func:`validate_chrome_trace` is the schema check the tier-1 smoke test
and ``python -m repro.obs report`` share: it guards the trace format
against silent drift.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, Iterator, List, Optional

#: Event kinds a tracer records ("X" = complete span, "i" = instant),
#: mirroring the Chrome trace-event phase letters.
SPAN_PHASE = "X"
INSTANT_PHASE = "i"


def _clean_args(args: Dict[str, object]) -> Dict[str, object]:
    """Arguments rendered JSON-safe (non-scalars become their repr)."""
    cleaned: Dict[str, object] = {}
    for key, value in args.items():
        if isinstance(value, (bool, int, float, str, type(None))):
            cleaned[key] = value
        else:
            cleaned[key] = repr(value)
    return cleaned


class Tracer:
    """Records spans and instants against an injectable clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning seconds as a float.  Defaults
        to ``time.perf_counter``; inject a fake for deterministic
        traces under test.
    pid:
        Track (process) id stamped on every event.  Defaults to the
        real pid; inject 0 for deterministic traces.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        pid: Optional[int] = None,
    ) -> None:
        self.clock: Callable[[], float] = clock if clock is not None else time.perf_counter
        self.pid = pid if pid is not None else os.getpid()
        self._events: List[Dict[str, object]] = []
        self._depth = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **args: object) -> Iterator[Dict[str, object]]:
        """Record a complete span around the ``with`` block.

        Yields the (mutable) args dict so the block can attach results
        discovered mid-span (e.g. the number of candidates a round
        produced).
        """
        cleaned = _clean_args(args)
        start = self.clock()
        self._depth += 1
        try:
            yield cleaned
        finally:
            self._depth -= 1
            self.complete(name, start, self.clock(), depth=self._depth, **cleaned)

    def instant(self, name: str, **args: object) -> None:
        """Record a point-in-time event."""
        self._events.append(
            {
                "ph": INSTANT_PHASE,
                "name": name,
                "ts_s": self.clock(),
                "dur_s": 0.0,
                "pid": self.pid,
                "tid": 0,
                "depth": self._depth,
                "args": _clean_args(args),
            }
        )

    def complete(
        self,
        name: str,
        start_s: float,
        end_s: float,
        depth: int = 0,
        **args: object,
    ) -> None:
        """Record an already-measured span (used by span() and by callers
        stitching in events measured elsewhere, e.g. grid cell walls)."""
        self._events.append(
            {
                "ph": SPAN_PHASE,
                "name": name,
                "ts_s": start_s,
                "dur_s": max(end_s - start_s, 0.0),
                "pid": self.pid,
                "tid": 0,
                "depth": depth,
                "args": _clean_args(args),
            }
        )

    def extend(self, events: Iterable[Dict[str, object]]) -> None:
        """Adopt serialized events recorded by another tracer (grid
        workers return theirs to the parent this way)."""
        for event in events:
            self._events.append(dict(event))

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    @property
    def events(self) -> List[Dict[str, object]]:
        """The recorded events (internal schema, seconds-based)."""
        return list(self._events)

    def chrome_trace(self) -> Dict[str, object]:
        """The Chrome trace-event object form of the recorded events."""
        trace_events = []
        for event in self._events:
            rendered: Dict[str, object] = {
                "name": event["name"],
                "ph": event["ph"],
                "ts": round(float(event["ts_s"]) * 1e6, 3),
                "pid": event["pid"],
                "tid": event["tid"],
                "args": event["args"],
            }
            if event["ph"] == SPAN_PHASE:
                rendered["dur"] = round(float(event["dur_s"]) * 1e6, 3)
            else:
                rendered["s"] = "t"  # instant scope: thread
            trace_events.append(rendered)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: str) -> None:
        """Write the Chrome-trace JSON document to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, sort_keys=True)
            handle.write("\n")

    def write_jsonl(self, path: str) -> None:
        """Write the event stream to ``path``, one JSON object per line."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self._events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")


def load_trace_events(path: str) -> List[Dict[str, object]]:
    """Load trace events from a Chrome-trace JSON file or a JSONL stream.

    Returns events in the *Chrome* schema (``ts``/``dur`` in
    microseconds); JSONL events (the internal seconds schema) are
    converted on the way in, so report tooling handles both formats.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("["):
        events = json.loads(text)
        return [event for event in events if isinstance(event, dict)]
    if stripped.startswith("{"):
        # A JSONL stream also starts with "{" -- only treat the text as
        # one Chrome document when it parses whole AND carries the
        # traceEvents envelope; otherwise fall through to line parsing.
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            document = None
        if isinstance(document, dict) and isinstance(
            document.get("traceEvents"), list
        ):
            return [
                event
                for event in document["traceEvents"]
                if isinstance(event, dict)
            ]
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        event = json.loads(line)
        converted: Dict[str, object] = {
            "name": event.get("name"),
            "ph": event.get("ph"),
            "ts": float(event.get("ts_s", 0.0)) * 1e6,
            "pid": event.get("pid", 0),
            "tid": event.get("tid", 0),
            "args": event.get("args", {}),
        }
        if event.get("ph") == SPAN_PHASE:
            converted["dur"] = float(event.get("dur_s", 0.0)) * 1e6
        events.append(converted)
    return events


def validate_chrome_trace(document: object) -> List[str]:
    """Schema-check a Chrome trace document; returns the problems found.

    An empty list means the document is loadable by ``chrome://tracing``
    / Perfetto as far as this reproduction's emitter is concerned: an
    object with a ``traceEvents`` list whose entries carry ``name``,
    ``ph`` (one of the phases we emit), numeric ``ts`` (plus ``dur`` for
    complete spans), ``pid`` and ``tid``.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["trace document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            problems.append(f"{where}: missing name")
        phase = event.get("ph")
        if phase not in (SPAN_PHASE, INSTANT_PHASE):
            problems.append(f"{where}: unexpected phase {phase!r}")
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: ts is not numeric")
        if phase == SPAN_PHASE and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"{where}: complete span without numeric dur")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: {field} is not an integer")
    return problems
