"""The per-run flight recorder: phase timings and a ring of events.

Every traced simulation run carries a :class:`FlightLog` on its
:class:`~repro.core.runner.RunResult`: the wall time each harness phase
consumed (provisioning, physics stepping, sensor reads, monitor
evaluation, ...) plus a bounded, time-ordered stream of
:class:`FlightEvent` records — fault injections and recoveries, flight
mode transitions, proximity conflicts, fence breaches.

The event stream is a *ring buffer*: a run that produces more events
than ``capacity`` keeps the most recent ones and reports how many were
dropped, so pathological runs cannot balloon result payloads (results
travel through the process pool and the result cache as pickles).

Events are assembled from the harness's own deterministic records
(scheduler injections, traffic injections, simulator safety events,
firmware transitions), so a recorded run and an unrecorded run execute
identically — the recorder only *reads* state the run already produced.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

#: Default ring capacity — generous for normal runs (a convoy campaign
#: run produces tens of events), tight enough that a runaway fault storm
#: cannot bloat pickled results.
DEFAULT_CAPACITY = 256


@dataclass(frozen=True)
class FlightEvent:
    """One timestamped occurrence during a simulation run.

    ``kind`` is a stable dotted tag (``fault.injected``,
    ``fault.recovered``, ``traffic.injected``, ``traffic.recovered``,
    ``mode.transition``, ``proximity.conflict``, ``safety.collision``,
    ``safety.fence_breach``); ``detail`` is a human-readable suffix and
    ``vehicle`` names the aircraft involved when there is one.
    """

    time_s: float
    kind: str
    detail: str = ""
    vehicle: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable rendering."""
        rendered: Dict[str, object] = {
            "time_s": self.time_s,
            "kind": self.kind,
            "detail": self.detail,
        }
        if self.vehicle is not None:
            rendered["vehicle"] = self.vehicle
        return rendered


@dataclass
class FlightLog:
    """The finished, immutable-by-convention product of a recorder."""

    events: List[FlightEvent] = field(default_factory=list)
    dropped: int = 0
    capacity: int = DEFAULT_CAPACITY
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: The stepping mode the phase records were produced under
    #: (``reference`` / ``soa`` / ``adaptive``), so trace diffs can
    #: attribute per-phase speedups to skipped quiescence.  A plain
    #: class-attribute default: logs pickled by older engines unpickle
    #: against it.
    stepper: str = "reference"

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable rendering."""
        return {
            "events": [event.as_dict() for event in self.events],
            "dropped": self.dropped,
            "capacity": self.capacity,
            "stepper": self.stepper,
            "phase_seconds": {
                phase: self.phase_seconds[phase]
                for phase in sorted(self.phase_seconds)
            },
        }


class FlightRecorder:
    """Accumulates phase time and events for one run, then seals a log."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._events: Deque[FlightEvent] = deque(maxlen=capacity)
        self._total_events = 0
        self._phase_seconds: Dict[str, float] = {}

    def add_phase(self, phase: str, seconds: float) -> None:
        """Accumulate wall time against a named harness phase."""
        self._phase_seconds[phase] = self._phase_seconds.get(phase, 0.0) + seconds

    def record(
        self,
        time_s: float,
        kind: str,
        detail: str = "",
        vehicle: Optional[str] = None,
    ) -> None:
        """Append one event; the oldest event falls out when full."""
        self._events.append(FlightEvent(time_s, kind, detail, vehicle))
        self._total_events += 1

    def record_all(self, events: List[FlightEvent]) -> None:
        """Append pre-built events (callers sort by time first)."""
        for event in events:
            self._events.append(event)
            self._total_events += 1

    @property
    def dropped(self) -> int:
        """Events that fell out of the ring."""
        return self._total_events - len(self._events)

    def seal(self) -> FlightLog:
        """The finished log for attachment to a RunResult."""
        return FlightLog(
            events=list(self._events),
            dropped=self.dropped,
            capacity=self.capacity,
            phase_seconds=dict(self._phase_seconds),
        )
