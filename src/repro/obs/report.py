"""Trace/metrics summarization behind ``python -m repro.obs report``.

Turns a recorded trace (Chrome JSON or JSONL) and optionally a metrics
snapshot into the triage questions the campaign engine's users actually
ask: where did the wall time go (top spans), how did each harness phase
contribute, how well did the cache work, and how evenly were pool
workers loaded.
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List, Optional, Sequence

from repro.obs.trace import SPAN_PHASE, load_trace_events, validate_chrome_trace


def summarize_spans(events: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Aggregate complete spans by name, sorted by total duration.

    Expects Chrome-schema events (``ts``/``dur`` in microseconds);
    returns one row per span name with count, total/mean/max seconds.
    """
    totals: Dict[str, Dict[str, float]] = {}
    for event in events:
        if event.get("ph") != SPAN_PHASE:
            continue
        name = str(event.get("name"))
        duration_s = float(event.get("dur", 0.0)) / 1e6
        row = totals.setdefault(name, {"count": 0, "total_s": 0.0, "max_s": 0.0})
        row["count"] += 1
        row["total_s"] += duration_s
        row["max_s"] = max(row["max_s"], duration_s)
    rows = [
        {
            "name": name,
            "count": int(row["count"]),
            "total_s": row["total_s"],
            "mean_s": row["total_s"] / row["count"] if row["count"] else 0.0,
            "max_s": row["max_s"],
        }
        for name, row in totals.items()
    ]
    rows.sort(key=lambda row: (-row["total_s"], row["name"]))
    return rows


def _counter(metrics: Dict[str, object], prefix: str) -> float:
    """Sum every counter whose key starts with ``prefix`` (labels vary)."""
    counters = metrics.get("counters", {})
    return sum(
        value
        for key, value in counters.items()
        if key == prefix or key.startswith(prefix + "{")
    )


def cache_utilization(metrics: Dict[str, object]) -> Optional[Dict[str, object]]:
    """Cache hit-rate summary from a metrics snapshot, if it has one."""
    hits = _counter(metrics, "cache.hits")
    misses = _counter(metrics, "cache.misses")
    if hits + misses == 0:
        return None
    return {
        "hits": hits,
        "misses": misses,
        "evictions": _counter(metrics, "cache.evictions"),
        "hit_rate": hits / (hits + misses),
    }


def worker_utilization(metrics: Dict[str, object]) -> List[Dict[str, object]]:
    """Per-worker task counts and execute time from a metrics snapshot."""
    counters = metrics.get("counters", {})
    workers: Dict[str, Dict[str, float]] = {}
    for key, value in counters.items():
        for metric, field in (
            ("backend.worker_tasks", "tasks"),
            ("backend.worker_execute_seconds", "execute_s"),
            ("backend.worker_queue_wait_seconds", "queue_wait_s"),
        ):
            if key.startswith(metric + "{"):
                label = key[len(metric) + 1 : -1]  # inside {...}
                workers.setdefault(label, {})[field] = value
    rows = [
        {
            "worker": label,
            "tasks": int(fields.get("tasks", 0)),
            "execute_s": fields.get("execute_s", 0.0),
            "queue_wait_s": fields.get("queue_wait_s", 0.0),
        }
        for label, fields in workers.items()
    ]
    rows.sort(key=lambda row: row["worker"])
    return rows


def build_report(
    trace_path: Optional[str],
    metrics_path: Optional[str],
    top: int = 15,
) -> Dict[str, object]:
    """The full report document (the --json output of the CLI)."""
    report: Dict[str, object] = {}
    if trace_path is not None:
        events = load_trace_events(trace_path)
        spans = summarize_spans(events)
        report["trace"] = {
            "path": trace_path,
            "events": len(events),
            "spans": spans[:top],
            "span_names": len(spans),
        }
    if metrics_path is not None:
        with open(metrics_path, "r", encoding="utf-8") as handle:
            metrics = json.load(handle)
        report["metrics"] = {"path": metrics_path}
        cache = cache_utilization(metrics)
        if cache is not None:
            report["metrics"]["cache"] = cache
        workers = worker_utilization(metrics)
        if workers:
            report["metrics"]["workers"] = workers
        phase_totals = {
            key: value
            for key, value in metrics.get("counters", {}).items()
            if key.startswith("run.phase_seconds")
        }
        if phase_totals:
            report["metrics"]["phase_seconds"] = phase_totals
    return report


def render_text(report: Dict[str, object]) -> str:
    """Human-readable rendering of a report document."""
    lines: List[str] = []
    trace = report.get("trace")
    if isinstance(trace, dict):
        lines.append(
            f"trace: {trace['path']} "
            f"({trace['events']} events, {trace['span_names']} span names)"
        )
        spans = trace.get("spans", [])
        if spans:
            lines.append("top spans by total duration:")
            lines.append(
                f"  {'name':<32} {'count':>7} {'total_s':>10} {'mean_s':>10} {'max_s':>10}"
            )
            for row in spans:
                lines.append(
                    f"  {row['name']:<32} {row['count']:>7d} "
                    f"{row['total_s']:>10.4f} {row['mean_s']:>10.4f} "
                    f"{row['max_s']:>10.4f}"
                )
    metrics = report.get("metrics")
    if isinstance(metrics, dict):
        lines.append(f"metrics: {metrics['path']}")
        cache = metrics.get("cache")
        if isinstance(cache, dict):
            lines.append(
                f"  cache: {cache['hits']:.0f} hits / {cache['misses']:.0f} misses "
                f"({cache['hit_rate']:.1%} hit rate, "
                f"{cache['evictions']:.0f} evictions)"
            )
        workers = metrics.get("workers")
        if isinstance(workers, list) and workers:
            lines.append("  workers:")
            for row in workers:
                lines.append(
                    f"    {row['worker']}: {row['tasks']} tasks, "
                    f"execute {row['execute_s']:.3f}s, "
                    f"queue wait {row['queue_wait_s']:.3f}s"
                )
        phases = metrics.get("phase_seconds")
        if isinstance(phases, dict) and phases:
            lines.append("  phase seconds:")
            for key in sorted(phases):
                lines.append(f"    {key}: {phases[key]:.3f}")
    if not lines:
        lines.append("nothing to report (no trace or metrics supplied)")
    return "\n".join(lines)


def _is_campaign_stream(text: str) -> bool:
    """Whether a file's text is a streamed-campaign JSONL (vs a trace).

    Campaign records carry a ``cell`` key; trace events never do (they
    have ``ph``/``name``/``ts``).  Only the first parseable line is
    consulted -- mixed files are validated as whatever they lead with.
    """
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return False
        return isinstance(record, dict) and "cell" in record
    return False


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize campaign traces and metrics snapshots.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    report_parser = subparsers.add_parser(
        "report", help="summarize a trace and/or metrics snapshot"
    )
    report_parser.add_argument(
        "trace", nargs="?", default=None,
        help="trace file (Chrome JSON or JSONL event stream)",
    )
    report_parser.add_argument(
        "--metrics", default=None, help="metrics snapshot JSON to summarize"
    )
    report_parser.add_argument(
        "--top", type=int, default=15, help="span rows to show (default 15)"
    )
    report_parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    report_parser.add_argument(
        "--validate", action="store_true",
        help="schema-check the input file -- a trace (Chrome JSON or "
        "JSONL) or a streamed campaign JSONL file (--stream/service "
        "records) -- and exit non-zero on problems",
    )
    options = parser.parse_args(argv)

    if options.trace is None and options.metrics is None:
        report_parser.error("supply a trace file and/or --metrics")

    if options.validate:
        if options.trace is None:
            report_parser.error("--validate needs a trace file")
        with open(options.trace, "r", encoding="utf-8") as handle:
            text = handle.read()
        if _is_campaign_stream(text):
            # Campaign record streams (grid --stream / service mode)
            # validate against the versioned record schema instead of
            # the Chrome trace schema.
            from repro.engine.grid import validate_campaign_stream

            problems = validate_campaign_stream(options.trace)
            if problems:
                for problem in problems:
                    print(f"invalid: {problem}")
                return 1
            print(f"valid: {options.trace}")
            if options.metrics is None:
                return 0
            report = build_report(None, options.metrics, top=options.top)
            if options.json:
                print(json.dumps(report, indent=2, sort_keys=True))
            else:
                print(render_text(report))
            return 0
        if text.lstrip().startswith("{"):
            document = json.loads(text)
        else:
            # JSONL streams validate through their Chrome rendering.
            document = {"traceEvents": load_trace_events(options.trace)}
        problems = validate_chrome_trace(document)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}")
            return 1
        # A valid trace still gets its report: --validate gates the
        # summary, it does not replace it.
        print(f"valid: {options.trace}")

    report = build_report(options.trace, options.metrics, top=options.top)
    if options.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_text(report))
    return 0
