"""The metrics registry: labelled counters, gauges and histograms.

A deliberately small, zero-dependency subset of the Prometheus data
model, tuned for campaign introspection rather than scraping:

* **Counters** only go up (``inc``).  Round counts, proposals, cache
  hits, pruning decisions.
* **Gauges** hold the latest value (``set``).  Queue depths, the
  auto-tuned batch size.
* **Histograms** bucket observations against *fixed* boundaries chosen
  at creation.  Round wall times, per-task execute and queue-wait
  times.  Fixed boundaries keep snapshots mergeable across grid cells
  and comparable across runs.

Instruments are keyed by ``(name, labels)``: asking the registry for
the same name and label set returns the same instrument, so
instrumentation sites never hold references across runs.  Snapshots
render labels in sorted order -- two registries fed the same
observations produce byte-identical JSON, which is what the snapshot
determinism tests pin.
"""

from __future__ import annotations

import bisect
import json
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram boundaries for durations in seconds: spans four
#: orders of magnitude, from sub-millisecond sensor reads to minute-long
#: campaign rounds.
DEFAULT_TIME_BUCKETS_S: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)


def _label_suffix(labels: Dict[str, object]) -> str:
    """The canonical ``{key=value,...}`` rendering of a label set."""
    if not labels:
        return ""
    rendered = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return "{" + rendered + "}"


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can move in either direction; snapshots keep the last."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self.value += amount


class Histogram:
    """Observations bucketed against fixed, sorted boundaries.

    An observation lands in the first bucket whose upper boundary is
    >= the value; values beyond the last boundary land in the implicit
    ``+Inf`` overflow bucket.  ``sum`` and ``count`` ride along so mean
    values survive snapshotting.
    """

    __slots__ = ("boundaries", "bucket_counts", "sum", "count")

    def __init__(self, boundaries: Sequence[float] = DEFAULT_TIME_BUCKETS_S) -> None:
        ordered = tuple(float(boundary) for boundary in boundaries)
        if not ordered:
            raise ValueError("a histogram needs at least one bucket boundary")
        if list(ordered) != sorted(set(ordered)):
            raise ValueError("bucket boundaries must be strictly increasing")
        self.boundaries = ordered
        self.bucket_counts: List[int] = [0] * (len(ordered) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.sum += value
        self.count += 1

    def snapshot(self) -> Dict[str, object]:
        """The JSON-serialisable rendering of this histogram."""
        buckets = {
            f"le={boundary:g}": count
            for boundary, count in zip(self.boundaries, self.bucket_counts)
        }
        buckets["le=+Inf"] = self.bucket_counts[-1]
        return {"count": self.count, "sum": self.sum, "buckets": buckets}


class MetricsRegistry:
    """Get-or-create store of labelled instruments with one snapshot."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    @staticmethod
    def _key(name: str, labels: Dict[str, object]) -> str:
        if not name:
            raise ValueError("a metric needs a non-empty name")
        return name + _label_suffix(labels)

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter registered under ``name`` and ``labels``."""
        key = self._key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge registered under ``name`` and ``labels``."""
        key = self._key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        """The histogram registered under ``name`` and ``labels``.

        ``buckets`` fixes the boundaries on first creation; asking again
        with *different* boundaries is a registration error (silently
        returning the old buckets would skew every later observation).
        """
        key = self._key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                buckets if buckets is not None else DEFAULT_TIME_BUCKETS_S
            )
        elif buckets is not None and tuple(float(b) for b in buckets) != (
            instrument.boundaries
        ):
            raise ValueError(
                f"histogram '{key}' already registered with boundaries "
                f"{instrument.boundaries}"
            )
        return instrument

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A deterministic, JSON-serialisable dump of every instrument."""
        return {
            "counters": {
                key: self._counters[key].value for key in sorted(self._counters)
            },
            "gauges": {key: self._gauges[key].value for key in sorted(self._gauges)},
            "histograms": {
                key: self._histograms[key].snapshot()
                for key in sorted(self._histograms)
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write_json(self, path: str, indent: int = 2) -> None:
        """Write the snapshot to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(indent=indent) + "\n")


def merge_snapshots(snapshots: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate several registry snapshots into one.

    Counters and histogram buckets/sums/counts add; gauges keep the
    maximum (the only merge that is meaningful for depth-style gauges
    aggregated across grid cells).  Histograms with mismatched bucket
    boundaries raise -- fixed boundaries are what make merging sound.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        for key, value in snapshot.get("counters", {}).items():
            counters[key] = counters.get(key, 0.0) + value
        for key, value in snapshot.get("gauges", {}).items():
            gauges[key] = max(gauges[key], value) if key in gauges else value
        for key, rendered in snapshot.get("histograms", {}).items():
            merged = histograms.get(key)
            if merged is None:
                histograms[key] = {
                    "count": rendered["count"],
                    "sum": rendered["sum"],
                    "buckets": dict(rendered["buckets"]),
                }
                continue
            if set(merged["buckets"]) != set(rendered["buckets"]):
                raise ValueError(
                    f"histogram '{key}' has mismatched bucket boundaries "
                    "across snapshots"
                )
            merged["count"] += rendered["count"]
            merged["sum"] += rendered["sum"]
            for bucket, count in rendered["buckets"].items():
                merged["buckets"][bucket] += count
    return {
        "counters": {key: counters[key] for key in sorted(counters)},
        "gauges": {key: gauges[key] for key in sorted(gauges)},
        "histograms": {key: histograms[key] for key in sorted(histograms)},
    }
