"""Report generation: detailed unsafe-condition reports and campaign tables.

When the invariant monitor flags a violation, "the invariant monitor
generates a detailed report to help reproduce and diagnose the bug".
:func:`unsafe_condition_report` renders that report for one run;
:func:`campaign_table` renders the comparison tables the benchmarks print.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.avis import CampaignResult
from repro.core.replay import build_replay_plan
from repro.core.runner import RunResult


def unsafe_condition_report(result: RunResult) -> str:
    """A detailed, human-readable report for one unsafe run."""
    lines: List[str] = []
    lines.append("=" * 72)
    lines.append(f"UNSAFE CONDITION REPORT -- {result.firmware_name} / {result.workload_name}")
    lines.append("=" * 72)
    lines.append("")
    lines.append("Injected faults:")
    if result.scenario.is_empty:
        lines.append("  (none -- golden run)")
    else:
        for fault in result.scenario:
            lines.append(f"  - {fault.describe()}")
    plan = build_replay_plan(result)
    lines.append("")
    lines.append("Replay anchoring (offsets from mode transitions):")
    lines.append(f"  {plan.describe()}")
    lines.append("")
    lines.append("Operating-mode transitions observed:")
    for transition in result.mode_transitions:
        lines.append(f"  - {transition.describe()}")
    lines.append("")
    lines.append("Invariant violations:")
    if not result.unsafe_conditions:
        lines.append("  (none)")
    else:
        for condition in result.unsafe_conditions:
            lines.append(f"  - {condition.describe()}")
    if result.collisions:
        lines.append("")
        lines.append("Collisions recorded by the simulator:")
        for collision in result.collisions:
            lines.append(f"  - {collision.describe()}")
    if result.failsafe_events:
        lines.append("")
        lines.append("Fail-safe decisions taken by the firmware:")
        for event in result.failsafe_events:
            lines.append(f"  - {event.describe()}")
    if result.triggered_bugs:
        lines.append("")
        lines.append("Root-cause bugs (simulation ground truth):")
        for bug_id in result.triggered_bugs:
            lines.append(f"  - {bug_id}")
    workload = result.workload_result
    lines.append("")
    lines.append(
        "Workload outcome: "
        + (f"{workload.outcome.value} ({workload.reason})" if workload else "n/a")
    )
    lines.append(f"Simulated duration: {result.duration_s:.1f} s over {result.steps} steps")
    return "\n".join(lines)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple fixed-width text table."""
    materialised = [list(map(str, row)) for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render_row(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))

    lines = [render_row(list(headers)), render_row(["-" * width for width in widths])]
    lines.extend(render_row(row) for row in materialised)
    return "\n".join(lines)


def campaign_table(campaigns: Sequence[CampaignResult]) -> str:
    """The Table III style comparison of campaigns."""
    rows = []
    for campaign in campaigns:
        rows.append(
            (
                campaign.strategy_name,
                campaign.firmware_name,
                campaign.unsafe_scenario_count,
                campaign.simulations,
                campaign.labels,
                f"{campaign.efficiency:.2f}",
            )
        )
    return format_table(
        ["approach", "firmware", "unsafe #", "simulations", "labels", "unsafe/sim"], rows
    )


def per_mode_table(campaigns: Sequence[CampaignResult]) -> str:
    """The Table IV style per-mode breakdown."""
    rows = []
    for campaign in campaigns:
        counts = campaign.per_mode_counts
        rows.append(
            (
                campaign.strategy_name,
                campaign.firmware_name,
                counts.get("takeoff", 0),
                counts.get("manual", 0),
                counts.get("waypoint", 0),
                counts.get("land", 0),
            )
        )
    return format_table(
        ["approach", "firmware", "takeoff #", "manual #", "waypoint #", "land #"], rows
    )
