"""Redundancy elimination (Section IV-B-1).

Two policies keep SABRE from wasting budget on equivalent scenarios:

* **Found-bug pruning** -- once injecting a set of failures has triggered
  a bug, supersets of that set (extra failures on top of it) are skipped:
  "if a vehicle cannot handle a single sensor failure then it is unlikely
  to correctly handle multiple failures in the same program context".
* **Sensor-instance symmetry** -- the firmware's handling depends on the
  *role* of the failed instance (primary vs. backup), not on which
  physical backup failed, so scenarios that fail the same roles at the
  same times are equivalent.  For ``N`` instances of one type this cuts
  the combinations from ``N x (2^N - 1)`` to ``2N - 1`` (Figure 6:
  21 -> 5 for three compasses).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.hinj.faults import FaultScenario, FaultSpec, TrafficFaultSpec
from repro.sensors.base import SensorId, SensorRole, SensorType


#: A canonical signature: how many instances of each (vehicle, type, role)
#: fail at each time, for each recovery window (None = latched).  Two
#: scenarios with equal signatures are symmetric.  The vehicle index is
#: part of the signature because instance symmetry only holds within one
#: airframe: the same backup failing on a different fleet member is a
#: genuinely different scenario.  The window is part of it because a
#: recovering fault and a latched one at the same site are genuinely
#: different probes.
SymmetrySignature = FrozenSet[Tuple[int, str, str, float, Optional[float], int]]


def symmetry_signature(
    scenario: FaultScenario, role_of: Callable[[SensorId], SensorRole]
) -> SymmetrySignature:
    """The role-based canonical form of a scenario."""
    counts: Counter = Counter()
    for fault in scenario:
        if isinstance(fault, TrafficFaultSpec):
            # A coordination fault has no redundancy group: each
            # (vehicle, kind) is its own singleton, so only exact
            # duplicates are symmetric.
            counts[
                (
                    fault.vehicle,
                    fault.label,
                    "channel",
                    fault.start_time,
                    fault.duration_s,
                )
            ] += 1
            continue
        role = role_of(fault.sensor_id)
        counts[
            (
                fault.sensor_id.vehicle,
                fault.sensor_id.sensor_type.value,
                role.value,
                fault.start_time,
                fault.duration_s,
            )
        ] += 1
    return frozenset(
        (vehicle, sensor_type, role, time, duration, count)
        for (vehicle, sensor_type, role, time, duration), count in counts.items()
    )


def symmetric_fault_count(instance_count: int) -> int:
    """``2N - 1``: distinct role-signatures for N instances of one type.

    This is the figure-6 arithmetic: N ways to fail k backups (k = 0..N-1)
    together with the primary, plus N - 1 ways to fail k backups alone
    (k = 1..N-1), which totals ``2N - 1``.
    """
    if instance_count < 1:
        raise ValueError("a sensor type needs at least one instance")
    return 2 * instance_count - 1


def unpruned_fault_count(instance_count: int) -> int:
    """``N x (2^N - 1)``: the paper's count without symmetry pruning."""
    if instance_count < 1:
        raise ValueError("a sensor type needs at least one instance")
    return instance_count * (2 ** instance_count - 1)


@dataclass
class PruningStatistics:
    """Counts of how often each policy fired (for reports and ablation)."""

    found_bug_pruned: int = 0
    symmetry_pruned: int = 0
    duplicate_pruned: int = 0

    @property
    def total_pruned(self) -> int:
        """Total scenarios skipped by any policy."""
        return self.found_bug_pruned + self.symmetry_pruned + self.duplicate_pruned


class RedundancyPruner:
    """Implements ``CanPrune`` of Algorithm 1."""

    def __init__(
        self,
        role_of: Callable[[SensorId], SensorRole],
        enable_found_bug_pruning: bool = True,
        enable_symmetry_pruning: bool = True,
    ) -> None:
        self._role_of = role_of
        self._enable_found_bug = enable_found_bug_pruning
        self._enable_symmetry = enable_symmetry_pruning
        self._bug_scenarios: Set[FaultScenario] = set()
        self._seen_signatures: Set[SymmetrySignature] = set()
        self._seen_scenarios: Set[FaultScenario] = set()
        self.statistics = PruningStatistics()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_bug(self, scenario: FaultScenario) -> None:
        """Record that ``scenario`` triggered a bug (found-bug pruning)."""
        self._bug_scenarios.add(scenario)

    def record_explored(self, scenario: FaultScenario) -> None:
        """Record that ``scenario`` has been simulated."""
        self._seen_scenarios.add(scenario)
        self._seen_signatures.add(symmetry_signature(scenario, self._role_of))

    @property
    def bug_scenarios(self) -> Set[FaultScenario]:
        """Scenarios known to trigger bugs."""
        return set(self._bug_scenarios)

    @property
    def found_bug_pruning_enabled(self) -> bool:
        """True when supersets of bug-triggering scenarios are pruned.

        Batched SABRE consults this to decide whether a candidate's
        admission can depend on the outcome of an in-flight simulation:
        with found-bug pruning disabled no such dependency exists and
        batches never need to be cut early.
        """
        return self._enable_found_bug

    # ------------------------------------------------------------------
    # The CanPrune decision
    # ------------------------------------------------------------------
    def can_prune(self, scenario: FaultScenario) -> bool:
        """True when ``scenario`` is redundant and should be skipped."""
        if scenario in self._seen_scenarios:
            self.statistics.duplicate_pruned += 1
            return True
        if self._enable_found_bug and self._is_superset_of_bug(scenario):
            self.statistics.found_bug_pruned += 1
            return True
        if self._enable_symmetry:
            signature = symmetry_signature(scenario, self._role_of)
            if signature in self._seen_signatures:
                self.statistics.symmetry_pruned += 1
                return True
        return False

    def _is_superset_of_bug(self, scenario: FaultScenario) -> bool:
        candidate = set(scenario)
        for bug_scenario in self._bug_scenarios:
            bug_faults = set(bug_scenario)
            if bug_faults and bug_faults < candidate:
                return True
        return False
