"""The liveliness invariant (Section IV-C-2).

Liveliness: "the UAV must always make progress towards its goal", which
may legitimately be sacrificed in a *safe mode* to preserve safety.

The check compares the test run against a set of fault-free profiling
runs.  The state at time-offset ``t`` is the tuple ``(P, alpha, M)``
(position, acceleration, operating mode).  Distances are normalised so
all three components live on the scale of the mode graph:

    d_P = d_e(P_i, P_j) * D / P_max
    d_A = d_e(A_i, A_j) * D / A_max
    d_M = mode-graph shortest path
    d   = || (d_P, d_A, d_M) ||

``P_max`` / ``A_max`` / ``tau`` are the largest pairwise distances seen
between the profiling runs themselves; liveliness is violated at ``t``
when the test state is farther than ``tau`` from *every* profiling run
(Equation 1 of the paper).

Calibration note: the paper's profiling runs differ because of genuine
OS-level non-determinism.  The reproduction's runs differ only through
sensor-noise seeds, which would make ``P_max`` / ``A_max`` / ``tau``
unrealistically tight and turn benign degraded-but-live behaviour into
false positives (the paper reports none).  The monitor therefore applies
configurable floors to the normalisation constants; the defaults allow a
few metres of position slack, which is far below the tens-of-metres
deviations of a real fly-away.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.modegraph import ModeGraph
from repro.core.runner import RunResult, TraceSample
from repro.firmware.modes import OperatingModeLabel
from repro.sim.state import euclidean_distance


@dataclass(frozen=True)
class LivelinessViolation:
    """A single violation of the liveliness rule."""

    time: float
    kind: str
    description: str
    mode_label: str
    distance: float = 0.0
    threshold: float = 0.0


#: Operating-mode labels treated as safe modes by default: the fail-safes
#: deliberately sacrifice liveliness in these modes, so the plain
#: liveliness rule is replaced by the per-mode progress invariants.
DEFAULT_SAFE_MODE_LABELS = frozenset(
    {OperatingModeLabel.RTL, OperatingModeLabel.LAND, OperatingModeLabel.LANDED}
)


#: One tolerance window: (start, end) simulation times, inclusive.
ToleranceWindow = Tuple[float, float]


def time_in_windows(time: float, windows: Sequence[ToleranceWindow]) -> bool:
    """True when ``time`` falls inside any of ``windows``."""
    return any(start <= time <= end for start, end in windows)


def rtl_progress_violation(
    past: TraceSample, current: TraceSample, progress_threshold: float
) -> Optional[str]:
    """Evaluate the return-to-launch progress invariant over one window.

    Progress in RTL means approaching the launch site, climbing toward the
    return altitude, or descending for the final approach once the vehicle
    is already over the launch point.  A vehicle that is clearly *receding*
    from the launch site is always a violation (that is the fly-away
    signature), even if its altitude happens to be changing.

    Returns a description of the violation, or ``None`` when the window
    shows acceptable progress.
    """

    def home_distance(sample: TraceSample) -> float:
        return math.hypot(sample.position[0], sample.position[1])

    approach = home_distance(past) - home_distance(current)
    altitude_change = current.altitude - past.altitude
    receding = approach <= -3.0
    near_home = home_distance(current) <= 8.0
    descending_over_home = -altitude_change >= progress_threshold and near_home
    made_progress = (
        approach >= progress_threshold
        or altitude_change >= progress_threshold
        or descending_over_home
        # A vehicle already over the launch site has, by definition, made
        # its way back; only receding from it is a violation there.
        or near_home
    )
    if receding or not made_progress:
        return (
            "no progress toward the launch site while in the return-to-launch "
            f"fail-safe (approach {approach:.2f} m, altitude change "
            f"{altitude_change:.2f} m)"
        )
    return None


@dataclass
class LivelinessCalibration:
    """Normalisation constants derived from the profiling runs."""

    position_scale: float
    acceleration_scale: float
    threshold: float
    diameter: int

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"P={self.position_scale:.2f} m, A={self.acceleration_scale:.2f} m/s^2, "
            f"tau={self.threshold:.3f}, D={self.diameter}"
        )


class LivelinessMonitor:
    """Compares test runs against profiling runs per Equation 1."""

    #: Window (seconds) over which the safe-mode progress invariants are
    #: evaluated.
    PROGRESS_WINDOW_S = 6.0
    #: Minimum descent (metres) expected over the window while landing.
    LAND_PROGRESS_M = 0.5
    #: Minimum approach toward home (metres) expected over the window
    #: while returning to launch (or, equivalently, climb toward the RTL
    #: altitude).
    RTL_PROGRESS_M = 1.0

    def __init__(
        self,
        profiling_runs: Sequence[RunResult],
        mode_graph: Optional[ModeGraph] = None,
        safe_mode_labels: Optional[Set[str]] = None,
        min_position_scale: float = 5.0,
        min_acceleration_scale: float = 2.0,
        min_threshold: float = 1.5,
        alignment_window_s: float = 1.5,
    ) -> None:
        if not profiling_runs:
            raise ValueError("at least one profiling run is required")
        self._profiles = [run.trace for run in profiling_runs]
        self._alignment_window_s = alignment_window_s
        self._mode_graph = (
            mode_graph
            if mode_graph is not None
            else ModeGraph.from_profiling_runs([run.mode_transitions for run in profiling_runs])
        )
        self._safe_labels = (
            set(safe_mode_labels) if safe_mode_labels is not None else set(DEFAULT_SAFE_MODE_LABELS)
        )
        self._min_position_scale = min_position_scale
        self._min_acceleration_scale = min_acceleration_scale
        self._min_threshold = min_threshold
        self._calibration = self._calibrate()

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    @property
    def calibration(self) -> LivelinessCalibration:
        """The normalisation constants in use."""
        return self._calibration

    @property
    def mode_graph(self) -> ModeGraph:
        """The mode graph built from the profiling runs."""
        return self._mode_graph

    @property
    def safe_mode_labels(self) -> Set[str]:
        """Labels treated as safe modes."""
        return set(self._safe_labels)

    def add_safe_mode(self, label: str) -> None:
        """Allow developers to declare an additional safe mode."""
        self._safe_labels.add(label)

    def _profile_sample(self, profile: List[TraceSample], index: int) -> TraceSample:
        """Profiling sample at ``index``, repeating the last state (padding)."""
        if index < len(profile):
            return profile[index]
        return profile[-1]

    def _max_index(self) -> int:
        return max(len(profile) for profile in self._profiles)

    def _calibrate(self) -> LivelinessCalibration:
        diameter = self._mode_graph.diameter
        position_scale = 0.0
        acceleration_scale = 0.0
        length = self._max_index()
        for i in range(len(self._profiles)):
            for j in range(i + 1, len(self._profiles)):
                for index in range(length):
                    sample_i = self._profile_sample(self._profiles[i], index)
                    sample_j = self._profile_sample(self._profiles[j], index)
                    position_scale = max(
                        position_scale,
                        euclidean_distance(sample_i.position, sample_j.position),
                    )
                    acceleration_scale = max(
                        acceleration_scale,
                        euclidean_distance(sample_i.acceleration, sample_j.acceleration),
                    )
        position_scale = max(position_scale, self._min_position_scale)
        acceleration_scale = max(acceleration_scale, self._min_acceleration_scale)

        threshold = 0.0
        for i in range(len(self._profiles)):
            for j in range(i + 1, len(self._profiles)):
                for index in range(length):
                    sample_i = self._profile_sample(self._profiles[i], index)
                    sample_j = self._profile_sample(self._profiles[j], index)
                    threshold = max(
                        threshold,
                        self._state_distance(
                            sample_i, sample_j, position_scale, acceleration_scale, diameter
                        ),
                    )
        threshold = max(threshold, self._min_threshold)
        return LivelinessCalibration(
            position_scale=position_scale,
            acceleration_scale=acceleration_scale,
            threshold=threshold,
            diameter=diameter,
        )

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def _state_distance(
        self,
        a: TraceSample,
        b: TraceSample,
        position_scale: float,
        acceleration_scale: float,
        diameter: int,
    ) -> float:
        d_position = (
            euclidean_distance(a.position, b.position) * diameter / position_scale
        )
        d_acceleration = (
            euclidean_distance(a.acceleration, b.acceleration)
            * diameter
            / acceleration_scale
        )
        d_mode = self._mode_graph.distance(a.mode_label, b.mode_label)
        return math.sqrt(d_position ** 2 + d_acceleration ** 2 + d_mode ** 2)

    def state_distance(self, a: TraceSample, b: TraceSample) -> float:
        """Public normalised state distance (used by tests and analysis)."""
        calibration = self._calibration
        return self._state_distance(
            a,
            b,
            calibration.position_scale,
            calibration.acceleration_scale,
            calibration.diameter,
        )

    def _alignment_window_samples(self) -> int:
        """The +/- sample-index tolerance used when comparing to profiles.

        The paper's profiling runs differ through genuine OS-level timing
        jitter, which their tau absorbs; the reproduction's runs are nearly
        deterministic, so instead the comparison tolerates a small time
        offset.  A fail-over that delays a mode transition by a second is
        live; a fly-away diverges far beyond any +/- 1.5 s alignment.
        """
        if len(self._profiles[0]) < 2:
            return 0
        sample_period = self._profiles[0][1].time - self._profiles[0][0].time
        if sample_period <= 0.0:
            return 0
        return max(int(self._alignment_window_s / sample_period), 0)

    def distance_to_profiles(self, sample: TraceSample) -> float:
        """The minimum distance from ``sample`` to any profiling run.

        The minimum is taken over every profiling run and over sample
        indices within the alignment window of the test sample's index.
        """
        window = self._alignment_window_samples()
        best = float("inf")
        for profile in self._profiles:
            for index in range(sample.index - window, sample.index + window + 1):
                if index < 0:
                    continue
                distance = self.state_distance(sample, self._profile_sample(profile, index))
                if distance < best:
                    best = distance
        return best

    # ------------------------------------------------------------------
    # Violation checks
    # ------------------------------------------------------------------
    def is_safe_mode(self, label: str) -> bool:
        """True when ``label`` is one of the declared safe modes."""
        return label in self._safe_labels

    def check_sample(self, sample: TraceSample) -> Optional[LivelinessViolation]:
        """Equation 1 applied to one trace sample (online use)."""
        if self.is_safe_mode(sample.mode_label):
            return None
        if sample.on_ground and not sample.armed:
            # Refusing to fly (failed pre-arm checks, post-failsafe disarm)
            # preserves safety at the expense of liveliness; not a bug.
            return None
        distance = self.distance_to_profiles(sample)
        if distance > self._calibration.threshold:
            return LivelinessViolation(
                time=sample.time,
                kind="liveliness",
                description=(
                    f"state diverged from every profiling run "
                    f"(distance {distance:.2f} > tau {self._calibration.threshold:.2f})"
                ),
                mode_label=sample.mode_label,
                distance=distance,
                threshold=self._calibration.threshold,
            )
        return None

    def evaluate(
        self,
        result: RunResult,
        tolerance_windows: Sequence[ToleranceWindow] = (),
    ) -> List[LivelinessViolation]:
        """Offline evaluation of a completed run (Equation 1 + safe modes).

        ``tolerance_windows`` are the recovery-tolerance spans of the
        run's intermittent faults: a divergence inside one is expected
        degraded-but-recovering behaviour, not a violation, so the scan
        skips those samples and keeps judging afterwards -- divergence
        that *persists* beyond the window is still flagged instead of
        the whole run latching on the transient.
        """
        violations: List[LivelinessViolation] = []
        for sample in result.trace:
            if time_in_windows(sample.time, tolerance_windows):
                continue
            violation = self.check_sample(sample)
            if violation is not None:
                violations.append(violation)
                break  # first divergence is enough; later samples add noise
        violations.extend(
            self.check_safe_mode_progress(result.trace, tolerance_windows)
        )
        return violations

    def check_safe_mode_progress(
        self,
        samples: List[TraceSample],
        tolerance_windows: Sequence[ToleranceWindow] = (),
    ) -> List[LivelinessViolation]:
        """Additional invariants for safe modes (Section IV-C-2).

        A vehicle in the land mode must keep descending; a vehicle in the
        return-to-launch mode must keep approaching home (or climbing to
        its return altitude).  Violations of these are how fly-aways that
        hide inside a fail-safe mode are caught.  The rule is calibration
        free, so it applies to any vehicle's trace -- fleet followers
        included.  Samples inside a recovery ``tolerance_windows`` span
        are not judged (see :meth:`evaluate`).
        """
        violations: List[LivelinessViolation] = []
        if len(samples) < 2:
            return violations
        sample_period = samples[1].time - samples[0].time
        if sample_period <= 0.0:
            return violations
        window = max(int(self.PROGRESS_WINDOW_S / sample_period), 2)

        land_flagged = False
        rtl_flagged = False
        for index in range(window, len(samples)):
            current = samples[index]
            past = samples[index - window]
            if time_in_windows(current.time, tolerance_windows):
                continue
            if any(
                item.mode_label != current.mode_label
                for item in samples[index - window : index + 1]
            ):
                continue
            if current.on_ground:
                continue
            if current.mode_label == OperatingModeLabel.LAND and not land_flagged:
                descent = past.altitude - current.altitude
                if descent < self.LAND_PROGRESS_M:
                    land_flagged = True
                    violations.append(
                        LivelinessViolation(
                            time=current.time,
                            kind="safe-mode-progress",
                            description=(
                                "no descent progress while in the land fail-safe "
                                f"({descent:.2f} m over {self.PROGRESS_WINDOW_S:.0f} s)"
                            ),
                            mode_label=current.mode_label,
                        )
                    )
            elif current.mode_label == OperatingModeLabel.RTL and not rtl_flagged:
                description = rtl_progress_violation(past, current, self.RTL_PROGRESS_M)
                if description is not None:
                    rtl_flagged = True
                    violations.append(
                        LivelinessViolation(
                            time=current.time,
                            kind="safe-mode-progress",
                            description=(
                                f"{description} over {self.PROGRESS_WINDOW_S:.0f} s"
                            ),
                            mode_label=current.mode_label,
                        )
                    )
        return violations
