"""Avis's own search strategy: SABRE plus redundancy pruning."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.sabre import SabreSearch
from repro.core.session import ExplorationSession
from repro.core.strategies.base import SearchStrategy, StrategyFeatures
from repro.sensors.base import SensorId


class AvisStrategy(SearchStrategy):
    """The paper's approach (column "Avis" of Table I)."""

    name = "avis"
    features = StrategyFeatures(
        targets_mode_transitions=True,
        uses_prior_bugs=True,
        searches_dissimilar_first=True,
    )

    def __init__(
        self,
        failures: Optional[Sequence[SensorId]] = None,
        max_concurrent_failures: int = 2,
        time_quantum_s: float = 1.0,
        max_scenarios_per_dequeue: Optional[int] = 6,
    ) -> None:
        self._failures = failures
        self._max_concurrent = max_concurrent_failures
        self._time_quantum = time_quantum_s
        self._per_dequeue = max_scenarios_per_dequeue
        self.last_search: Optional[SabreSearch] = None

    def explore(self, session: ExplorationSession) -> None:
        search = SabreSearch(
            session=session,
            failures=self._failures,
            max_concurrent_failures=self._max_concurrent,
            time_quantum_s=self._time_quantum,
            max_scenarios_per_dequeue=self._per_dequeue,
        )
        self.last_search = search
        search.run()
