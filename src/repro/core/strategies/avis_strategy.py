"""Avis's own search strategy: SABRE plus redundancy pruning."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.sabre import SabreSearch
from repro.core.session import ExplorationSession
from repro.core.strategies.base import SearchStrategy, StrategyFeatures
from repro.hinj.faults import FailureHandle, FaultScenario, validate_burst_durations
from repro.sensors.base import SensorId


class AvisStrategy(SearchStrategy):
    """The paper's approach (column "Avis" of Table I).

    Supports the campaign engine's batch protocol: each transition
    dequeue expands into up to ``max_scenarios_per_dequeue`` independent
    candidate scenarios that are simulated concurrently, with feedback
    (found-bug pruning, queue re-seeding) consumed between proposal
    rounds in the sequential order -- so a batched campaign is
    bit-identical to the sequential ``explore()`` loop at every budget
    (see :mod:`repro.core.sabre` for the machinery).

    Extensions (all default off, so classic campaigns are untouched):
    ``include_traffic_faults`` adds the session's opted-in coordination
    failures (beacon dropout/freeze/delay) to the fault space alongside
    the sensor instances, ``separation_aware`` switches the transition
    dequeue to tightest-profiled-geometry-first ordering, and
    ``burst_durations`` enumerates intermittent (recovering) variants of
    every failure subset next to the latched ones -- the fault window
    opens at the transition-anchored injection time and closes after
    the configured duration.
    """

    name = "avis"
    features = StrategyFeatures(
        targets_mode_transitions=True,
        uses_prior_bugs=True,
        searches_dissimilar_first=True,
    )

    def __init__(
        self,
        failures: Optional[Sequence[FailureHandle]] = None,
        max_concurrent_failures: int = 2,
        time_quantum_s: float = 1.0,
        max_scenarios_per_dequeue: Optional[int] = 6,
        include_traffic_faults: bool = False,
        separation_aware: bool = False,
        burst_durations: Sequence[float] = (),
    ) -> None:
        self._failures = failures
        self._max_concurrent = max_concurrent_failures
        self._time_quantum = time_quantum_s
        self._per_dequeue = max_scenarios_per_dequeue
        self._include_traffic = include_traffic_faults
        self._separation_aware = separation_aware
        self._burst_durations = validate_burst_durations(burst_durations)
        self.last_search: Optional[SabreSearch] = None

    def _make_search(self, session: ExplorationSession) -> SabreSearch:
        failures = self._failures
        if self._include_traffic:
            if failures is None:
                failures = session.injectable_failures
            else:
                # An explicit failure list still gains the session's
                # coordination handles (without duplicates): asking for
                # traffic faults must never be silently ignored.
                failures = list(failures) + [
                    handle
                    for handle in session.traffic_failures
                    if handle not in failures
                ]
        return SabreSearch(
            session=session,
            failures=failures,
            max_concurrent_failures=self._max_concurrent,
            time_quantum_s=self._time_quantum,
            max_scenarios_per_dequeue=self._per_dequeue,
            separation_aware=self._separation_aware,
            burst_durations=self._burst_durations,
        )

    def explore(self, session: ExplorationSession) -> None:
        search = self._make_search(session)
        self.last_search = search
        search.run()

    def propose_batch(
        self, session: ExplorationSession, max_scenarios: int
    ) -> Optional[List[FaultScenario]]:
        """Expand the next transition dequeue(s) into a concurrent batch.

        The search machine is created on first use and keyed to the
        session, so a strategy instance reused for a second campaign
        restarts its queue rather than resuming the first campaign's.
        All budget charging happens inside the machine, per candidate,
        in the sequential loop's order.
        """
        search = self.last_search
        if search is None or search.session is not session:
            search = self._make_search(session)
            self.last_search = search
        return search.propose_batch(max_scenarios)
