"""The naive exhaustive orders of Section IV-B: depth-first and breadth-first.

The paper walks through both on the Figure 5 example (two sensors, five
time-steps) to show why neither reaches dissimilar scenarios quickly:
depth-first stays at the end of the run varying which sensors fail, while
breadth-first re-runs the same whole-run failure at slightly different
start times.  Both are implemented here twice over:

* as pure *enumerators* (`enumerate_scenarios`) so the Figure 5 benchmark
  can print the exact search orders the paper lists, and
* as budget-driven strategies so they can be run head-to-head with the
  other approaches.

Scenario representation note: the paper writes a scenario as the vector
``<F1 ... F5>`` of failed-sensor sets per time-step.  With clean (never
recovering) failures that vector is equivalent to assigning each failed
sensor its first failure time, which is how
:class:`~repro.hinj.faults.FaultScenario` stores it.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.session import ExplorationSession
from repro.core.strategies.base import SearchStrategy, StrategyFeatures
from repro.hinj.faults import FaultScenario, FaultSpec
from repro.sensors.base import SensorId


def _non_empty_subsets(sensors: Sequence[SensorId]) -> List[Tuple[SensorId, ...]]:
    subsets: List[Tuple[SensorId, ...]] = []
    for size in range(1, len(sensors) + 1):
        subsets.extend(itertools.combinations(sensors, size))
    return subsets


class _EnumerationStrategy(SearchStrategy):
    """Shared budget-driven loop over a fixed enumeration order.

    The enumeration order is a pure function of the sensor set and the
    time grid, so batches of consecutive scenarios are independent and
    the search is embarrassingly parallel: :meth:`propose_batch` simply
    hands the engine the next slice of the enumeration.
    """

    def __init__(self, time_step_s: float = 1.0) -> None:
        self._time_step = time_step_s
        self._scenario_iter: Optional[Iterator[FaultScenario]] = None
        self._iter_session: Optional[ExplorationSession] = None
        self.simulations_run = 0

    @staticmethod
    def enumerate_scenarios(
        sensors: Sequence[SensorId], times: Sequence[float]
    ) -> Iterator[FaultScenario]:
        raise NotImplementedError

    def _times(self, session: ExplorationSession) -> List[float]:
        duration = session.mission_duration
        return [
            round(index * self._time_step, 3)
            for index in range(int(duration / self._time_step) + 1)
        ]

    def _ensure_iterator(self, session: ExplorationSession) -> Iterator[FaultScenario]:
        # The enumeration cursor is per-session: a strategy instance
        # reused for another campaign restarts from the top with that
        # campaign's sensors and time grid.
        if self._scenario_iter is None or self._iter_session is not session:
            self._iter_session = session
            self._scenario_iter = self.enumerate_scenarios(
                session.sensor_ids, self._times(session)
            )
        return self._scenario_iter

    def explore(self, session: ExplorationSession) -> None:
        for scenario in self._ensure_iterator(session):
            if session.budget.exhausted:
                return
            if scenario.is_empty or session.was_explored(scenario):
                continue
            result = session.run_scenario(scenario)
            if result is None:
                return
            self.simulations_run += 1

    def propose_batch(
        self, session: ExplorationSession, max_scenarios: int
    ) -> Optional[List[FaultScenario]]:
        """The next ``max_scenarios`` unexplored scenarios in search order."""
        iterator = self._ensure_iterator(session)
        batch: List[FaultScenario] = []
        seen: Set[FaultScenario] = set()
        for scenario in iterator:
            if session.budget.exhausted:
                break
            if scenario.is_empty or session.was_explored(scenario) or scenario in seen:
                continue
            if not session.reserve_simulation():
                break
            seen.add(scenario)
            batch.append(scenario)
            if len(batch) >= max_scenarios:
                break
        return batch


class DepthFirstSearch(_EnumerationStrategy):
    """Depth-first enumeration: latest injection times first."""

    name = "depth-first"
    features = StrategyFeatures(
        targets_mode_transitions=False,
        uses_prior_bugs=False,
        searches_dissimilar_first=False,
    )

    @staticmethod
    def enumerate_scenarios(
        sensors: Sequence[SensorId], times: Sequence[float]
    ) -> Iterator[FaultScenario]:
        """The DFS order of Section IV-B: vary the tail of the run first.

        The first scenario is the fault-free run; then every subset of
        sensors failed at the last time-step, then the last two, and so
        on -- matching the sequence listed in the paper.
        """
        yield FaultScenario()
        subsets = _non_empty_subsets(sensors)
        for start_index in range(len(times) - 1, -1, -1):
            start_time = times[start_index]
            for subset in subsets:
                yield FaultScenario(FaultSpec(sensor_id, start_time) for sensor_id in subset)


class BreadthFirstSearch(_EnumerationStrategy):
    """Breadth-first enumeration: whole-run failures first, then later starts."""

    name = "breadth-first"
    features = StrategyFeatures(
        targets_mode_transitions=False,
        uses_prior_bugs=False,
        searches_dissimilar_first=False,
    )

    @staticmethod
    def enumerate_scenarios(
        sensors: Sequence[SensorId], times: Sequence[float]
    ) -> Iterator[FaultScenario]:
        """The BFS order of Section IV-B.

        After the fault-free run, every sensor subset is failed for the
        whole run (start at the first time-step), then every subset from
        the second time-step onward, and so on, sweeping the start time
        forward -- matching the listed sequence (``{GPS}`` for the whole
        run, ``{Baro}`` for the whole run, ``{GPS, Baro}``, then the same
        subsets starting one step later, ...).
        """
        yield FaultScenario()
        subsets = _non_empty_subsets(sensors)
        for start_time in times:
            for subset in subsets:
                yield FaultScenario(FaultSpec(sensor_id, start_time) for sensor_id in subset)
