"""Bayesian Fault Injection (BFI), the state-of-the-art baseline.

The paper compares against BFI (Jha et al., DSN 2019): a learned model
predicts which candidate injection sites are likely to produce unsafe
conditions and only those are simulated.  Two properties matter for the
comparison:

* the model is only as good as its training data -- it predicts unsafe
  conditions for (sensor, flight-phase) combinations it has seen before
  and misses bugs outside that distribution (e.g. unsafe conditions
  during landing, or joint multi-sensor failures);
* labelling is not free -- the paper measured ~10 s per site, so BFI
  running over a depth-first candidate enumeration burns nearly the whole
  budget labelling sites near the end of the mission and "was unable to
  explore even a single second of data".

The model here is a naive-Bayes classifier over two categorical features
(sensor type and mode category) with Laplace smoothing.  The default
training data reconstructs the prior-incident distribution implied by the
paper's results: accelerometer/takeoff, compass/waypoint, gyro/waypoint
and gyro/takeoff incidents are in-distribution; GPS/barometer/battery
failures and the landing phase are not.
"""

from __future__ import annotations

import itertools
import random
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.session import ExplorationSession
from repro.core.strategies.base import SearchStrategy, StrategyFeatures
from repro.hinj.faults import FaultScenario, FaultSpec
from repro.sensors.base import SensorId, SensorType


@dataclass(frozen=True)
class TrainingExample:
    """One historical observation: did this failure context end unsafely?"""

    sensor_type: SensorType
    mode_category: str
    unsafe: bool


def default_training_data() -> List[TrainingExample]:
    """Prior incidents the BFI model is trained on.

    Reconstructed from the paper's observations about which bugs the
    learned approaches could and could not predict: the training set has
    seen unsafe outcomes from accelerometer failures during takeoff and
    from compass/gyroscope failures during waypoint flight (plus a gyro
    incident during takeoff), and benign outcomes elsewhere.  Crucially it
    contains no landing-phase incidents and no joint-failure incidents,
    which is why BFI and Stratified BFI miss those bugs (Sections VI-A
    and VI-C).
    """
    positives = [
        (SensorType.ACCELEROMETER, "takeoff"),
        (SensorType.ACCELEROMETER, "takeoff"),
        (SensorType.COMPASS, "waypoint"),
        (SensorType.COMPASS, "waypoint"),
        (SensorType.GYROSCOPE, "waypoint"),
        (SensorType.GYROSCOPE, "takeoff"),
    ]
    negatives = [
        (SensorType.GPS, "takeoff"),
        (SensorType.GPS, "waypoint"),
        (SensorType.GPS, "land"),
        (SensorType.BAROMETER, "takeoff"),
        (SensorType.BAROMETER, "waypoint"),
        (SensorType.BAROMETER, "land"),
        (SensorType.BATTERY, "waypoint"),
        (SensorType.BATTERY, "land"),
        (SensorType.COMPASS, "takeoff"),
        (SensorType.COMPASS, "takeoff"),
        (SensorType.COMPASS, "takeoff"),
        (SensorType.COMPASS, "land"),
        (SensorType.GYROSCOPE, "land"),
        (SensorType.ACCELEROMETER, "waypoint"),
        (SensorType.ACCELEROMETER, "land"),
        (SensorType.GPS, "manual"),
        (SensorType.BAROMETER, "manual"),
        (SensorType.COMPASS, "manual"),
        (SensorType.GYROSCOPE, "manual"),
        (SensorType.ACCELEROMETER, "manual"),
        (SensorType.BATTERY, "manual"),
    ]
    examples = [TrainingExample(sensor, mode, True) for sensor, mode in positives]
    examples.extend(TrainingExample(sensor, mode, False) for sensor, mode in negatives)
    return examples


class BfiModel:
    """Naive-Bayes predictor over (sensor type, mode category)."""

    def __init__(
        self,
        training_data: Optional[Iterable[TrainingExample]] = None,
        smoothing: float = 1.0,
    ) -> None:
        self._smoothing = smoothing
        self._sensor_counts: Dict[bool, Dict[SensorType, float]] = {
            True: defaultdict(float),
            False: defaultdict(float),
        }
        self._mode_counts: Dict[bool, Dict[str, float]] = {
            True: defaultdict(float),
            False: defaultdict(float),
        }
        self._class_counts: Dict[bool, float] = {True: 0.0, False: 0.0}
        self._sensor_vocabulary: set = set()
        self._mode_vocabulary: set = set()
        for example in training_data if training_data is not None else default_training_data():
            self.observe(example)

    def observe(self, example: TrainingExample) -> None:
        """Add one training example to the model."""
        label = example.unsafe
        self._class_counts[label] += 1.0
        self._sensor_counts[label][example.sensor_type] += 1.0
        self._mode_counts[label][example.mode_category] += 1.0
        self._sensor_vocabulary.add(example.sensor_type)
        self._mode_vocabulary.add(example.mode_category)

    def _likelihood(
        self, counts: Dict, value, label: bool, vocabulary_size: int
    ) -> float:
        numerator = counts[label][value] + self._smoothing
        denominator = self._class_counts[label] + self._smoothing * max(vocabulary_size, 1)
        return numerator / denominator

    def predict_unsafe_probability(
        self, sensor_type: SensorType, mode_category: str
    ) -> float:
        """P(unsafe | sensor type, mode category) under naive Bayes."""
        total = self._class_counts[True] + self._class_counts[False]
        if total == 0.0:
            return 0.5
        scores: Dict[bool, float] = {}
        for label in (True, False):
            prior = (self._class_counts[label] + self._smoothing) / (
                total + 2.0 * self._smoothing
            )
            score = prior
            score *= self._likelihood(
                self._sensor_counts, sensor_type, label, len(self._sensor_vocabulary)
            )
            score *= self._likelihood(
                self._mode_counts, mode_category, label, len(self._mode_vocabulary)
            )
            scores[label] = score
        denominator = scores[True] + scores[False]
        return scores[True] / denominator if denominator > 0.0 else 0.5

    def predicts_unsafe(
        self, sensor_type: SensorType, mode_category: str, threshold: float = 0.4
    ) -> bool:
        """True when the model labels the site as likely unsafe."""
        return self.predict_unsafe_probability(sensor_type, mode_category) >= threshold

    def scenario_score(self, scenario_types: Sequence[SensorType], mode_category: str) -> float:
        """Score a multi-sensor scenario as the max of its per-sensor scores.

        The published BFI model scores individual fault sites; a joint
        scenario is only predicted unsafe when one of its constituent
        failures already is -- which is exactly why it cannot anticipate
        bugs that require *both* failures together (PX4-13291).
        """
        if not scenario_types:
            return 0.0
        return max(
            self.predict_unsafe_probability(sensor_type, mode_category)
            for sensor_type in scenario_types
        )


class BayesianFaultInjection(SearchStrategy):
    """BFI over a depth-first candidate enumeration (column "BFI")."""

    name = "bfi"
    features = StrategyFeatures(
        targets_mode_transitions=False,
        uses_prior_bugs=True,
        searches_dissimilar_first=False,
    )

    def __init__(
        self,
        model: Optional[BfiModel] = None,
        candidate_granularity_s: float = 0.1,
        threshold: float = 0.4,
        exploration_rate: float = 0.02,
        rng_seed: int = 7,
        max_concurrent_failures: int = 1,
    ) -> None:
        self._model = model if model is not None else BfiModel()
        self._granularity = candidate_granularity_s
        self._threshold = threshold
        self._exploration_rate = exploration_rate
        self._rng = random.Random(rng_seed)
        self._max_concurrent = max_concurrent_failures
        self.labels_issued = 0
        self.simulations_run = 0

    # ------------------------------------------------------------------
    # Candidate enumeration (depth-first, from the end of the mission)
    # ------------------------------------------------------------------
    def _candidate_times(self, session: ExplorationSession) -> List[float]:
        duration = session.mission_duration
        times: List[float] = []
        time = duration
        while time > 0.0:
            times.append(round(time, 3))
            time -= self._granularity
        return times

    def _candidate_subsets(self, session: ExplorationSession) -> List[Tuple[SensorId, ...]]:
        sensors = session.sensor_ids
        subsets: List[Tuple[SensorId, ...]] = []
        for size in range(1, self._max_concurrent + 1):
            subsets.extend(itertools.combinations(sensors, size))
        return subsets

    # ------------------------------------------------------------------
    # Exploration
    # ------------------------------------------------------------------
    def explore(self, session: ExplorationSession) -> None:
        subsets = self._candidate_subsets(session)
        for time in self._candidate_times(session):
            mode_category = session.mode_category_at(time)
            for subset in subsets:
                if session.budget.exhausted:
                    return
                if not session.charge_label():
                    return
                self.labels_issued += 1
                score = self._model.scenario_score(
                    [sensor_id.sensor_type for sensor_id in subset], mode_category
                )
                predicted_unsafe = score >= self._threshold
                explore_anyway = self._rng.random() < self._exploration_rate
                if not predicted_unsafe and not explore_anyway:
                    continue
                scenario = FaultScenario(
                    FaultSpec(sensor_id, time) for sensor_id in subset
                )
                result = session.run_scenario(scenario)
                if result is None:
                    return
                self.simulations_run += 1
