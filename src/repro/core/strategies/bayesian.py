"""Bayesian Fault Injection (BFI), the state-of-the-art baseline.

The paper compares against BFI (Jha et al., DSN 2019): a learned model
predicts which candidate injection sites are likely to produce unsafe
conditions and only those are simulated.  Two properties matter for the
comparison:

* the model is only as good as its training data -- it predicts unsafe
  conditions for (sensor, flight-phase) combinations it has seen before
  and misses bugs outside that distribution (e.g. unsafe conditions
  during landing, or joint multi-sensor failures);
* labelling is not free -- the paper measured ~10 s per site, so BFI
  running over a depth-first candidate enumeration burns nearly the whole
  budget labelling sites near the end of the mission and "was unable to
  explore even a single second of data".

The model here is a naive-Bayes classifier over two categorical features
(sensor type and mode category) with Laplace smoothing.  The default
training data reconstructs the prior-incident distribution implied by the
paper's results: accelerometer/takeoff, compass/waypoint, gyro/waypoint
and gyro/takeoff incidents are in-distribution; GPS/barometer/battery
failures and the landing phase are not.
"""

from __future__ import annotations

import itertools
import random
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.runner import RunResult
from repro.core.session import ExplorationSession
from repro.core.strategies.base import SearchStrategy, StrategyFeatures
from repro.hinj.faults import (
    FaultScenario,
    FaultSpec,
    admissible_burst_windows,
    validate_burst_durations,
)
from repro.sensors.base import SensorId, SensorType


@dataclass(frozen=True)
class TrainingExample:
    """One historical observation: did this failure context end unsafely?"""

    sensor_type: SensorType
    mode_category: str
    unsafe: bool


def default_training_data() -> List[TrainingExample]:
    """Prior incidents the BFI model is trained on.

    Reconstructed from the paper's observations about which bugs the
    learned approaches could and could not predict: the training set has
    seen unsafe outcomes from accelerometer failures during takeoff and
    from compass/gyroscope failures during waypoint flight (plus a gyro
    incident during takeoff), and benign outcomes elsewhere.  Crucially it
    contains no landing-phase incidents and no joint-failure incidents,
    which is why BFI and Stratified BFI miss those bugs (Sections VI-A
    and VI-C).
    """
    positives = [
        (SensorType.ACCELEROMETER, "takeoff"),
        (SensorType.ACCELEROMETER, "takeoff"),
        (SensorType.COMPASS, "waypoint"),
        (SensorType.COMPASS, "waypoint"),
        (SensorType.GYROSCOPE, "waypoint"),
        (SensorType.GYROSCOPE, "takeoff"),
    ]
    negatives = [
        (SensorType.GPS, "takeoff"),
        (SensorType.GPS, "waypoint"),
        (SensorType.GPS, "land"),
        (SensorType.BAROMETER, "takeoff"),
        (SensorType.BAROMETER, "waypoint"),
        (SensorType.BAROMETER, "land"),
        (SensorType.BATTERY, "waypoint"),
        (SensorType.BATTERY, "land"),
        (SensorType.COMPASS, "takeoff"),
        (SensorType.COMPASS, "takeoff"),
        (SensorType.COMPASS, "takeoff"),
        (SensorType.COMPASS, "land"),
        (SensorType.GYROSCOPE, "land"),
        (SensorType.ACCELEROMETER, "waypoint"),
        (SensorType.ACCELEROMETER, "land"),
        (SensorType.GPS, "manual"),
        (SensorType.BAROMETER, "manual"),
        (SensorType.COMPASS, "manual"),
        (SensorType.GYROSCOPE, "manual"),
        (SensorType.ACCELEROMETER, "manual"),
        (SensorType.BATTERY, "manual"),
    ]
    examples = [TrainingExample(sensor, mode, True) for sensor, mode in positives]
    examples.extend(TrainingExample(sensor, mode, False) for sensor, mode in negatives)
    return examples


class BfiModel:
    """Naive-Bayes predictor over (sensor type, mode category)."""

    def __init__(
        self,
        training_data: Optional[Iterable[TrainingExample]] = None,
        smoothing: float = 1.0,
    ) -> None:
        self._smoothing = smoothing
        self._sensor_counts: Dict[bool, Dict[SensorType, float]] = {
            True: defaultdict(float),
            False: defaultdict(float),
        }
        self._mode_counts: Dict[bool, Dict[str, float]] = {
            True: defaultdict(float),
            False: defaultdict(float),
        }
        self._class_counts: Dict[bool, float] = {True: 0.0, False: 0.0}
        self._sensor_vocabulary: set = set()
        self._mode_vocabulary: set = set()
        for example in training_data if training_data is not None else default_training_data():
            self.observe(example)

    def observe(self, example: TrainingExample) -> None:
        """Add one training example to the model."""
        label = example.unsafe
        self._class_counts[label] += 1.0
        self._sensor_counts[label][example.sensor_type] += 1.0
        self._mode_counts[label][example.mode_category] += 1.0
        self._sensor_vocabulary.add(example.sensor_type)
        self._mode_vocabulary.add(example.mode_category)

    def _likelihood(
        self, counts: Dict, value, label: bool, vocabulary_size: int
    ) -> float:
        numerator = counts[label][value] + self._smoothing
        denominator = self._class_counts[label] + self._smoothing * max(vocabulary_size, 1)
        return numerator / denominator

    def predict_unsafe_probability(
        self, sensor_type: SensorType, mode_category: str
    ) -> float:
        """P(unsafe | sensor type, mode category) under naive Bayes."""
        total = self._class_counts[True] + self._class_counts[False]
        if total == 0.0:
            return 0.5
        scores: Dict[bool, float] = {}
        for label in (True, False):
            prior = (self._class_counts[label] + self._smoothing) / (
                total + 2.0 * self._smoothing
            )
            score = prior
            score *= self._likelihood(
                self._sensor_counts, sensor_type, label, len(self._sensor_vocabulary)
            )
            score *= self._likelihood(
                self._mode_counts, mode_category, label, len(self._mode_vocabulary)
            )
            scores[label] = score
        denominator = scores[True] + scores[False]
        return scores[True] / denominator if denominator > 0.0 else 0.5

    def predicts_unsafe(
        self, sensor_type: SensorType, mode_category: str, threshold: float = 0.4
    ) -> bool:
        """True when the model labels the site as likely unsafe."""
        return self.predict_unsafe_probability(sensor_type, mode_category) >= threshold

    def scenario_score(self, scenario_types: Sequence[SensorType], mode_category: str) -> float:
        """Score a multi-sensor scenario as the max of its per-sensor scores.

        The published BFI model scores individual fault sites; a joint
        scenario is only predicted unsafe when one of its constituent
        failures already is -- which is exactly why it cannot anticipate
        bugs that require *both* failures together (PX4-13291).
        """
        if not scenario_types:
            return 0.0
        return max(
            self.predict_unsafe_probability(sensor_type, mode_category)
            for sensor_type in scenario_types
        )


class BayesianFaultInjection(SearchStrategy):
    """BFI over a depth-first candidate enumeration (column "BFI")."""

    name = "bfi"
    features = StrategyFeatures(
        targets_mode_transitions=False,
        uses_prior_bugs=True,
        searches_dissimilar_first=False,
    )

    def __init__(
        self,
        model: Optional[BfiModel] = None,
        candidate_granularity_s: float = 0.1,
        threshold: float = 0.4,
        exploration_rate: float = 0.02,
        rng_seed: int = 7,
        max_concurrent_failures: int = 1,
        learn_online: bool = False,
        burst_durations: Sequence[float] = (),
    ) -> None:
        self._model = model if model is not None else BfiModel()
        self._granularity = candidate_granularity_s
        self._threshold = threshold
        self._exploration_rate = exploration_rate
        self._rng = random.Random(rng_seed)
        self._max_concurrent = max_concurrent_failures
        # ``learn_online`` folds every simulated outcome back into the
        # model as a fresh training example.  The published BFI trains
        # offline only, so this is off by default.
        self._learn_online = learn_online
        # ``burst_durations`` sweeps intermittent variants of every
        # candidate after the latched ones (empty = the classic space).
        self._burst_durations = validate_burst_durations(burst_durations)
        self.labels_issued = 0
        self.simulations_run = 0
        # --- batch-proposal state (reset per session) -----------------
        self._batch_session: Optional[ExplorationSession] = None
        self._batch_stream: Optional[
            Iterator[Tuple[float, str, Tuple[SensorId, ...], Optional[float]]]
        ] = None
        self._batch_finished = False
        self._deferred_updates: List[
            Tuple[FaultScenario, Tuple[SensorId, ...], str]
        ] = []

    # ------------------------------------------------------------------
    # Candidate enumeration (depth-first, from the end of the mission)
    # ------------------------------------------------------------------
    def _candidate_times(self, session: ExplorationSession) -> List[float]:
        duration = session.mission_duration
        times: List[float] = []
        time = duration
        while time > 0.0:
            times.append(round(time, 3))
            time -= self._granularity
        return times

    def _candidate_subsets(self, session: ExplorationSession) -> List[Tuple[SensorId, ...]]:
        sensors = session.sensor_ids
        subsets: List[Tuple[SensorId, ...]] = []
        for size in range(1, self._max_concurrent + 1):
            subsets.extend(itertools.combinations(sensors, size))
        return subsets

    def _candidate_windows(
        self, session: ExplorationSession
    ) -> List[Optional[float]]:
        """Recovery windows swept per candidate site."""
        return admissible_burst_windows(
            self._burst_durations, session.mission_duration
        )

    # ------------------------------------------------------------------
    # Exploration
    # ------------------------------------------------------------------
    def _observe_outcome(
        self,
        subset: Tuple[SensorId, ...],
        mode_category: str,
        result: RunResult,
    ) -> None:
        """Fold one simulated outcome back into the model (learn_online)."""
        for sensor_id in subset:
            self._model.observe(
                TrainingExample(
                    sensor_type=sensor_id.sensor_type,
                    mode_category=mode_category,
                    unsafe=result.found_unsafe_condition,
                )
            )

    def explore(self, session: ExplorationSession) -> None:
        for time, mode_category, subset, duration in self._candidate_stream(session):
            if session.budget.exhausted:
                return
            if not session.charge_label():
                return
            self.labels_issued += 1
            score = self._model.scenario_score(
                [sensor_id.sensor_type for sensor_id in subset], mode_category
            )
            predicted_unsafe = score >= self._threshold
            explore_anyway = self._rng.random() < self._exploration_rate
            if not predicted_unsafe and not explore_anyway:
                continue
            scenario = FaultScenario(
                FaultSpec(sensor_id, time, duration) for sensor_id in subset
            )
            result = session.run_scenario(scenario)
            if result is None:
                return
            self.simulations_run += 1
            if self._learn_online:
                self._observe_outcome(subset, mode_category, result)

    # ------------------------------------------------------------------
    # Batch evaluation (the depth-first enumeration and the offline
    # model are outcome-independent, so labelling ahead of the
    # simulations is sound; with online learning, model updates are
    # deferred and applied in canonical proposal order between rounds)
    # ------------------------------------------------------------------
    def _candidate_stream(
        self, session: ExplorationSession
    ) -> Iterator[Tuple[float, str, Tuple[SensorId, ...], Optional[float]]]:
        """The candidate order shared by :meth:`explore` and
        :meth:`propose_batch`: per site, the latched subsets first (the
        exact classic order), then each burst duration's sweep."""
        subsets = self._candidate_subsets(session)
        windows = self._candidate_windows(session)
        for time in self._candidate_times(session):
            mode_category = session.mode_category_at(time)
            for window in windows:
                for subset in subsets:
                    yield time, mode_category, subset, window

    def _apply_deferred_updates(self, session: ExplorationSession) -> None:
        """Consume the outcomes of the previous batch, in proposal order.

        Only populated with ``learn_online``; the offline model has no
        feedback to consume.
        """
        for scenario, subset, mode_category in self._deferred_updates:
            result = session.result_for(scenario)
            if result is None:
                raise RuntimeError(
                    "batched BFI proposed a scenario whose result was never "
                    "ingested -- the engine must record every proposed "
                    "scenario before the next proposal round"
                )
            self._observe_outcome(subset, mode_category, result)
        self._deferred_updates.clear()

    def propose_batch(
        self, session: ExplorationSession, max_scenarios: int
    ) -> Optional[List[FaultScenario]]:
        """Label candidates depth-first; batch the ones worth simulating.

        Labelling and simulation costs are charged here, during
        proposal, in the same per-candidate order as the sequential
        loop (label, then reserve the simulation the moment a candidate
        passes the threshold or wins the exploration draw), and the RNG
        is consumed one draw per label -- so the budget trajectory, the
        explored scenarios, and where the campaign stops are identical
        to :meth:`explore`.

        With ``learn_online`` every label's score depends on the
        outcomes of every earlier simulation, so a round closes as soon
        as one scenario is in flight: the deferred model updates are
        applied (in proposal order) when the next round opens.  Without
        it the model is frozen and batches fill to ``max_scenarios``.
        """
        if self._batch_session is not session:
            self._batch_session = session
            self._batch_stream = self._candidate_stream(session)
            self._batch_finished = False
            self._deferred_updates = []
        self._apply_deferred_updates(session)
        if self._batch_finished:
            return []
        assert self._batch_stream is not None
        batch: List[FaultScenario] = []
        seen: Set[FaultScenario] = set()
        while len(batch) < max_scenarios:
            if self._learn_online and self._deferred_updates:
                # The next label's score depends on an in-flight outcome.
                break
            entry = next(self._batch_stream, None)
            if entry is None:
                self._batch_finished = True
                break
            time, mode_category, subset, duration = entry
            if session.budget.exhausted or not session.charge_label():
                self._batch_finished = True
                break
            self.labels_issued += 1
            score = self._model.scenario_score(
                [sensor_id.sensor_type for sensor_id in subset], mode_category
            )
            predicted_unsafe = score >= self._threshold
            explore_anyway = self._rng.random() < self._exploration_rate
            if not predicted_unsafe and not explore_anyway:
                continue
            scenario = FaultScenario(
                FaultSpec(sensor_id, time, duration) for sensor_id in subset
            )
            if session.was_explored(scenario) or scenario in seen:
                # The sequential loop re-runs the scenario for free (the
                # session serves the cached result without a charge) and
                # still counts it; with the result already known, a
                # deferred model update can be consumed immediately.
                self.simulations_run += 1
                if self._learn_online:
                    result = session.result_for(scenario)
                    if result is not None:
                        self._observe_outcome(subset, mode_category, result)
                continue
            if not session.reserve_simulation():
                self._batch_finished = True
                break
            seen.add(scenario)
            if self._learn_online:
                self._deferred_updates.append((scenario, subset, mode_category))
            batch.append(scenario)
        return batch
