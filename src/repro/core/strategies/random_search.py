"""Random fault injection (the "Rnd" column of Table I).

"Random fault injection chose fault injection sites from all sensor
readings with equal probability.  It also chose failure scenarios for
simulation randomly."  Every iteration picks a uniformly random set of
sensor instances and a uniformly random injection time for each, then
simulates.  Because the bug-manifesting windows are narrow slices of the
(sensor, time) space, random sampling rarely lands inside one -- the
measured inefficiency that motivates the stratified search.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set

from repro.core.session import ExplorationSession
from repro.core.strategies.base import SearchStrategy, StrategyFeatures
from repro.hinj.faults import FaultScenario, spec_for


class RandomInjection(SearchStrategy):
    """Uniform random sampling of fault scenarios."""

    name = "random"
    features = StrategyFeatures(
        targets_mode_transitions=False,
        uses_prior_bugs=False,
        searches_dissimilar_first=True,
    )

    def __init__(
        self,
        rng_seed: int = 11,
        max_concurrent_failures: int = 2,
        max_iterations: Optional[int] = None,
    ) -> None:
        self._rng = random.Random(rng_seed)
        self._max_concurrent = max(1, max_concurrent_failures)
        self._max_iterations = max_iterations
        self._iterations = 0
        self._active_session: Optional[ExplorationSession] = None
        self.simulations_run = 0

    def _bind_session(self, session: ExplorationSession) -> None:
        """Reset the per-campaign iteration count on a new session (the
        RNG deliberately persists, as it did before batching existed)."""
        if session is not self._active_session:
            self._active_session = session
            self._iterations = 0

    def _draw(self, session: ExplorationSession) -> FaultScenario:
        """One seeded draw from the uniform (failure set, time) distribution.

        The draw pool is the session's injectable failure space: the
        sensor instances, plus any opted-in coordination failures.  With
        no traffic opt-in the pool -- and therefore the seeded draw
        sequence -- is exactly the classic sensor-only one.
        """
        failures = session.injectable_failures
        duration = max(session.mission_duration, 1.0)
        count = self._rng.randint(1, self._max_concurrent)
        chosen = self._rng.sample(failures, min(count, len(failures)))
        return FaultScenario(
            spec_for(failure, round(self._rng.uniform(0.0, duration), 2))
            for failure in chosen
        )

    def _iterations_left(self) -> bool:
        return self._max_iterations is None or self._iterations < self._max_iterations

    def explore(self, session: ExplorationSession) -> None:
        self._bind_session(session)
        while not session.budget.exhausted:
            if not self._iterations_left():
                return
            self._iterations += 1
            scenario = self._draw(session)
            if session.was_explored(scenario):
                continue
            result = session.run_scenario(scenario)
            if result is None:
                return
            self.simulations_run += 1

    def propose_batch(
        self, session: ExplorationSession, max_scenarios: int
    ) -> Optional[List[FaultScenario]]:
        """Draw ``max_scenarios`` fresh scenarios from the seeded RNG.

        The draws consume the same RNG sequence as :meth:`explore`,
        duplicate draws are skipped exactly as the sequential loop skips
        already-explored scenarios, and each accepted scenario reserves
        its simulation cost -- so a batched campaign visits the same
        scenarios, with the same budget trajectory, as a sequential one
        with the same seed.
        """
        self._bind_session(session)
        batch: List[FaultScenario] = []
        seen: Set[FaultScenario] = set()
        # Uniform draws rarely collide, but bound the redraw loop so a
        # tiny fault space cannot spin forever.
        attempts_left = max(max_scenarios, 1) * 50
        while len(batch) < max_scenarios and attempts_left > 0:
            if session.budget.exhausted or not self._iterations_left():
                break
            self._iterations += 1
            attempts_left -= 1
            scenario = self._draw(session)
            if session.was_explored(scenario) or scenario in seen:
                continue
            if not session.reserve_simulation():
                break
            seen.add(scenario)
            batch.append(scenario)
        return batch
