"""Random fault injection (the "Rnd" column of Table I).

"Random fault injection chose fault injection sites from all sensor
readings with equal probability.  It also chose failure scenarios for
simulation randomly."  Every iteration picks a uniformly random set of
sensor instances and a uniformly random injection time for each, then
simulates.  Because the bug-manifesting windows are narrow slices of the
(sensor, time) space, random sampling rarely lands inside one -- the
measured inefficiency that motivates the stratified search.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.session import ExplorationSession
from repro.core.strategies.base import SearchStrategy, StrategyFeatures
from repro.hinj.faults import FaultScenario, FaultSpec


class RandomInjection(SearchStrategy):
    """Uniform random sampling of fault scenarios."""

    name = "random"
    features = StrategyFeatures(
        targets_mode_transitions=False,
        uses_prior_bugs=False,
        searches_dissimilar_first=True,
    )

    def __init__(
        self,
        rng_seed: int = 11,
        max_concurrent_failures: int = 2,
        max_iterations: Optional[int] = None,
    ) -> None:
        self._rng = random.Random(rng_seed)
        self._max_concurrent = max(1, max_concurrent_failures)
        self._max_iterations = max_iterations
        self.simulations_run = 0

    def explore(self, session: ExplorationSession) -> None:
        sensors = session.sensor_ids
        duration = max(session.mission_duration, 1.0)
        iterations = 0
        while not session.budget.exhausted:
            if self._max_iterations is not None and iterations >= self._max_iterations:
                return
            iterations += 1
            count = self._rng.randint(1, self._max_concurrent)
            chosen = self._rng.sample(sensors, min(count, len(sensors)))
            scenario = FaultScenario(
                FaultSpec(sensor_id, round(self._rng.uniform(0.0, duration), 2))
                for sensor_id in chosen
            )
            if session.was_explored(scenario):
                continue
            result = session.run_scenario(scenario)
            if result is None:
                return
            self.simulations_run += 1
