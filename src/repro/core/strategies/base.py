"""The common interface of the fault-injection search strategies."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional

from repro.core.session import ExplorationSession
from repro.hinj.faults import FaultScenario


@dataclass(frozen=True)
class StrategyFeatures:
    """The qualitative feature matrix of Table I."""

    targets_mode_transitions: bool
    uses_prior_bugs: bool
    searches_dissimilar_first: bool

    def as_row(self) -> tuple:
        """Render as the check-mark row used by the Table I benchmark."""
        def mark(flag: bool) -> str:
            return "yes" if flag else "no"

        return (
            mark(self.targets_mode_transitions),
            mark(self.uses_prior_bugs),
            mark(self.searches_dissimilar_first),
        )


class SearchStrategy(abc.ABC):
    """Base class for every fault-space search strategy."""

    #: Human-readable name used in result tables.
    name: str = "strategy"
    #: The Table I feature row for this strategy.
    features: StrategyFeatures = StrategyFeatures(False, False, False)

    @abc.abstractmethod
    def explore(self, session: ExplorationSession) -> None:
        """Explore the fault space until the session budget runs out."""

    # ------------------------------------------------------------------
    # Batch evaluation protocol (used by the parallel campaign engine)
    # ------------------------------------------------------------------
    def propose_batch(
        self, session: ExplorationSession, max_scenarios: int
    ) -> Optional[List[FaultScenario]]:
        """Propose up to ``max_scenarios`` unexplored scenarios to simulate.

        Strategies whose next proposal does not depend on the outcome of
        the previous simulation (random, exhaustive, stratified BFI) are
        embarrassingly parallel: they override this to hand the campaign
        engine a batch of scenarios that can be executed concurrently.
        The engine records results between calls, so later batches see
        everything earlier batches explored.

        Contract:

        * ``None`` -- the strategy does not support batching; the engine
          falls back to the sequential :meth:`explore` loop.  This is
          the default for strategies that have not implemented the
          protocol.  Feedback-driven strategies (SABRE's transition
          queue, BFI with online learning) implement it by deferring
          their feedback consumption to the top of the next proposal
          round, applied in canonical per-candidate order, so batched
          runs stay bit-identical to sequential ones.
        * ``[]`` -- the strategy has exhausted its search space or its
          budget; the campaign is over.
        * A non-empty list -- scenarios to simulate, in proposal order;
          none of them already explored in ``session`` and no duplicates
          within the batch.

        Budget protocol: the proposer charges costs in the same per-
        candidate order as its sequential loop -- labelling via
        ``session.charge_label()`` and, for every scenario it returns,
        one simulation via ``session.reserve_simulation()`` (stop the
        batch when it declines).  The engine records results without
        charging anything further, so the budget trajectory of a
        batched campaign is identical to the sequential one.
        """
        return None

    @property
    def supports_batching(self) -> bool:
        """True when the strategy overrides :meth:`propose_batch`."""
        return type(self).propose_batch is not SearchStrategy.propose_batch

    @property
    def has_batch_support(self) -> bool:
        """Alias of :attr:`supports_batching` (the engine's public name)."""
        return self.supports_batching

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} '{self.name}'>"
