"""The common interface of the fault-injection search strategies."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.session import ExplorationSession


@dataclass(frozen=True)
class StrategyFeatures:
    """The qualitative feature matrix of Table I."""

    targets_mode_transitions: bool
    uses_prior_bugs: bool
    searches_dissimilar_first: bool

    def as_row(self) -> tuple:
        """Render as the check-mark row used by the Table I benchmark."""
        def mark(flag: bool) -> str:
            return "yes" if flag else "no"

        return (
            mark(self.targets_mode_transitions),
            mark(self.uses_prior_bugs),
            mark(self.searches_dissimilar_first),
        )


class SearchStrategy(abc.ABC):
    """Base class for every fault-space search strategy."""

    #: Human-readable name used in result tables.
    name: str = "strategy"
    #: The Table I feature row for this strategy.
    features: StrategyFeatures = StrategyFeatures(False, False, False)

    @abc.abstractmethod
    def explore(self, session: ExplorationSession) -> None:
        """Explore the fault space until the session budget runs out."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} '{self.name}'>"
