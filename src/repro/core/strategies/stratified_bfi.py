"""Stratified BFI: BFI's model on top of SABRE's injection schedule.

The paper constructs this improved baseline to isolate the contribution
of the two ideas: Stratified BFI enumerates candidate sites in SABRE's
transition-targeted order (so it no longer drowns in labelling
irrelevant sites), but it still defers to the learned model before
simulating -- so it only exercises failure contexts its training data
covers, and it never "exhaustively targets the critical periods where the
UAV transitioned between operating modes" (Section VI).
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.session import ExplorationSession
from repro.core.strategies.base import SearchStrategy, StrategyFeatures
from repro.core.strategies.bayesian import BfiModel
from repro.hinj.faults import (
    FaultScenario,
    FaultSpec,
    admissible_burst_windows,
    validate_burst_durations,
)
from repro.sensors.base import SensorId

#: One labelled candidate: (time, mode category, subset, recovery window).
_Candidate = Tuple[float, str, Tuple[SensorId, ...], Optional[float]]


class StratifiedBFI(SearchStrategy):
    """The "Strat. BFI" column of Table I.

    ``burst_durations`` (off by default) extends the candidate space with
    intermittent variants of every subset: the latched candidates keep
    their exact classic order, then each burst duration sweeps the same
    (time, subset) grid with a bounded fault window.  The model scores a
    burst like its latched counterpart -- BFI's features do not cover
    recovery timing, which is precisely why it under-explores that axis.
    """

    name = "stratified-bfi"
    features = StrategyFeatures(
        targets_mode_transitions=False,
        uses_prior_bugs=True,
        searches_dissimilar_first=True,
    )

    def __init__(
        self,
        model: Optional[BfiModel] = None,
        threshold: float = 0.4,
        max_concurrent_failures: int = 1,
        time_quantum_s: float = 1.0,
        burst_durations: Sequence[float] = (),
    ) -> None:
        self._model = model if model is not None else BfiModel()
        self._threshold = threshold
        self._max_concurrent = max_concurrent_failures
        self._time_quantum = time_quantum_s
        self._burst_durations = validate_burst_durations(burst_durations)
        self._candidates: Optional[Iterator[_Candidate]] = None
        self._candidates_session: Optional[ExplorationSession] = None
        self.labels_issued = 0
        self.simulations_run = 0

    def _subsets(self, session: ExplorationSession) -> List[Tuple[SensorId, ...]]:
        sensors = session.sensor_ids
        subsets: List[Tuple[SensorId, ...]] = []
        for size in range(1, self._max_concurrent + 1):
            subsets.extend(itertools.combinations(sensors, size))
        return subsets

    def _windows(self, session: ExplorationSession) -> List[Optional[float]]:
        """The recovery windows swept per (time, subset)."""
        return admissible_burst_windows(
            self._burst_durations, session.mission_duration
        )

    def _injection_times(self, session: ExplorationSession) -> List[float]:
        """SABRE's stratified schedule: each transition and its near
        neighbourhood, in mission order."""
        transitions = [time for time in session.transition_times if time > 0.0]
        if not transitions:
            transitions = [0.0]
        times: List[float] = []
        for time in transitions:
            times.append(time)
            shifted = time + self._time_quantum
            if shifted <= session.mission_duration:
                times.append(shifted)
        return times

    def explore(self, session: ExplorationSession) -> None:
        for time, mode_category, subset, duration in self._candidate_stream(session):
            if session.budget.exhausted:
                return
            if not session.charge_label():
                return
            self.labels_issued += 1
            score = self._model.scenario_score(
                [sensor_id.sensor_type for sensor_id in subset], mode_category
            )
            if score < self._threshold:
                continue
            scenario = FaultScenario(
                FaultSpec(sensor_id, time, duration) for sensor_id in subset
            )
            if session.was_explored(scenario):
                continue
            result = session.run_scenario(scenario)
            if result is None:
                return
            self.simulations_run += 1

    # ------------------------------------------------------------------
    # Batch evaluation (the model's verdicts do not depend on run
    # outcomes, so labelling ahead of the simulations is sound)
    # ------------------------------------------------------------------
    def _candidate_stream(self, session: ExplorationSession) -> Iterator[_Candidate]:
        """The labelled-candidate order shared by :meth:`explore` and
        :meth:`propose_batch`: per injection time, the latched subsets
        first (exactly the classic order), then each burst duration's
        sweep of the same subsets."""
        subsets = self._subsets(session)
        windows = self._windows(session)
        for time in self._injection_times(session):
            mode_category = session.mode_category_at(time)
            for window in windows:
                for subset in subsets:
                    yield time, mode_category, subset, window

    def propose_batch(
        self, session: ExplorationSession, max_scenarios: int
    ) -> Optional[List[FaultScenario]]:
        """Label candidates in SABRE's stratified order; batch the ones
        the model predicts unsafe.

        Labelling and simulation costs are charged here, during
        proposal, in the same per-candidate order as the sequential
        loop (label, then reserve the simulation the moment a candidate
        passes the threshold) -- so the budget trajectory, and therefore
        where the campaign stops, is identical to :meth:`explore`.
        """
        if self._candidates is None or self._candidates_session is not session:
            self._candidates_session = session
            self._candidates = self._candidate_stream(session)
        batch: List[FaultScenario] = []
        seen: Set[FaultScenario] = set()
        while len(batch) < max_scenarios:
            entry = next(self._candidates, None)
            if entry is None:
                break
            time, mode_category, subset, duration = entry
            if session.budget.exhausted or not session.charge_label():
                break
            self.labels_issued += 1
            score = self._model.scenario_score(
                [sensor_id.sensor_type for sensor_id in subset], mode_category
            )
            if score < self._threshold:
                continue
            scenario = FaultScenario(
                FaultSpec(sensor_id, time, duration) for sensor_id in subset
            )
            if session.was_explored(scenario) or scenario in seen:
                continue
            if not session.reserve_simulation():
                break
            seen.add(scenario)
            batch.append(scenario)
        return batch
