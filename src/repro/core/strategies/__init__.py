"""Fault-injection search strategies (the approaches of Table I).

Every strategy implements the same interface
(:class:`~repro.core.strategies.base.SearchStrategy`): it explores the
fault space through an :class:`~repro.core.session.ExplorationSession`,
which charges simulation and labelling costs against the shared budget.

* :class:`AvisStrategy` -- SABRE + the redundancy pruning policies (the
  paper's contribution; it is what :class:`repro.core.avis.Avis` runs by
  default).
* :class:`StratifiedBFI` -- SABRE's transition-targeted candidate order,
  filtered by the Bayesian model (the paper's improved baseline).
* :class:`BayesianFaultInjection` -- the state-of-the-art baseline: a
  learned model labels candidate sites enumerated in depth-first order;
  labelling consumes budget.
* :class:`RandomInjection` -- uniform random injection sites and times.
* :class:`DepthFirstSearch` / :class:`BreadthFirstSearch` -- the naive
  enumerations of Section IV-B, used for the Figure 5 comparison.
"""

from repro.core.strategies.base import SearchStrategy, StrategyFeatures
from repro.core.strategies.avis_strategy import AvisStrategy
from repro.core.strategies.bayesian import BayesianFaultInjection, BfiModel, TrainingExample
from repro.core.strategies.exhaustive import BreadthFirstSearch, DepthFirstSearch
from repro.core.strategies.random_search import RandomInjection
from repro.core.strategies.stratified_bfi import StratifiedBFI

__all__ = [
    "AvisStrategy",
    "BayesianFaultInjection",
    "BfiModel",
    "BreadthFirstSearch",
    "DepthFirstSearch",
    "RandomInjection",
    "SearchStrategy",
    "StrategyFeatures",
    "StratifiedBFI",
    "TrainingExample",
]
