"""The test runner: one lock-step simulated flight per fault scenario.

This is the loop of Figure 7.  :class:`SimulationHarness` provisions a
fresh simulator, sensor suite, hinj interface, firmware and
ground-control station; the workload drives it through ``step()``; the
harness records the trace, mode transitions, collisions and fail-safe
events.  :class:`TestRunner` wraps the harness behind a single
``run(scenario)`` call used by the search strategies, profiling and bug
replay.

Fleet runs (``config.fleet_size > 1``) provision one firmware instance,
sensor suite, MAVLink link and ground-control station *per vehicle*, all
driven in lock-step against a shared simulator and clock.  Vehicle 0 is
the lead: the classic workload-facing attributes (``gcs``, ``telemetry``,
``home``) refer to it, and fleet workloads reach the other vehicles
through :meth:`SimulationHarness.vehicle`.  For fleet size 1 the harness
builds exactly the pre-fleet object graph, so every classic scenario,
trace and campaign is bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import RunConfiguration, VehicleSpec
from repro.firmware.base import ControlFirmware
from repro.firmware.modes import FlightMode
from repro.hinj.faults import EMPTY_SCENARIO, FaultScenario
from repro.hinj.instrumentation import HinjInterface, ModeTransition
from repro.hinj.scheduler import (
    FaultScheduler,
    InjectionRecord,
    injection_flight_events,
)
from repro.mavlink.gcs import GroundControlStation, TelemetrySnapshot
from repro.mavlink.link import MavLink
from repro.mavlink.traffic import (
    TrafficBeacon,
    TrafficChannel,
    TrafficInjectionRecord,
    traffic_flight_events,
)
from repro.obs import runtime as obs_runtime
from repro.sensors.suite import SensorSuite, iris_sensor_suite
from repro.sim.environment import GeoLocation
from repro.sim.planner import StepPlanner
from repro.sim.simulator import CollisionEvent, ProximityEvent, Simulator
from repro.sim.state import VehicleState
from repro.workloads.framework import Target, WorkloadOutcome, WorkloadResult

if TYPE_CHECKING:
    # Annotation-only: the recorder is imported at runtime inside the
    # observability-gated call sites so an uninstrumented run never
    # loads it (the inert-by-default contract, enforced by OBS002).
    from repro.obs.recorder import FlightEvent, FlightLog

#: Noise-seed stride between fleet members: vehicle ``v`` uses
#: ``config.noise_seed + v * FLEET_NOISE_SEED_STRIDE`` so every vehicle
#: has an independent (but still deterministic) noise stream while
#: vehicle 0 keeps the classic seed exactly.
FLEET_NOISE_SEED_STRIDE = 1000003

#: The adaptive stepper drops to the reference cadence whenever two
#: airborne fleet members are within this margin of the separation
#: threshold, so proximity conflicts are timed at full resolution.
PROXIMITY_REFINE_MARGIN_M = 5.0


@dataclass(frozen=True)
class TraceSample:
    """One sample of the recorded run trace.

    The invariant monitor's state tuple ``(P, alpha, M)`` corresponds to
    ``position``, ``acceleration`` and ``mode_label``.  ``vehicle``
    identifies the fleet member the sample belongs to (0 for classic
    single-vehicle runs).
    """

    index: int
    time: float
    position: Tuple[float, float, float]
    acceleration: Tuple[float, float, float]
    velocity: Tuple[float, float, float]
    mode_label: str
    altitude: float
    on_ground: bool
    armed: bool
    vehicle: int = 0

    @staticmethod
    def from_state(
        index: int, state: VehicleState, mode_label: str, vehicle: int = 0
    ) -> "TraceSample":
        """Build a sample from a simulator state snapshot."""
        return TraceSample(
            index=index,
            time=state.time,
            position=state.position,
            acceleration=state.acceleration,
            velocity=state.velocity,
            mode_label=mode_label,
            altitude=state.altitude,
            on_ground=state.on_ground,
            armed=state.armed,
            vehicle=vehicle,
        )


@dataclass
class RunResult:
    """Everything recorded about one simulated test run.

    ``trace`` and ``mode_transitions`` always describe vehicle 0 (the
    only vehicle of a classic run, the lead of a fleet run); fleet runs
    additionally fill ``vehicle_traces`` / ``vehicle_mode_transitions``
    with the per-vehicle records (vehicle 0 included) plus the
    inter-vehicle ``proximity_events`` and the minimum pairwise
    separation observed.
    """

    scenario: FaultScenario
    firmware_name: str
    workload_name: str
    workload_result: Optional[WorkloadResult]
    trace: List[TraceSample]
    mode_transitions: List[ModeTransition]
    collisions: List[CollisionEvent]
    fence_breaches: List
    injections: List[InjectionRecord]
    failsafe_events: List
    triggered_bugs: List[str]
    firmware_process_alive: bool
    duration_s: float
    steps: int
    aborted_early: bool = False
    fleet_size: int = 1
    vehicle_traces: Dict[int, List[TraceSample]] = field(default_factory=dict)
    vehicle_mode_transitions: Dict[int, List[ModeTransition]] = field(
        default_factory=dict
    )
    proximity_events: List[ProximityEvent] = field(default_factory=list)
    min_separation_m: Optional[float] = None
    #: Per-vehicle firmware liveness (empty for classic runs, where
    #: ``firmware_process_alive`` already tells the whole story).
    vehicle_firmware_alive: Dict[int, bool] = field(default_factory=dict)
    #: Coordination faults the traffic channel actually applied (fleet
    #: runs with scheduled traffic faults only).
    traffic_injections: List[TrafficInjectionRecord] = field(default_factory=list)
    #: Per-vehicle firmware flavour names (empty for classic runs;
    #: heterogeneous fleets record each member's flavour here).
    vehicle_firmware_names: Dict[int, str] = field(default_factory=dict)
    #: Filled in by the invariant monitor.
    unsafe_conditions: List = field(default_factory=list)
    #: The per-run flight recorder log (only when an observability
    #: runtime is installed).  A plain ``None`` default -- not a
    #: ``default_factory`` -- so results pickled by older engines (cache
    #: directories) unpickle against the class attribute.
    flight_log: Optional[FlightLog] = None

    @property
    def is_golden(self) -> bool:
        """True for the fault-free profiling runs."""
        return self.scenario.is_empty

    @property
    def found_unsafe_condition(self) -> bool:
        """True when the invariant monitor reported at least one violation."""
        return bool(self.unsafe_conditions)

    @property
    def workload_passed(self) -> bool:
        """True when the workload reported success."""
        return self.workload_result is not None and self.workload_result.passed

    @property
    def transition_times(self) -> List[float]:
        """Times of the observed operating-mode transitions."""
        return [transition.time for transition in self.mode_transitions]

    def mode_label_at(self, time: float) -> str:
        """The operating-mode label in effect at ``time`` (vehicle 0)."""
        return self.vehicle_mode_label_at(0, time)

    def vehicle_mode_label_at(self, vehicle: int, time: float) -> str:
        """The operating-mode label of one fleet member at ``time``."""
        transitions = (
            self.mode_transitions
            if vehicle == 0
            else self.vehicle_mode_transitions.get(vehicle, [])
        )
        label = "preflight"
        for transition in transitions:
            if transition.time <= time:
                label = transition.label
            else:
                break
        return label

    def summary(self) -> str:
        """One-line summary for logs and reports."""
        outcome = self.workload_result.outcome.value if self.workload_result else "n/a"
        return (
            f"[{self.firmware_name}/{self.workload_name}] {self.scenario.describe()} -> "
            f"workload={outcome}, unsafe={len(self.unsafe_conditions)}, "
            f"bugs={','.join(self.triggered_bugs) or 'none'}"
        )


class _VehicleUnit:
    """One fleet member's private component set.

    Everything the paper provisions per test run -- sensor suite, fault
    scheduler, hinj interface, MAVLink link, ground-control station and
    firmware -- exists once per vehicle; only the simulator, environment
    and clock are shared across the fleet.
    """

    def __init__(
        self,
        vehicle: int,
        config: RunConfiguration,
        environment,
        scenario: FaultScenario,
        pad_offset: Tuple[float, float] = (0.0, 0.0),
    ) -> None:
        self.vehicle = vehicle
        self.spec: VehicleSpec = config.vehicle_spec(vehicle)
        noise_seed = config.noise_seed + vehicle * FLEET_NOISE_SEED_STRIDE
        self.suite: SensorSuite = iris_sensor_suite(noise_seed=noise_seed)
        self.scheduler = FaultScheduler(scenario.vehicle_view(vehicle))
        self.hinj = HinjInterface(self.scheduler)
        self.link = MavLink()
        self.gcs = GroundControlStation(self.link)

        firmware_kwargs = dict(
            suite=self.suite,
            airframe=self.spec.airframe,
            environment=environment,
            link=self.link,
            hinj=self.hinj,
            dt=config.dt,
        )
        if vehicle > 0:
            # Vehicle 0 never receives the kwarg, so classic runs keep
            # working with firmware classes that predate fleet support.
            firmware_kwargs["initial_hold_point"] = pad_offset
        if self.spec.firmware_params is not None:
            firmware_kwargs["params"] = self.spec.firmware_params
        self.firmware: ControlFirmware = self.spec.firmware_class(**firmware_kwargs)
        for bug_id in config.reinserted_bugs:
            self.firmware.bug_registry.reinsert(bug_id)
        for bug_id in config.disabled_bugs:
            self.firmware.bug_registry.disable(bug_id)

    def namespaced_injections(self) -> List[InjectionRecord]:
        """The scheduler's injection log, re-namespaced to this vehicle."""
        records = self.scheduler.injections
        if self.vehicle == 0:
            return records
        return [
            InjectionRecord(
                sensor_id=record.sensor_id.for_vehicle(self.vehicle),
                scheduled_time=record.scheduled_time,
                injected_time=record.injected_time,
            )
            for record in records
        ]


class VehicleHandle:
    """The per-vehicle facade fleet workloads drive.

    Mirrors the vehicle-specific slice of the harness interface
    documented on :class:`repro.workloads.framework.Target`: the ground
    control station, telemetry, launch-pad offset and guided commands of
    one fleet member.
    """

    def __init__(self, harness: "SimulationHarness", vehicle: int) -> None:
        self._harness = harness
        self._vehicle = vehicle
        self._unit = harness._units[vehicle]

    @property
    def index(self) -> int:
        """This vehicle's fleet index."""
        return self._vehicle

    @property
    def gcs(self) -> GroundControlStation:
        """This vehicle's ground-control station."""
        return self._unit.gcs

    @property
    def telemetry(self) -> TelemetrySnapshot:
        """This vehicle's latest telemetry view."""
        return self._unit.gcs.telemetry

    @property
    def firmware(self) -> ControlFirmware:
        """This vehicle's firmware instance."""
        return self._unit.firmware

    @property
    def pad_offset(self) -> Tuple[float, float]:
        """(north, east) offset of this vehicle's launch pad from home."""
        return self._harness.simulator.pad_offset(self._vehicle)

    @property
    def state(self) -> VehicleState:
        """Ground-truth state (used by tests; workloads should rely on
        telemetry, like the paper's framework)."""
        return self._harness.simulator.state_of(self._vehicle)

    @property
    def firmware_name(self) -> str:
        """This vehicle's firmware flavour name."""
        return self._unit.firmware.name

    # Heterogeneous fleets: mode-name strings are flavour-specific, so a
    # PX4 wing must be commanded with its own table, not the lead's.
    @property
    def auto_mode_name(self) -> str:
        """This flavour's SET_MODE string for the mission mode."""
        return self._unit.firmware.mode_name_for(FlightMode.AUTO)

    @property
    def guided_mode_name(self) -> str:
        """This flavour's SET_MODE string for the guided mode."""
        return self._unit.firmware.mode_name_for(FlightMode.GUIDED)

    @property
    def position_hold_mode_name(self) -> str:
        """This flavour's SET_MODE string for the position-hold mode."""
        return self._unit.firmware.mode_name_for(FlightMode.POSHOLD)

    @property
    def land_mode_name(self) -> str:
        """This flavour's SET_MODE string for the land mode."""
        return self._unit.firmware.mode_name_for(FlightMode.LAND)

    def traffic_view(self, sender: int) -> Optional[TrafficBeacon]:
        """This vehicle's latest received beacon from fleet member
        ``sender`` (None before the first delivery, or for classic runs
        without a traffic channel)."""
        channel = self._harness.traffic
        if channel is None:
            return None
        return channel.latest(self._vehicle, sender)

    def set_guided_target(
        self,
        north: float,
        east: float,
        altitude: float,
        speed_limit: Optional[float] = None,
    ) -> None:
        """Forward a guided target (offsets from home) to this firmware."""
        self._unit.firmware.set_guided_target(
            north, east, altitude, speed_limit=speed_limit
        )


class SimulationHarness:
    """Owns one provisioned simulation and exposes the workload interface.

    The attributes documented on :class:`repro.workloads.framework.Target`
    (``step``, ``dt``, ``time``, ``gcs``, ``telemetry``, ``home``, mode
    name properties, ``should_abort``) are all provided here.
    """

    def __init__(
        self,
        config: RunConfiguration,
        scenario: FaultScenario = EMPTY_SCENARIO,
        monitor=None,
    ) -> None:
        self._config = config
        self._scenario = scenario
        self._monitor = monitor

        # The flight recorder exists only under an installed
        # observability runtime; every timing hook below guards on
        # ``self._recorder is not None`` so the default path never
        # reads a clock.
        obs = obs_runtime.current()
        self._obs = obs
        self._recorder = obs.new_recorder() if obs is not None else None
        self._clock = obs.tracer.clock if obs is not None else None
        provision_start = self._clock() if self._recorder is not None else 0.0

        environment = config.environment_factory()
        separation_threshold = 0.0
        if monitor is not None:
            separation_threshold = getattr(monitor, "separation_threshold_m", None) or 0.0
        self.simulator = Simulator(
            airframe=config.airframe,
            environment=environment,
            dt=config.dt,
            fleet_size=config.fleet_size,
            pad_spacing_m=config.fleet_pad_spacing_m,
            proximity_threshold_m=separation_threshold,
            airframes=[spec.airframe for spec in config.vehicle_specs],
            # "adaptive" composes on top of the SoA physics core; the
            # reference/SoA distinction is pinned bit-identical.
            stepper="reference" if config.stepper == "reference" else "soa",
        )

        # The quiescence-skipping planner (adaptive stepper only): fused
        # macro-steps between event boundaries, reference cadence near
        # them.  Boundaries start as the scenario's fault windows (both
        # families, including recovery edges); workloads add their
        # scheduled checkpoints through ``add_planned_events`` at bind
        # time, and mode transitions / tight separation are fed in as
        # the run observes them.
        self._planner: Optional[StepPlanner] = None
        if config.stepper == "adaptive":
            boundaries: List[float] = []
            for fault in scenario:
                boundaries.append(fault.start_time)
                if fault.duration_s is not None:
                    boundaries.append(fault.start_time + fault.duration_s)
            for fault in scenario.traffic_faults:
                boundaries.append(fault.start_time)
                if fault.duration_s is not None:
                    boundaries.append(fault.start_time + fault.duration_s)
            self._planner = StepPlanner(dt=config.dt, event_times=boundaries)
        self._last_labels: Optional[List[str]] = None
        self._refine_separation_m = (
            separation_threshold + PROXIMITY_REFINE_MARGIN_M
            if separation_threshold > 0.0
            else 0.0
        )
        self._last_update_step: Optional[int] = None
        self._units: List[_VehicleUnit] = [
            _VehicleUnit(
                vehicle,
                config,
                environment,
                scenario,
                pad_offset=self.simulator.pad_offset(vehicle),
            )
            for vehicle in range(config.fleet_size)
        ]

        # The inter-vehicle traffic channel: the only path one fleet
        # member's view of another takes, and the injection surface of
        # the coordination fault family.  Classic runs have no traffic.
        self.traffic: Optional[TrafficChannel] = None
        if config.fleet_size > 1:
            self.traffic = TrafficChannel(
                fleet_size=config.fleet_size,
                dt=config.dt,
                beacon_interval_s=config.traffic_beacon_interval_s,
                latency_s=config.traffic_latency_s,
                faults=scenario.traffic_faults,
            )

        # Classic single-vehicle aliases (vehicle 0, the lead).
        lead = self._units[0]
        self.suite: SensorSuite = lead.suite
        self.scheduler = lead.scheduler
        self.hinj = lead.hinj
        self.link = lead.link
        self.gcs = lead.gcs
        self.firmware: ControlFirmware = lead.firmware

        self._traces: List[List[TraceSample]] = [[] for _ in self._units]
        self._steps = 0
        self._abort = False
        self._unsafe_found = False
        self._proximity_seen = 0
        self._max_steps = int(config.max_sim_time_s / config.dt)
        self._sample_interval = max(config.sample_interval_steps, 1)
        self._record_sample()
        if self._recorder is not None:
            self._recorder.add_phase("provision", self._clock() - provision_start)

    # ------------------------------------------------------------------
    # Workload-facing interface
    # ------------------------------------------------------------------
    @property
    def dt(self) -> float:
        """Simulation time-step in seconds."""
        return self._config.dt

    @property
    def time(self) -> float:
        """Current simulated time in seconds."""
        return self.simulator.time

    @property
    def fleet_size(self) -> int:
        """Number of vehicles hosted by this simulation."""
        return self._config.fleet_size

    def vehicle(self, index: int) -> VehicleHandle:
        """The per-vehicle facade for fleet member ``index``."""
        if not 0 <= index < len(self._units):
            raise IndexError(f"no vehicle {index} in a fleet of {len(self._units)}")
        return VehicleHandle(self, index)

    @property
    def vehicles(self) -> List[VehicleHandle]:
        """Handles for every fleet member, in index order."""
        return [VehicleHandle(self, index) for index in range(len(self._units))]

    @property
    def telemetry(self) -> TelemetrySnapshot:
        """The lead ground-control station's latest telemetry view."""
        return self.gcs.telemetry

    @property
    def home(self) -> GeoLocation:
        """The launch location."""
        return self.firmware.home

    @property
    def auto_mode_name(self) -> str:
        """Flavour-specific SET_MODE string for the mission mode."""
        return self.firmware.mode_name_for(FlightMode.AUTO)

    @property
    def guided_mode_name(self) -> str:
        """Flavour-specific SET_MODE string for the guided mode."""
        return self.firmware.mode_name_for(FlightMode.GUIDED)

    @property
    def position_hold_mode_name(self) -> str:
        """Flavour-specific SET_MODE string for the position-hold mode."""
        return self.firmware.mode_name_for(FlightMode.POSHOLD)

    @property
    def land_mode_name(self) -> str:
        """Flavour-specific SET_MODE string for the land mode."""
        return self.firmware.mode_name_for(FlightMode.LAND)

    def set_guided_target(
        self,
        north: float,
        east: float,
        altitude: float,
        speed_limit: Optional[float] = None,
    ) -> None:
        """Forward a guided target to the lead firmware."""
        self.firmware.set_guided_target(north, east, altitude, speed_limit=speed_limit)

    def should_abort(self) -> bool:
        """True when the workload should stop stepping."""
        return self._abort

    # ------------------------------------------------------------------
    # Adaptive-stepper hooks
    # ------------------------------------------------------------------
    def add_planned_events(self, times: Sequence[float]) -> None:
        """Register workload checkpoint times as planner boundaries."""
        if self._planner is not None and times:
            self._planner.add_events(times)

    def wait_stride(self) -> int:
        """Steps a ``wait_until`` poll should advance per iteration."""
        if self._planner is None:
            return 1
        return self._planner.max_stride

    def _needs_refinement(self) -> bool:
        """Dynamic hazards only the running harness can see.

        Mode transitions are reported to the planner (which refines for
        its settle window); tight inter-vehicle separation forces the
        reference cadence directly.
        """
        labels = [unit.firmware.operating_mode_label for unit in self._units]
        if labels != self._last_labels:
            if self._last_labels is not None:
                self._planner.note_transition(self.time)
            self._last_labels = labels
        if self._refine_separation_m > 0.0 and len(self._units) > 1:
            states = self.simulator.states
            for a in range(len(states)):
                if states[a].on_ground:
                    continue
                for b in range(a + 1, len(states)):
                    if states[b].on_ground:
                        continue
                    if (
                        math.dist(states[a].position, states[b].position)
                        < self._refine_separation_m
                    ):
                        return True
        return False

    def _step_adaptive(self, count: int) -> None:
        """Advance ``count`` steps through planner-fused macro-steps."""
        remaining = count
        while remaining > 0 and not self._abort:
            stride = self._planner.plan(
                self.time, remaining, refine=self._needs_refinement()
            )
            self._step_window(stride)
            remaining -= stride

    def _step_window(self, stride: int) -> None:
        """One macro-step: ``stride`` micro-steps, one control period.

        The window runs the exact reference loop except that sensors are
        sampled and the firmware stepped only on the first micro-step,
        the actuator commands held for the rest; the firmware is told
        how long its command will be held (``elapsed_steps``).  MAVLink,
        GCS polling, physics, traffic beacons, trace sampling and every
        abort/safety check keep their per-micro-step cadence, so event
        timestamps stay on the reference grid.
        """
        recorder = self._recorder
        clock = self._clock
        commands: List = []
        for k in range(stride):
            if self._abort:
                return
            if recorder is not None:
                mark = clock()
                sensor_s = 0.0
            for unit in self._units:
                unit.link.advance()
                unit.gcs.poll(self.time)
            if k == 0:
                if self._last_update_step is None:
                    elapsed_steps = 1
                else:
                    elapsed_steps = self._steps - self._last_update_step
                self._last_update_step = self._steps
                commands = []
                for unit in self._units:
                    if recorder is not None:
                        sensor_start = clock()
                    readings = unit.suite.read_all(
                        self.simulator.state_of(unit.vehicle), self.time
                    )
                    if recorder is not None:
                        sensor_s += clock() - sensor_start
                    commands.append(
                        unit.firmware.update(
                            readings, self.time, elapsed_steps=elapsed_steps
                        )
                    )
            if recorder is not None:
                now = clock()
                recorder.add_phase("sensor_read", sensor_s)
                recorder.add_phase("control", (now - mark) - sensor_s)
                mark = now
            self.simulator.step_fleet(commands)
            if recorder is not None:
                now = clock()
                recorder.add_phase("physics", now - mark)
                mark = now
            if self.traffic is not None:
                self.traffic.advance()
                if self.traffic.beacon_due():
                    for unit in self._units:
                        state = self.simulator.state_of(unit.vehicle)
                        self.traffic.broadcast(
                            unit.vehicle,
                            time=self.time,
                            position=state.position,
                            velocity=state.velocity,
                        )
                if recorder is not None:
                    now = clock()
                    recorder.add_phase("traffic", now - mark)
                    mark = now
            self._steps += 1
            if self._steps % self._sample_interval == 0:
                self._record_sample()
            if self._steps >= self._max_steps:
                self._abort = True
            if self.simulator.has_crashed or not self._all_firmware_alive():
                self._unsafe_found = True
                if self._config.stop_on_unsafe:
                    self._abort = True
            self._check_proximity()
            if recorder is not None:
                recorder.add_phase("monitor", clock() - mark)

    def step(self, count: int = 1) -> None:
        """Advance the lock-step loop by ``count`` time-steps (Figure 7)."""
        if self._planner is not None:
            self._step_adaptive(count)
            return
        recorder = self._recorder
        clock = self._clock
        for _ in range(count):
            if self._abort:
                return
            if recorder is not None:
                mark = clock()
                sensor_s = 0.0
            commands = []
            for unit in self._units:
                unit.link.advance()
                unit.gcs.poll(self.time)
                if recorder is not None:
                    sensor_start = clock()
                readings = unit.suite.read_all(
                    self.simulator.state_of(unit.vehicle), self.time
                )
                if recorder is not None:
                    sensor_s += clock() - sensor_start
                commands.append(unit.firmware.update(readings, self.time))
            if recorder is not None:
                now = clock()
                # Phases are disjoint: sensor reads are carved out of the
                # surrounding control-loop time.
                recorder.add_phase("sensor_read", sensor_s)
                recorder.add_phase("control", (now - mark) - sensor_s)
                mark = now
            self.simulator.step_fleet(commands)
            if recorder is not None:
                now = clock()
                recorder.add_phase("physics", now - mark)
                mark = now
            if self.traffic is not None:
                self.traffic.advance()
                if self.traffic.beacon_due():
                    for unit in self._units:
                        state = self.simulator.state_of(unit.vehicle)
                        self.traffic.broadcast(
                            unit.vehicle,
                            time=self.time,
                            position=state.position,
                            velocity=state.velocity,
                        )
                if recorder is not None:
                    now = clock()
                    recorder.add_phase("traffic", now - mark)
                    mark = now
            self._steps += 1
            if self._steps % self._sample_interval == 0:
                self._record_sample()
            if self._steps >= self._max_steps:
                self._abort = True
            if self.simulator.has_crashed or not self._all_firmware_alive():
                self._unsafe_found = True
                if self._config.stop_on_unsafe:
                    self._abort = True
            self._check_proximity()
            if recorder is not None:
                recorder.add_phase("monitor", clock() - mark)

    def _all_firmware_alive(self) -> bool:
        return all(unit.firmware.process_alive for unit in self._units)

    def _check_proximity(self) -> None:
        """Flag (and optionally abort on) new inter-vehicle conflicts."""
        if len(self._units) == 1:
            return
        count = self.simulator.proximity_event_count
        if count > self._proximity_seen:
            self._proximity_seen = count
            self._unsafe_found = True
            if self._config.stop_on_unsafe:
                self._abort = True

    def _record_sample(self) -> None:
        state = self.simulator.state
        sample = TraceSample.from_state(
            index=len(self._traces[0]), state=state, mode_label=self.firmware.operating_mode_label
        )
        self._traces[0].append(sample)
        if self._monitor is not None:
            violation = self._monitor.check_sample(sample)
            if violation is not None:
                self._unsafe_found = True
                if self._config.stop_on_unsafe:
                    self._abort = True
        for unit in self._units[1:]:
            vehicle = unit.vehicle
            follower_sample = TraceSample.from_state(
                index=len(self._traces[vehicle]),
                state=self.simulator.state_of(vehicle),
                mode_label=unit.firmware.operating_mode_label,
                vehicle=vehicle,
            )
            self._traces[vehicle].append(follower_sample)
            # Per-vehicle online liveliness: follower samples stream
            # through the safe-mode progress windows, so a coordination
            # fault that strands a follower inside a fail-safe is caught
            # while the run executes, not only by the offline checks.
            if self._monitor is not None and hasattr(
                self._monitor, "check_vehicle_sample"
            ):
                violation = self._monitor.check_vehicle_sample(
                    vehicle, follower_sample
                )
                if violation is not None:
                    self._unsafe_found = True
                    if self._config.stop_on_unsafe:
                        self._abort = True

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def build_result(
        self, workload: Target, workload_result: Optional[WorkloadResult]
    ) -> RunResult:
        """Assemble the :class:`RunResult` once the workload has finished."""
        fleet = len(self._units)
        injections = list(self._units[0].namespaced_injections())
        failsafe_events = list(self.firmware.failsafe_events)
        triggered_bugs = list(self.firmware.triggered_bug_ids)
        for unit in self._units[1:]:
            injections.extend(unit.namespaced_injections())
            failsafe_events.extend(unit.firmware.failsafe_events)
            for bug_id in unit.firmware.triggered_bug_ids:
                if bug_id not in triggered_bugs:
                    triggered_bugs.append(bug_id)
        result = RunResult(
            scenario=self._scenario,
            firmware_name=self.firmware.name,
            workload_name=workload.display_name,
            workload_result=workload_result,
            trace=list(self._traces[0]),
            mode_transitions=self.hinj.transitions,
            collisions=self.simulator.collisions,
            fence_breaches=self.simulator.fence_breaches,
            injections=injections,
            failsafe_events=failsafe_events,
            triggered_bugs=triggered_bugs,
            firmware_process_alive=self._all_firmware_alive(),
            duration_s=self.time,
            steps=self._steps,
            aborted_early=self._abort,
        )
        if fleet > 1:
            result.fleet_size = fleet
            result.vehicle_traces = {
                unit.vehicle: list(self._traces[unit.vehicle]) for unit in self._units
            }
            result.vehicle_mode_transitions = {
                unit.vehicle: unit.hinj.transitions for unit in self._units
            }
            result.proximity_events = self.simulator.proximity_events
            result.min_separation_m = self.simulator.min_separation_m
            result.vehicle_firmware_alive = {
                unit.vehicle: unit.firmware.process_alive for unit in self._units
            }
            result.vehicle_firmware_names = {
                unit.vehicle: unit.firmware.name for unit in self._units
            }
            if self.traffic is not None:
                result.traffic_injections = self.traffic.injections
        if self._planner is not None and self._obs is not None:
            # Attribute the adaptive stepper's speedup to skipped
            # quiescence: fused windows vs total micro-steps vs windows
            # forced back to the reference cadence.
            metrics = self._obs.metrics
            metrics.counter("sim.macro_steps").inc(self._planner.macro_steps)
            metrics.counter("sim.micro_steps").inc(self._planner.micro_steps)
            metrics.counter("sim.boundary_refinements").inc(
                self._planner.boundary_refinements
            )
        if self._recorder is not None:
            self._assemble_flight_events(result)
            result.flight_log = self._recorder.seal()
            result.flight_log.stepper = self._config.stepper
        return result

    def _assemble_flight_events(self, result: RunResult) -> None:
        """Fill the recorder from the run's own deterministic records.

        Every event is derived from state the run already produced
        (injection logs, transition logs, simulator safety events), so a
        recorded run and an unrecorded run execute identically -- the
        recorder only changes what is *reported*, never what happened.
        """
        from repro.obs.recorder import FlightEvent

        events: List[FlightEvent] = []
        events.extend(injection_flight_events(result.injections))
        events.extend(traffic_flight_events(result.traffic_injections))
        for unit in self._units:
            vehicle = f"v{unit.vehicle}"
            for transition in unit.hinj.transitions:
                detail = (
                    f"{transition.previous} -> {transition.label}"
                    if transition.previous is not None
                    else transition.label
                )
                events.append(
                    FlightEvent(
                        transition.time, "mode.transition", detail, vehicle=vehicle
                    )
                )
        events.extend(self.simulator.safety_events())
        events.sort(key=lambda event: (event.time_s, event.kind, event.detail))
        self._recorder.record_all(events)


class TestRunner:
    """Runs workloads under fault scenarios, one fresh harness per run."""

    #: Not a pytest test class, despite the name.
    __test__ = False

    def __init__(self, config: RunConfiguration, monitor=None) -> None:
        self._config = config
        self._monitor = monitor
        self._runs_executed = 0
        self._simulated_seconds = 0.0

    @property
    def config(self) -> RunConfiguration:
        """The run configuration used for every run."""
        return self._config

    @property
    def monitor(self):
        """The invariant monitor evaluated against every run (may be None)."""
        return self._monitor

    @monitor.setter
    def monitor(self, monitor) -> None:
        self._monitor = monitor

    @property
    def runs_executed(self) -> int:
        """Number of simulations executed so far."""
        return self._runs_executed

    @property
    def simulated_seconds(self) -> float:
        """Total simulated flight time across all runs."""
        return self._simulated_seconds

    def run(
        self,
        scenario: FaultScenario = EMPTY_SCENARIO,
        noise_seed: Optional[int] = None,
    ) -> RunResult:
        """Execute the configured workload under ``scenario``."""
        obs = obs_runtime.current()
        if obs is None:
            return self._run(scenario, noise_seed)
        with obs.tracer.span(
            "simulate",
            scenario=scenario.describe(),
            firmware=self._config.firmware_name,
        ) as span_args:
            result = self._run(scenario, noise_seed)
            span_args["unsafe"] = result.found_unsafe_condition
        if result.flight_log is not None:
            for phase, seconds in result.flight_log.phase_seconds.items():
                obs.metrics.counter("run.phase_seconds", phase=phase).inc(seconds)
            for event in result.flight_log.events:
                obs.metrics.counter("run.flight_events", kind=event.kind).inc()
        return result

    def _run(
        self, scenario: FaultScenario, noise_seed: Optional[int]
    ) -> RunResult:
        config = self._config
        if noise_seed is not None:
            config = config.with_noise_seed(noise_seed)
        online_monitor = self._monitor if self._monitor is not None else None
        harness = SimulationHarness(config, scenario, monitor=online_monitor)
        if online_monitor is not None:
            # The scenario seeds the monitor's recovery-tolerance windows
            # (a no-op for latched-only scenarios).
            online_monitor.begin_run(scenario)
        workload = config.workload_factory()
        workload.bind(harness)
        workload_result = workload.run()
        result = harness.build_result(workload, workload_result)
        self._runs_executed += 1
        self._simulated_seconds += result.duration_s
        if self._monitor is not None:
            recorder = harness._recorder
            if recorder is not None:
                evaluate_start = harness._clock()
                result.unsafe_conditions = self._monitor.evaluate(result)
                if result.flight_log is not None:
                    result.flight_log.phase_seconds["monitor_evaluate"] = (
                        result.flight_log.phase_seconds.get("monitor_evaluate", 0.0)
                        + (harness._clock() - evaluate_start)
                    )
            else:
                result.unsafe_conditions = self._monitor.evaluate(result)
        return result
