"""The test runner: one lock-step simulated flight per fault scenario.

This is the loop of Figure 7.  :class:`SimulationHarness` provisions a
fresh simulator, sensor suite, hinj interface, firmware and
ground-control station; the workload drives it through ``step()``; the
harness records the trace, mode transitions, collisions and fail-safe
events.  :class:`TestRunner` wraps the harness behind a single
``run(scenario)`` call used by the search strategies, profiling and bug
replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.config import RunConfiguration
from repro.firmware.base import ControlFirmware
from repro.firmware.modes import FlightMode
from repro.hinj.faults import EMPTY_SCENARIO, FaultScenario
from repro.hinj.instrumentation import HinjInterface, ModeTransition
from repro.hinj.scheduler import FaultScheduler, InjectionRecord
from repro.mavlink.gcs import GroundControlStation, TelemetrySnapshot
from repro.mavlink.link import MavLink
from repro.sensors.suite import SensorSuite, iris_sensor_suite
from repro.sim.environment import GeoLocation
from repro.sim.simulator import CollisionEvent, Simulator
from repro.sim.state import VehicleState
from repro.workloads.framework import Target, WorkloadOutcome, WorkloadResult


@dataclass(frozen=True)
class TraceSample:
    """One sample of the recorded run trace.

    The invariant monitor's state tuple ``(P, alpha, M)`` corresponds to
    ``position``, ``acceleration`` and ``mode_label``.
    """

    index: int
    time: float
    position: Tuple[float, float, float]
    acceleration: Tuple[float, float, float]
    velocity: Tuple[float, float, float]
    mode_label: str
    altitude: float
    on_ground: bool
    armed: bool

    @staticmethod
    def from_state(index: int, state: VehicleState, mode_label: str) -> "TraceSample":
        """Build a sample from a simulator state snapshot."""
        return TraceSample(
            index=index,
            time=state.time,
            position=state.position,
            acceleration=state.acceleration,
            velocity=state.velocity,
            mode_label=mode_label,
            altitude=state.altitude,
            on_ground=state.on_ground,
            armed=state.armed,
        )


@dataclass
class RunResult:
    """Everything recorded about one simulated test run."""

    scenario: FaultScenario
    firmware_name: str
    workload_name: str
    workload_result: Optional[WorkloadResult]
    trace: List[TraceSample]
    mode_transitions: List[ModeTransition]
    collisions: List[CollisionEvent]
    fence_breaches: List
    injections: List[InjectionRecord]
    failsafe_events: List
    triggered_bugs: List[str]
    firmware_process_alive: bool
    duration_s: float
    steps: int
    aborted_early: bool = False
    #: Filled in by the invariant monitor.
    unsafe_conditions: List = field(default_factory=list)

    @property
    def is_golden(self) -> bool:
        """True for the fault-free profiling runs."""
        return self.scenario.is_empty

    @property
    def found_unsafe_condition(self) -> bool:
        """True when the invariant monitor reported at least one violation."""
        return bool(self.unsafe_conditions)

    @property
    def workload_passed(self) -> bool:
        """True when the workload reported success."""
        return self.workload_result is not None and self.workload_result.passed

    @property
    def transition_times(self) -> List[float]:
        """Times of the observed operating-mode transitions."""
        return [transition.time for transition in self.mode_transitions]

    def mode_label_at(self, time: float) -> str:
        """The operating-mode label in effect at ``time``."""
        label = "preflight"
        for transition in self.mode_transitions:
            if transition.time <= time:
                label = transition.label
            else:
                break
        return label

    def summary(self) -> str:
        """One-line summary for logs and reports."""
        outcome = self.workload_result.outcome.value if self.workload_result else "n/a"
        return (
            f"[{self.firmware_name}/{self.workload_name}] {self.scenario.describe()} -> "
            f"workload={outcome}, unsafe={len(self.unsafe_conditions)}, "
            f"bugs={','.join(self.triggered_bugs) or 'none'}"
        )


class SimulationHarness:
    """Owns one provisioned simulation and exposes the workload interface.

    The attributes documented on :class:`repro.workloads.framework.Target`
    (``step``, ``dt``, ``time``, ``gcs``, ``telemetry``, ``home``, mode
    name properties, ``should_abort``) are all provided here.
    """

    def __init__(
        self,
        config: RunConfiguration,
        scenario: FaultScenario = EMPTY_SCENARIO,
        monitor=None,
    ) -> None:
        self._config = config
        self._scenario = scenario
        self._monitor = monitor

        environment = config.environment_factory()
        self.simulator = Simulator(
            airframe=config.airframe, environment=environment, dt=config.dt
        )
        self.suite: SensorSuite = iris_sensor_suite(noise_seed=config.noise_seed)
        self.scheduler = FaultScheduler(scenario)
        self.hinj = HinjInterface(self.scheduler)
        self.link = MavLink()
        self.gcs = GroundControlStation(self.link)

        firmware_kwargs = dict(
            suite=self.suite,
            airframe=config.airframe,
            environment=environment,
            link=self.link,
            hinj=self.hinj,
            dt=config.dt,
        )
        if config.firmware_params is not None:
            firmware_kwargs["params"] = config.firmware_params
        self.firmware: ControlFirmware = config.firmware_class(**firmware_kwargs)
        for bug_id in config.reinserted_bugs:
            self.firmware.bug_registry.reinsert(bug_id)
        for bug_id in config.disabled_bugs:
            self.firmware.bug_registry.disable(bug_id)

        self._trace: List[TraceSample] = []
        self._steps = 0
        self._abort = False
        self._unsafe_found = False
        self._max_steps = int(config.max_sim_time_s / config.dt)
        self._sample_interval = max(config.sample_interval_steps, 1)
        self._record_sample()

    # ------------------------------------------------------------------
    # Workload-facing interface
    # ------------------------------------------------------------------
    @property
    def dt(self) -> float:
        """Simulation time-step in seconds."""
        return self._config.dt

    @property
    def time(self) -> float:
        """Current simulated time in seconds."""
        return self.simulator.time

    @property
    def telemetry(self) -> TelemetrySnapshot:
        """The ground-control station's latest telemetry view."""
        return self.gcs.telemetry

    @property
    def home(self) -> GeoLocation:
        """The launch location."""
        return self.firmware.home

    @property
    def auto_mode_name(self) -> str:
        """Flavour-specific SET_MODE string for the mission mode."""
        return self._mode_name_for(FlightMode.AUTO)

    @property
    def guided_mode_name(self) -> str:
        """Flavour-specific SET_MODE string for the guided mode."""
        return self._mode_name_for(FlightMode.GUIDED)

    @property
    def position_hold_mode_name(self) -> str:
        """Flavour-specific SET_MODE string for the position-hold mode."""
        return self._mode_name_for(FlightMode.POSHOLD)

    @property
    def land_mode_name(self) -> str:
        """Flavour-specific SET_MODE string for the land mode."""
        return self._mode_name_for(FlightMode.LAND)

    def _mode_name_for(self, mode: FlightMode) -> str:
        for name, value in self.firmware.mode_name_table.items():
            if value == mode:
                return name
        return mode.value.upper()

    def set_guided_target(self, north: float, east: float, altitude: float) -> None:
        """Forward a guided target to the firmware."""
        self.firmware.set_guided_target(north, east, altitude)

    def should_abort(self) -> bool:
        """True when the workload should stop stepping."""
        return self._abort

    def step(self, count: int = 1) -> None:
        """Advance the lock-step loop by ``count`` time-steps (Figure 7)."""
        for _ in range(count):
            if self._abort:
                return
            self.link.advance()
            self.gcs.poll(self.time)
            readings = self.suite.read_all(self.simulator.state, self.time)
            command = self.firmware.update(readings, self.time)
            self.simulator.step(command)
            self._steps += 1
            if self._steps % self._sample_interval == 0:
                self._record_sample()
            if self._steps >= self._max_steps:
                self._abort = True
            if self.simulator.has_crashed or not self.firmware.process_alive:
                self._unsafe_found = True
                if self._config.stop_on_unsafe:
                    self._abort = True

    def _record_sample(self) -> None:
        state = self.simulator.state
        sample = TraceSample.from_state(
            index=len(self._trace), state=state, mode_label=self.firmware.operating_mode_label
        )
        self._trace.append(sample)
        if self._monitor is not None:
            violation = self._monitor.check_sample(sample)
            if violation is not None:
                self._unsafe_found = True
                if self._config.stop_on_unsafe:
                    self._abort = True

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def build_result(
        self, workload: Target, workload_result: Optional[WorkloadResult]
    ) -> RunResult:
        """Assemble the :class:`RunResult` once the workload has finished."""
        return RunResult(
            scenario=self._scenario,
            firmware_name=self.firmware.name,
            workload_name=workload.display_name,
            workload_result=workload_result,
            trace=list(self._trace),
            mode_transitions=self.hinj.transitions,
            collisions=self.simulator.collisions,
            fence_breaches=self.simulator.fence_breaches,
            injections=self.scheduler.injections,
            failsafe_events=self.firmware.failsafe_events,
            triggered_bugs=self.firmware.triggered_bug_ids,
            firmware_process_alive=self.firmware.process_alive,
            duration_s=self.time,
            steps=self._steps,
            aborted_early=self._abort,
        )


class TestRunner:
    """Runs workloads under fault scenarios, one fresh harness per run."""

    #: Not a pytest test class, despite the name.
    __test__ = False

    def __init__(self, config: RunConfiguration, monitor=None) -> None:
        self._config = config
        self._monitor = monitor
        self._runs_executed = 0
        self._simulated_seconds = 0.0

    @property
    def config(self) -> RunConfiguration:
        """The run configuration used for every run."""
        return self._config

    @property
    def monitor(self):
        """The invariant monitor evaluated against every run (may be None)."""
        return self._monitor

    @monitor.setter
    def monitor(self, monitor) -> None:
        self._monitor = monitor

    @property
    def runs_executed(self) -> int:
        """Number of simulations executed so far."""
        return self._runs_executed

    @property
    def simulated_seconds(self) -> float:
        """Total simulated flight time across all runs."""
        return self._simulated_seconds

    def run(
        self,
        scenario: FaultScenario = EMPTY_SCENARIO,
        noise_seed: Optional[int] = None,
    ) -> RunResult:
        """Execute the configured workload under ``scenario``."""
        config = self._config
        if noise_seed is not None:
            config = config.with_noise_seed(noise_seed)
        online_monitor = self._monitor if self._monitor is not None else None
        harness = SimulationHarness(config, scenario, monitor=online_monitor)
        if online_monitor is not None:
            online_monitor.begin_run()
        workload = config.workload_factory()
        workload.bind(harness)
        workload_result = workload.run()
        result = harness.build_result(workload, workload_result)
        self._runs_executed += 1
        self._simulated_seconds += result.duration_s
        if self._monitor is not None:
            result.unsafe_conditions = self._monitor.evaluate(result)
        return result
