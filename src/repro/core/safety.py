"""The safety invariant (Section IV-C-1).

Safety means "the UAV does not collide with an obstacle".  The monitor
detects two things:

* software crashes -- "the invariant monitor checks if the firmware
  process is still running";
* physical collisions -- the vehicle "rapidly (de)accelerates but has the
  same position as another simulated object, e.g. the ground".

The simulator already records collision events with impact speeds (see
:class:`repro.sim.simulator.CollisionEvent`), so the safety monitor's job
is to translate those records -- plus the firmware-liveness flag -- into
unsafe-condition reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.runner import RunResult, TraceSample


@dataclass(frozen=True)
class SafetyViolation:
    """A single violation of the safety rule."""

    time: float
    kind: str
    description: str
    mode_label: str


class SafetyMonitor:
    """Detects crashes (physical and software) in a run."""

    def __init__(self, impact_speed_threshold: float = 2.0) -> None:
        self._impact_speed_threshold = impact_speed_threshold

    def check_sample(self, sample: TraceSample) -> Optional[SafetyViolation]:
        """Online check used while the run executes (fast path).

        Collision events are detected by the simulator itself; the online
        sample check only exists so the harness can abort a run as soon as
        ground truth shows the vehicle down and tumbling.
        """
        del sample  # per-sample safety state is owned by the simulator
        return None

    @staticmethod
    def _vehicle_label(result: RunResult, vehicle: int, time: float) -> str:
        """The involved vehicle's mode label, namespaced off the lead.

        Classic runs only ever involve vehicle 0, so the label is exactly
        the lead's, as before; fleet events attribute the mode of the
        vehicle that actually crashed (``v1:rtl``), not the lead's.
        """
        label = result.vehicle_mode_label_at(vehicle, time)
        if vehicle:
            label = f"v{vehicle}:{label}"
        return label

    def evaluate(self, result: RunResult) -> List[SafetyViolation]:
        """Offline evaluation of a completed run."""
        violations: List[SafetyViolation] = []
        for collision in result.collisions:
            if collision.impact_speed < self._impact_speed_threshold:
                continue
            vehicle = getattr(collision, "vehicle", 0)
            violations.append(
                SafetyViolation(
                    time=collision.time,
                    kind="collision",
                    description=collision.describe(),
                    mode_label=self._vehicle_label(result, vehicle, collision.time),
                )
            )
        if not result.firmware_process_alive:
            dead = [
                vehicle
                for vehicle, alive in sorted(result.vehicle_firmware_alive.items())
                if not alive
            ]
            vehicle = dead[0] if dead else 0
            violations.append(
                SafetyViolation(
                    time=result.duration_s,
                    kind="software-crash",
                    description="firmware process is no longer running",
                    mode_label=self._vehicle_label(result, vehicle, result.duration_s),
                )
            )
        return violations
