"""Bug replay (Section IV-D).

Avis records the failures it injects; when an unsafe condition is found
the scenario is saved for replay.  Replay "re-executes the mission,
injecting the same faults at the same time offsets from mode transitions"
-- anchoring to mode transitions rather than absolute times makes the
reproduction robust to minor non-determinism between runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.config import RunConfiguration
from repro.core.monitor import InvariantMonitor
from repro.core.runner import RunResult, TestRunner
from repro.hinj.faults import (
    FailureHandle,
    FaultScenario,
    TrafficFailure,
    failure_label,
    spec_for,
)
from repro.sensors.base import SensorId


@dataclass(frozen=True)
class AnchoredFault:
    """A fault expressed relative to an operating-mode transition."""

    #: The failed thing: a sensor instance, or a traffic-channel handle
    #: for coordination faults.
    failure: FailureHandle
    #: Label of the operating mode the vehicle was entering (or in) when
    #: the fault was injected.
    anchor_label: str
    #: Which occurrence of that label in the run the fault anchors to
    #: (labels can repeat, e.g. repeated position-hold dwells).
    anchor_occurrence: int
    #: Seconds between the anchoring transition and the injection.
    offset_s: float
    #: Recovery window of an intermittent fault (None = latched).  The
    #: window is a property of the fault, not of the run, so it replays
    #: verbatim rather than being re-anchored.
    duration_s: Optional[float] = None

    @property
    def sensor_id(self) -> SensorId:
        """The failed sensor instance (sensor-fault anchors only)."""
        assert isinstance(self.failure, SensorId)
        return self.failure


@dataclass
class ReplayPlan:
    """The transition-anchored description of a recorded scenario."""

    faults: List[AnchoredFault]

    def describe(self) -> str:
        """Readable description used in bug reports."""
        if not self.faults:
            return "no faults (golden run)"
        return "; ".join(
            f"{failure_label(fault.failure)} {fault.offset_s:.2f}s after entering "
            f"'{fault.anchor_label}' (occurrence {fault.anchor_occurrence})"
            + (f" for {fault.duration_s:g}s" if fault.duration_s is not None else "")
            for fault in self.faults
        )


@dataclass
class ReplayOutcome:
    """Result of replaying a recorded unsafe scenario."""

    plan: ReplayPlan
    original: RunResult
    replay: RunResult

    @property
    def reproduced(self) -> bool:
        """True when the replay run also produced an unsafe condition."""
        return self.replay.found_unsafe_condition


def _anchor(
    transitions,
    failure: FailureHandle,
    injected_time: float,
    duration_s: Optional[float] = None,
) -> AnchoredFault:
    anchor_label = "preflight"
    anchor_time = 0.0
    occurrence = 0
    occurrences: dict = {}
    for transition in transitions:
        occurrences[transition.label] = occurrences.get(transition.label, 0) + 1
        if transition.time <= injected_time:
            anchor_label = transition.label
            anchor_time = transition.time
            occurrence = occurrences[transition.label]
    return AnchoredFault(
        failure=failure,
        anchor_label=anchor_label,
        anchor_occurrence=max(occurrence, 1),
        offset_s=injected_time - anchor_time,
        duration_s=duration_s,
    )


def build_replay_plan(result: RunResult) -> ReplayPlan:
    """Anchor each injected fault of ``result`` to its mode transition.

    Sensor injections come from the per-vehicle schedulers' logs;
    coordination faults come from the traffic channel's injection log --
    both anchor to the lead's mode transitions, so a replayed scenario
    carries the complete fault set.  Recovery windows ride along: an
    intermittent fault replays with the same ``duration_s`` it was
    recorded with.
    """
    faults: List[AnchoredFault] = []
    transitions = result.mode_transitions
    for record in result.injections:
        faults.append(
            _anchor(
                transitions,
                record.sensor_id,
                record.injected_time,
                getattr(record, "duration_s", None),
            )
        )
    for traffic_record in result.traffic_injections:
        fault = traffic_record.fault
        faults.append(
            _anchor(
                transitions,
                TrafficFailure(fault.vehicle, fault.kind, fault.extra_delay_s),
                traffic_record.injected_time,
                fault.duration_s,
            )
        )
    return ReplayPlan(faults=faults)


def resolve_plan(plan: ReplayPlan, reference: RunResult) -> FaultScenario:
    """Turn an anchored plan back into absolute times using ``reference``.

    ``reference`` is typically a fresh fault-free run of the same mission;
    anchoring each fault to the same labelled transition absorbs the small
    timing differences between runs.
    """
    specs = []
    for fault in plan.faults:
        anchor_time: Optional[float] = None
        seen = 0
        for transition in reference.mode_transitions:
            if transition.label == fault.anchor_label:
                seen += 1
                if seen == fault.anchor_occurrence:
                    anchor_time = transition.time
                    break
        if anchor_time is None:
            # The reference run never entered the anchoring mode; fall back
            # to the start of the mission so the fault is still injected.
            anchor_time = 0.0
        specs.append(
            spec_for(
                fault.failure,
                max(anchor_time + fault.offset_s, 0.0),
                fault.duration_s,
            )
        )
    return FaultScenario(specs)


class BugReplayer:
    """Re-executes recorded unsafe scenarios to confirm reproducibility."""

    def __init__(self, config: RunConfiguration, monitor: InvariantMonitor) -> None:
        self._config = config
        self._monitor = monitor

    def replay(self, original: RunResult, reference: Optional[RunResult] = None) -> ReplayOutcome:
        """Replay ``original``'s scenario anchored to mode transitions."""
        plan = build_replay_plan(original)
        runner = TestRunner(self._config, monitor=self._monitor)
        if reference is None:
            # A fresh golden run provides the transition times to anchor to.
            golden_runner = TestRunner(self._config)
            reference = golden_runner.run()
        scenario = resolve_plan(plan, reference)
        replay_result = runner.run(scenario)
        return ReplayOutcome(plan=plan, original=original, replay=replay_result)
