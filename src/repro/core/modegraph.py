"""The mode graph used by the liveliness distance (Section IV-C).

"A mode graph is a directed graph, where each node represents a mode and
each edge represents a mode-change event.  The mode graph is constructed
from the observed transitions between modes in the profiling runs."  The
distance between two modes is the length of the shortest path between
them; the longest such path (the graph's diameter, ``D``) normalises the
position and acceleration distances.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.hinj.instrumentation import ModeTransition


class ModeGraph:
    """Directed graph over operating-mode labels with shortest-path distance."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._distance_cache: Dict[Tuple[str, str], int] = {}
        self._diameter: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_transition(self, source: Optional[str], destination: str) -> None:
        """Record one observed mode-change event."""
        self._graph.add_node(destination)
        if source is not None and source != destination:
            self._graph.add_node(source)
            self._graph.add_edge(source, destination)
        self._distance_cache.clear()
        self._diameter = None

    def add_transitions(self, transitions: Iterable[ModeTransition]) -> None:
        """Record a whole profiling run's transition list."""
        for transition in transitions:
            self.add_transition(transition.previous, transition.label)

    @classmethod
    def from_profiling_runs(
        cls, runs: Sequence[Sequence[ModeTransition]]
    ) -> "ModeGraph":
        """Build the mode graph from the transitions of several runs."""
        graph = cls()
        for transitions in runs:
            graph.add_transitions(transitions)
        return graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def modes(self) -> List[str]:
        """Every mode label seen in the profiling runs."""
        return sorted(self._graph.nodes)

    @property
    def edges(self) -> List[Tuple[str, str]]:
        """Every observed mode-change edge."""
        return sorted(self._graph.edges)

    def __contains__(self, label: str) -> bool:
        return label in self._graph

    def distance(self, source: str, destination: str) -> int:
        """Shortest-path distance ``d_m`` between two modes.

        Unknown modes (never seen in profiling) and unreachable pairs are
        assigned the graph diameter plus one -- the test run has wandered
        somewhere the profiling runs never go, which is maximally far.
        """
        if source == destination:
            return 0
        key = (source, destination)
        if key in self._distance_cache:
            return self._distance_cache[key]
        result: Optional[int] = None
        if source in self._graph and destination in self._graph:
            try:
                result = nx.shortest_path_length(self._graph, source, destination)
            except nx.NetworkXNoPath:
                # Fall back to the undirected distance: a drone cannot land
                # before flying, but "one transition apart in either
                # direction" is still closer than "unrelated modes".
                try:
                    result = nx.shortest_path_length(
                        self._graph.to_undirected(as_view=True), source, destination
                    )
                except nx.NetworkXNoPath:
                    result = None
        if result is None:
            result = self.diameter + 1
        self._distance_cache[key] = result
        return result

    @property
    def diameter(self) -> int:
        """``D``: the length of the longest shortest path in the graph."""
        if self._diameter is not None:
            return self._diameter
        longest = 1
        undirected = self._graph.to_undirected(as_view=True)
        for source, lengths in nx.all_pairs_shortest_path_length(undirected):
            for destination, length in lengths.items():
                if length > longest:
                    longest = length
        self._diameter = longest
        return self._diameter

    def describe(self) -> str:
        """Readable adjacency listing used in reports."""
        lines = []
        for source in sorted(self._graph.nodes):
            successors = sorted(self._graph.successors(source))
            if successors:
                lines.append(f"{source} -> {', '.join(successors)}")
            else:
                lines.append(f"{source} (terminal)")
        return "\n".join(lines)
