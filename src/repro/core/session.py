"""Exploration sessions: budget accounting shared by every approach.

The paper gives every approach the same wall-clock budget (2 hours per
workload) and points out that BFI spends almost all of it *labelling*
candidate injection sites (~10 s per site) rather than simulating.  The
reproduction makes that trade-off explicit: a session has a budget in
abstract units, running one simulation costs ``simulation_cost`` units
and labelling one candidate costs ``labelling_cost`` units.  Ratios
matter, absolute values do not; the defaults approximate the paper's
"a simulation takes minutes, a label takes ten seconds".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from typing import TYPE_CHECKING

from repro.core.runner import RunResult, TestRunner
from repro.firmware.modes import OperatingModeLabel
from repro.hinj.faults import (
    EMPTY_SCENARIO,
    FailureHandle,
    FaultScenario,
    TrafficFailure,
)
from repro.sensors.base import SensorId, SensorRole
from repro.sensors.suite import SensorSuite, iris_sensor_suite

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.cache import ResultCache


@dataclass
class BudgetAccount:
    """Tracks how much of the test budget has been consumed."""

    total_units: float
    simulation_cost: float = 1.0
    labelling_cost: float = 0.15
    spent_units: float = 0.0
    simulations: int = 0
    labels: int = 0

    @property
    def remaining_units(self) -> float:
        """Budget units still available."""
        return max(self.total_units - self.spent_units, 0.0)

    @property
    def exhausted(self) -> bool:
        """True when not even one more simulation fits in the budget."""
        return self.remaining_units < self.simulation_cost

    def can_afford_simulation(self) -> bool:
        """True when one more simulation fits in the budget."""
        return self.remaining_units >= self.simulation_cost

    def can_afford_label(self) -> bool:
        """True when one more labelling call fits in the budget."""
        return self.remaining_units >= self.labelling_cost

    def charge_simulation(self) -> None:
        """Consume the cost of one simulation."""
        self.spent_units += self.simulation_cost
        self.simulations += 1

    def charge_label(self) -> None:
        """Consume the cost of labelling one candidate injection site."""
        self.spent_units += self.labelling_cost
        self.labels += 1


class ExplorationSession:
    """One approach's exploration of the fault space under a budget."""

    def __init__(
        self,
        runner: TestRunner,
        budget: BudgetAccount,
        profiling_run: RunResult,
        suite: Optional[SensorSuite] = None,
        cache: Optional["ResultCache"] = None,
        traffic_failures: Optional[List[TrafficFailure]] = None,
    ) -> None:
        self._runner = runner
        self._budget = budget
        self._profiling_run = profiling_run
        self._suite = suite if suite is not None else iris_sensor_suite()
        self._cache = cache
        self._traffic_failures = list(traffic_failures) if traffic_failures else []
        self._workload_fp: Optional[str] = None
        self._results: List[RunResult] = []
        self._explored: Dict[FaultScenario, RunResult] = {}

    # ------------------------------------------------------------------
    # Context the strategies rely on
    # ------------------------------------------------------------------
    @property
    def runner(self) -> TestRunner:
        """The test runner executing scenarios for this session."""
        return self._runner

    @property
    def budget(self) -> BudgetAccount:
        """The budget account for this session."""
        return self._budget

    @property
    def profiling_run(self) -> RunResult:
        """The fault-free profiling run (mode transitions, duration)."""
        return self._profiling_run

    @property
    def mission_duration(self) -> float:
        """Duration of the fault-free run, in simulated seconds."""
        return self._profiling_run.duration_s

    @property
    def transition_times(self) -> List[float]:
        """Times of the operating-mode transitions in the profiling run."""
        return self._profiling_run.transition_times

    @property
    def fleet_size(self) -> int:
        """Number of vehicles per simulation (from the run configuration)."""
        config = getattr(self._runner, "config", None)
        return getattr(config, "fleet_size", 1)

    @property
    def sensor_ids(self) -> List[SensorId]:
        """Every sensor instance available for fault injection.

        For fleet campaigns the fault space is the suite replicated per
        vehicle: each physical instance appears once per fleet member,
        namespaced by vehicle index.  Fleet size 1 returns the suite's
        own (vehicle 0) ids, exactly as before, so classic campaigns and
        their scenario hashes are untouched.
        """
        base_ids = self._suite.sensor_ids
        fleet_size = self.fleet_size
        if fleet_size == 1:
            return base_ids
        return [
            sensor_id.for_vehicle(vehicle)
            for vehicle in range(fleet_size)
            for sensor_id in base_ids
        ]

    @property
    def traffic_failures(self) -> List["TrafficFailure"]:
        """The coordination fault space opened to this session.

        Empty by default: a session only explores the inter-vehicle
        channel when the caller opted in (``Avis(traffic_faults=True)``
        or an explicit ``traffic_failures`` list), so every classic and
        homogeneous-fleet campaign keeps its exact pre-traffic fault
        space and scenario sequence.
        """
        return list(self._traffic_failures)

    @property
    def injectable_failures(self) -> List[FailureHandle]:
        """Every failure handle a strategy may schedule: the sensor
        instances plus any opted-in coordination failures."""
        return list(self.sensor_ids) + list(self._traffic_failures)

    def sensor_role(self, sensor_id: SensorId) -> SensorRole:
        """Role (primary/backup) of a sensor instance (any fleet member)."""
        return self._suite.role_of(sensor_id.base)

    def mode_label_at(self, time: float) -> str:
        """Operating-mode label at ``time`` in the profiling run."""
        return self._profiling_run.mode_label_at(time)

    def mode_category_at(self, time: float) -> str:
        """Table IV mode category at ``time`` in the profiling run."""
        return OperatingModeLabel.mode_category(self.mode_label_at(time))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def results(self) -> List[RunResult]:
        """Every run executed by this session, in order."""
        return list(self._results)

    @property
    def unsafe_results(self) -> List[RunResult]:
        """Runs that produced at least one unsafe condition."""
        return [result for result in self._results if result.found_unsafe_condition]

    @property
    def explored_scenarios(self) -> Set[FaultScenario]:
        """Scenarios already simulated (the scheduler's hash-set)."""
        return set(self._explored)

    def was_explored(self, scenario: FaultScenario) -> bool:
        """True when ``scenario`` has already been simulated."""
        return scenario in self._explored

    def result_for(self, scenario: FaultScenario) -> Optional[RunResult]:
        """The recorded result of ``scenario``, or None when unexplored.

        Batch proposers use this to consume the outcome of a scenario
        the campaign engine executed and ingested between proposal
        rounds (SABRE's found-bug pruning and queue re-seeding, BFI's
        online model updates).
        """
        return self._explored.get(scenario)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def run_scenario(self, scenario: FaultScenario) -> Optional[RunResult]:
        """Simulate ``scenario`` (once), charging the simulation cost.

        Returns ``None`` when the budget cannot afford another simulation;
        returns the cached result when the scenario was already explored
        (no extra charge -- the scheduler skips redundant exploration).
        """
        if scenario in self._explored:
            return self._explored[scenario]
        if not self._budget.can_afford_simulation():
            return None
        key = None
        if self._cache is not None:
            from repro.engine.cache import (
                adapt_cached_result,
                campaign_fingerprint,
                scenario_key,
            )

            if self._workload_fp is None:
                self._workload_fp = campaign_fingerprint(
                    self._runner.config, getattr(self._runner, "monitor", None)
                )
            key = scenario_key(self._runner.config, self._workload_fp, scenario)
            stored = self._cache.get(key)
            if stored is not None:
                # A hit still charges the simulation cost so warm- and
                # cold-cache campaigns report identical numbers.
                result = adapt_cached_result(stored, self._runner.monitor)
                self._budget.charge_simulation()
                self._explored[scenario] = result
                self._results.append(result)
                return result
        self._budget.charge_simulation()
        result = self._runner.run(scenario)
        if self._cache is not None and key is not None:
            self._cache.put(key, result)
        self._explored[scenario] = result
        self._results.append(result)
        return result

    def reserve_simulation(self) -> bool:
        """Charge one simulation ahead of its execution; False when the
        budget cannot afford it.

        Batch proposals (:meth:`SearchStrategy.propose_batch`) charge
        each proposed scenario here, at proposal time, so the sequence
        of budget charges per candidate is identical to the sequential
        ``explore()`` loop's label/simulate interleaving -- which is
        what keeps batched campaigns bit-identical to sequential ones
        even for strategies that also charge labelling costs.
        """
        if not self._budget.can_afford_simulation():
            return False
        self._budget.charge_simulation()
        return True

    def ingest_result(self, scenario: FaultScenario, result: RunResult) -> None:
        """Record a simulation executed outside the session (by the
        campaign engine's backend).

        The simulation cost was already charged when the scenario was
        proposed (:meth:`reserve_simulation`); this only records.  The
        engine guarantees results arrive in proposal order, so the
        session's result list reads the same as a sequential campaign's.
        """
        self._explored[scenario] = result
        self._results.append(result)

    def charge_label(self) -> bool:
        """Charge one candidate-labelling call; False when unaffordable."""
        if not self._budget.can_afford_label():
            return False
        self._budget.charge_label()
        return True
