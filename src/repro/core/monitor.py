"""The invariant monitor: safety + liveliness + safe-mode invariants.

At the end of every simulation step the monitor checks the two rules of
Section IV-C; when a rule is violated it produces an
:class:`UnsafeCondition` carrying enough detail to reproduce and diagnose
the problem (the fault scenario itself is recorded by the runner, and the
replay module re-executes it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.core.liveliness import (
    LivelinessMonitor,
    LivelinessViolation,
    ToleranceWindow,
    rtl_progress_violation,
    time_in_windows,
)
from repro.core.modegraph import ModeGraph
from repro.core.runner import RunResult, TraceSample
from repro.core.safety import SafetyMonitor, SafetyViolation
from repro.firmware.modes import OperatingModeLabel


def recovery_tolerance_windows(
    scenario, grace_s: float, run_duration_s: Optional[float] = None
) -> List[ToleranceWindow]:
    """The re-convergence tolerance spans of a scenario's intermittent
    faults.

    Each recovering fault (finite ``duration_s``) contributes the span
    from its injection to ``grace_s`` seconds past its recovery: inside
    it, deviation from the profiled behaviour is the *expected* shape of
    a transient fault plus the settle-back, so the liveliness layers do
    not latch a violation there.  Latched faults contribute nothing --
    a scenario without recovery windows keeps the exact classic
    judgement.

    ``run_duration_s`` (supplied by the offline evaluation, which knows
    how long the run actually lasted) drops windows whose recovery never
    landed inside the run: a burst that outlives the mission behaved
    exactly like its latched twin, so it earns no tolerance either.
    """
    if scenario is None:
        return []
    return [
        (fault.start_time, fault.end_time + grace_s)
        for fault in getattr(scenario, "recovering_faults", [])
        if run_duration_s is None or fault.end_time <= run_duration_s
    ]


class UnsafeConditionKind(enum.Enum):
    """The rule a detected unsafe condition violates."""

    SAFETY_COLLISION = "safety-collision"
    SAFETY_SOFTWARE_CRASH = "safety-software-crash"
    LIVELINESS = "liveliness"
    SAFE_MODE_PROGRESS = "safe-mode-progress"
    SEPARATION = "separation"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class UnsafeCondition:
    """One detected violation of the invariant rules."""

    kind: UnsafeConditionKind
    time: float
    mode_label: str
    description: str

    @property
    def is_safety(self) -> bool:
        """True for violations of the safety rule (crashes)."""
        return self.kind in (
            UnsafeConditionKind.SAFETY_COLLISION,
            UnsafeConditionKind.SAFETY_SOFTWARE_CRASH,
        )

    def describe(self) -> str:
        """One-line description used in reports."""
        return (
            f"{self.kind.value} at t={self.time:.2f}s (mode '{self.mode_label}'): "
            f"{self.description}"
        )


class _OnlineProgressTracker:
    """Streams the safe-mode progress invariants while a run executes.

    The offline check in :class:`LivelinessMonitor` operates on the full
    trace; this tracker applies the same window rule sample-by-sample so
    the harness can abort a fly-away-inside-a-fail-safe as soon as it is
    detectable instead of waiting for the workload to time out.
    """

    def __init__(self, liveliness: LivelinessMonitor) -> None:
        self._liveliness = liveliness
        self._samples: List[TraceSample] = []
        self._flagged_labels: Set[str] = set()

    def observe(
        self, sample: TraceSample, tolerate: bool = False
    ) -> Optional[LivelinessViolation]:
        """Stream one sample; ``tolerate`` records it without judging it
        (used inside recovery-tolerance windows, where a stalled
        fail-safe is expected transient behaviour)."""
        self._samples.append(sample)
        if tolerate:
            return None
        if len(self._samples) < 2 or sample.on_ground:
            return None
        if sample.mode_label in self._flagged_labels:
            return None
        if sample.mode_label not in (OperatingModeLabel.LAND, OperatingModeLabel.RTL):
            return None
        sample_period = self._samples[1].time - self._samples[0].time
        if sample_period <= 0.0:
            return None
        window = max(int(self._liveliness.PROGRESS_WINDOW_S / sample_period), 2)
        if len(self._samples) <= window:
            return None
        past = self._samples[-1 - window]
        window_samples = self._samples[-1 - window :]
        if any(item.mode_label != sample.mode_label for item in window_samples):
            # The fail-safe mode was (re)entered mid-window; wait for a
            # full window inside the mode before judging progress.
            return None
        if sample.mode_label == OperatingModeLabel.LAND:
            descent = past.altitude - sample.altitude
            if descent >= self._liveliness.LAND_PROGRESS_M:
                return None
            description = (
                "no descent progress while in the land fail-safe "
                f"({descent:.2f} m over {self._liveliness.PROGRESS_WINDOW_S:.0f} s)"
            )
        else:
            rtl_description = rtl_progress_violation(
                past, sample, self._liveliness.RTL_PROGRESS_M
            )
            if rtl_description is None:
                return None
            description = (
                f"{rtl_description} over {self._liveliness.PROGRESS_WINDOW_S:.0f} s"
            )
        self._flagged_labels.add(sample.mode_label)
        return LivelinessViolation(
            time=sample.time,
            kind="safe-mode-progress",
            description=description,
            mode_label=sample.mode_label,
        )


class InvariantMonitor:
    """Combines the safety, liveliness and separation monitors.

    The minimum-separation invariant only activates for fleet runs: when
    the profiling runs carry fleet separation data
    (:attr:`~repro.core.runner.RunResult.min_separation_m`), the
    threshold is calibrated below the tightest approach the fault-free
    mission exhibits, so golden fleet runs never violate it.  For classic
    single-vehicle campaigns the threshold stays ``None`` and the monitor
    behaves exactly as before.
    """

    #: Calibration: the separation threshold is this fraction of the
    #: tightest fault-free approach, capped at the absolute default.
    SEPARATION_CALIBRATION_FACTOR = 0.5
    #: Absolute cap on the calibrated threshold, in metres.
    MAX_SEPARATION_THRESHOLD_M = 5.0
    #: Seconds past an intermittent fault's recovery during which the
    #: liveliness layers tolerate divergence from the profiled behaviour
    #: (the settle-back).  Safety and separation are never tolerated: a
    #: crash during a transient is still a crash.
    RECOVERY_GRACE_S = 8.0

    def __init__(
        self,
        profiling_runs: Sequence[RunResult],
        safe_mode_labels: Optional[Set[str]] = None,
        impact_speed_threshold: float = 2.0,
        min_position_scale: float = 5.0,
        min_separation_m: Optional[float] = None,
    ) -> None:
        self._safety = SafetyMonitor(impact_speed_threshold=impact_speed_threshold)
        self._liveliness = LivelinessMonitor(
            profiling_runs,
            safe_mode_labels=safe_mode_labels,
            min_position_scale=min_position_scale,
        )
        self._progress_tracker: Optional[_OnlineProgressTracker] = None
        self._vehicle_trackers: Dict[int, _OnlineProgressTracker] = {}
        self._tolerance_windows: List[ToleranceWindow] = []
        if min_separation_m is not None:
            self._separation_threshold: Optional[float] = min_separation_m
        else:
            self._separation_threshold = self._calibrate_separation(profiling_runs)

    @classmethod
    def _calibrate_separation(
        cls, profiling_runs: Sequence[RunResult]
    ) -> Optional[float]:
        """Derive the separation threshold from fleet profiling runs."""
        golden = [
            run.min_separation_m
            for run in profiling_runs
            if run.fleet_size > 1 and run.min_separation_m is not None
        ]
        if not golden:
            return None
        return min(
            min(golden) * cls.SEPARATION_CALIBRATION_FACTOR,
            cls.MAX_SEPARATION_THRESHOLD_M,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def liveliness(self) -> LivelinessMonitor:
        """The liveliness monitor (exposes calibration and mode graph)."""
        return self._liveliness

    @property
    def mode_graph(self) -> ModeGraph:
        """The mode graph built from the profiling runs."""
        return self._liveliness.mode_graph

    @property
    def separation_threshold_m(self) -> Optional[float]:
        """The calibrated minimum-separation threshold (None when the
        monitor was calibrated from single-vehicle profiling runs)."""
        return self._separation_threshold

    def add_safe_mode(self, label: str) -> None:
        """Declare an additional safe mode (developer-supplied)."""
        self._liveliness.add_safe_mode(label)

    # ------------------------------------------------------------------
    # Online interface (used by the harness during a run)
    # ------------------------------------------------------------------
    def begin_run(self, scenario=None) -> None:
        """Reset per-run state before a new run starts.

        ``scenario`` (when the runner supplies it) seeds the recovery
        tolerance windows: while an intermittent fault is active -- and
        for :data:`RECOVERY_GRACE_S` seconds after it recovers -- the
        online liveliness layers tolerate divergence instead of latching
        a violation, so a run is not aborted on the expected transient.
        Latched-only scenarios produce no windows and are judged exactly
        as before.
        """
        self._progress_tracker = _OnlineProgressTracker(self._liveliness)
        self._vehicle_trackers = {}
        self._tolerance_windows = recovery_tolerance_windows(
            scenario, self.RECOVERY_GRACE_S
        )

    def _tolerated(self, time: float) -> bool:
        """True inside a recovery-tolerance window of the current run."""
        return time_in_windows(time, self._tolerance_windows)

    def check_sample(self, sample: TraceSample) -> Optional[UnsafeCondition]:
        """Check one trace sample while the run is executing.

        The liveliness rule and the safe-mode progress invariants are
        evaluated online (safety violations are detected by the
        simulator's collision log as they happen); returning a violation
        lets the harness abort the run early.  Samples inside a recovery
        tolerance window are recorded but not judged.
        """
        tolerated = self._tolerated(sample.time)
        violation = None
        if not tolerated:
            violation = self._liveliness.check_sample(sample)
        if violation is None and self._progress_tracker is not None:
            violation = self._progress_tracker.observe(sample, tolerate=tolerated)
        if violation is None:
            return None
        return self._from_liveliness(violation)

    def check_vehicle_sample(
        self, vehicle: int, sample: TraceSample
    ) -> Optional[UnsafeCondition]:
        """Check one fleet member's trace sample while the run executes.

        Vehicle 0 (the lead) gets the full online treatment of
        :meth:`check_sample`.  Followers fly a different mode sequence
        than the profiled lead, so Equation 1 would false-alarm on them;
        they stream only through the calibration-free safe-mode progress
        windows -- which is exactly what catches a coordination fault
        that strands a follower inside a fail-safe.  Follower violations
        carry a vehicle-namespaced mode label (``v1:rtl``).
        """
        if vehicle == 0:
            return self.check_sample(sample)
        tracker = self._vehicle_trackers.get(vehicle)
        if tracker is None:
            tracker = _OnlineProgressTracker(self._liveliness)
            self._vehicle_trackers[vehicle] = tracker
        violation = tracker.observe(sample, tolerate=self._tolerated(sample.time))
        if violation is None:
            return None
        return self._namespaced(self._from_liveliness(violation), vehicle)

    @staticmethod
    def _namespaced(condition: UnsafeCondition, vehicle: int) -> UnsafeCondition:
        """A follower's condition, labelled with its fleet index -- the
        one format shared by online streaming and offline evaluation."""
        return UnsafeCondition(
            kind=condition.kind,
            time=condition.time,
            mode_label=f"v{vehicle}:{condition.mode_label}",
            description=f"vehicle {vehicle}: {condition.description}",
        )

    # ------------------------------------------------------------------
    # Offline evaluation
    # ------------------------------------------------------------------
    def evaluate(self, result: RunResult) -> List[UnsafeCondition]:
        """Evaluate a completed run against every rule.

        Scope note for fleet runs: safety (collisions, firmware crashes)
        and separation cover every vehicle.  Equation-1 liveliness is
        calibrated from -- and evaluated against -- the lead's trace
        only: follower workload labels follow a different mode sequence
        than the profiled one, so judging them against the lead's
        calibration would produce false alarms.  The calibration-free
        safe-mode progress windows, however, cover every vehicle:
        follower traces are checked with vehicle-namespaced labels,
        matching the online streaming in :meth:`check_vehicle_sample`.

        Scenarios with intermittent faults are judged with recovery
        tolerance: the liveliness layers skip the active-plus-grace
        window of each recovering fault (re-convergence is expected, not
        a bug) while safety and separation stay strict throughout.  A
        fault whose window outlived the run never actually recovered --
        the run is physically the latched one -- so it earns no
        tolerance here, even if the online streaming (which cannot know
        the run's end in advance) deferred judgement; the offline
        verdict computed here is the authoritative one.
        """
        windows = recovery_tolerance_windows(
            result.scenario, self.RECOVERY_GRACE_S, result.duration_s
        )
        conditions: List[UnsafeCondition] = []
        for violation in self._safety.evaluate(result):
            conditions.append(self._from_safety(violation))
        for violation in self._liveliness.evaluate(result, windows):
            conditions.append(self._from_liveliness(violation))
        for vehicle, samples in sorted(result.vehicle_traces.items()):
            if vehicle == 0:
                continue  # the lead is covered by the full evaluation above
            for violation in self._liveliness.check_safe_mode_progress(
                samples, windows
            ):
                conditions.append(
                    self._namespaced(self._from_liveliness(violation), vehicle)
                )
        conditions.extend(self._evaluate_separation(result))
        return sorted(conditions, key=lambda condition: condition.time)

    def _evaluate_separation(self, result: RunResult) -> List[UnsafeCondition]:
        """Separation violations from the run's proximity event log.

        One condition per conflicting pair (the simulator already limits
        the log to one event per conflict entry; the first entry is the
        finding, later re-entries of the same pair add no information).
        The condition's mode label is the lower-indexed vehicle's
        operating mode, namespaced when that vehicle is not the lead.
        """
        if self._separation_threshold is None or not result.proximity_events:
            return []
        conditions: List[UnsafeCondition] = []
        seen_pairs: Set[tuple] = set()
        for event in result.proximity_events:
            pair = (event.vehicle_a, event.vehicle_b)
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            label = result.vehicle_mode_label_at(event.vehicle_a, event.time)
            if event.vehicle_a:
                label = f"v{event.vehicle_a}:{label}"
            conditions.append(
                UnsafeCondition(
                    kind=UnsafeConditionKind.SEPARATION,
                    time=event.time,
                    mode_label=label,
                    description=(
                        f"{event.describe()} "
                        f"(minimum separation {self._separation_threshold:.2f} m)"
                    ),
                )
            )
        return conditions

    # ------------------------------------------------------------------
    # Converters
    # ------------------------------------------------------------------
    @staticmethod
    def _from_safety(violation: SafetyViolation) -> UnsafeCondition:
        kind = (
            UnsafeConditionKind.SAFETY_COLLISION
            if violation.kind == "collision"
            else UnsafeConditionKind.SAFETY_SOFTWARE_CRASH
        )
        return UnsafeCondition(
            kind=kind,
            time=violation.time,
            mode_label=violation.mode_label,
            description=violation.description,
        )

    @staticmethod
    def _from_liveliness(violation: LivelinessViolation) -> UnsafeCondition:
        kind = (
            UnsafeConditionKind.LIVELINESS
            if violation.kind == "liveliness"
            else UnsafeConditionKind.SAFE_MODE_PROGRESS
        )
        return UnsafeCondition(
            kind=kind,
            time=violation.time,
            mode_label=violation.mode_label,
            description=violation.description,
        )


def mode_category_of(condition: UnsafeCondition) -> str:
    """The Table IV mode category (takeoff/manual/waypoint/land) of a condition."""
    return OperatingModeLabel.mode_category(condition.mode_label)
