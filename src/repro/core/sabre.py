"""SABRE: stratified breadth-first exploration of the fault space.

This is Algorithm 1 of the paper.  A profiling run discovers the times of
the operating-mode transitions; the transition queue is seeded with one
entry per transition; each dequeued entry is expanded with every
non-redundant combination of sensor failures injected at that timestamp;
bug-free runs re-enqueue their own transitions (so multi-time,
multi-sensor scenarios are reached), and each entry is finally re-enqueued
with a shifted timestamp so the neighbourhood of every transition is
eventually covered.

One engineering refinement is exposed as a parameter:
``max_scenarios_per_dequeue`` bounds how many new scenarios are simulated
for a single queue entry before the entry is put back (with its
enumeration cursor) at the tail.  With the bound disabled SABRE is
exactly Algorithm 1; with a small bound the same scenarios are explored
in a fairer order across transitions, which matters when the simulation
budget is far smaller than the paper's two hours.  The default campaign
uses a bound of 8.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.pruning import RedundancyPruner
from repro.core.runner import RunResult
from repro.core.session import ExplorationSession
from repro.hinj.faults import EMPTY_SCENARIO, FaultScenario, FaultSpec
from repro.sensors.base import SensorId


@dataclass
class _QueueEntry:
    """One entry of the transition queue: inject at ``timestamp`` on top of
    the already-injected ``base`` scenario, starting at subset ``cursor``."""

    timestamp: float
    base: FaultScenario
    cursor: int = 0


@dataclass
class SabreReport:
    """Summary of one SABRE exploration."""

    simulations: int = 0
    unsafe_scenarios: int = 0
    pruned: int = 0
    queue_exhausted: bool = False


class SabreSearch:
    """Algorithm 1: stratified breadth-first search over injection sites."""

    def __init__(
        self,
        session: ExplorationSession,
        failures: Optional[Sequence[SensorId]] = None,
        max_concurrent_failures: int = 2,
        time_quantum_s: float = 1.0,
        max_scenarios_per_dequeue: Optional[int] = None,
        pruner: Optional[RedundancyPruner] = None,
    ) -> None:
        self._session = session
        self._failures = list(failures) if failures is not None else list(session.sensor_ids)
        if not self._failures:
            raise ValueError("SABRE needs at least one sensor failure to inject")
        self._max_concurrent = max(1, max_concurrent_failures)
        self._time_quantum = time_quantum_s
        self._per_dequeue = max_scenarios_per_dequeue
        self._pruner = (
            pruner
            if pruner is not None
            else RedundancyPruner(role_of=session.sensor_role)
        )
        self._subsets = self._enumerate_subsets()
        self.report = SabreReport()

    # ------------------------------------------------------------------
    # Subset enumeration (the PowerSet of line 5, smallest subsets first)
    # ------------------------------------------------------------------
    def _enumerate_subsets(self) -> List[Tuple[SensorId, ...]]:
        """Failure subsets ordered smallest-and-most-informative first.

        Singletons precede pairs; within a size, subsets failing primary
        instances precede those failing backups (failing an idle backup
        rarely changes behaviour, so it is the least informative probe).
        """
        subsets: List[Tuple[SensorId, ...]] = []
        for size in range(1, self._max_concurrent + 1):
            for combo in itertools.combinations(self._failures, size):
                subsets.append(combo)

        def backup_count(subset: Tuple[SensorId, ...]) -> int:
            from repro.sensors.base import SensorRole

            return sum(
                1
                for sensor_id in subset
                if self._session.sensor_role(sensor_id) == SensorRole.BACKUP
            )

        subsets.sort(
            key=lambda subset: (
                len(subset),
                backup_count(subset),
                tuple(sensor_id.label for sensor_id in subset),
            )
        )
        return subsets

    @property
    def subsets(self) -> List[Tuple[SensorId, ...]]:
        """The ordered failure subsets considered at each injection point."""
        return list(self._subsets)

    @property
    def pruner(self) -> RedundancyPruner:
        """The redundancy pruner (exposes pruning statistics)."""
        return self._pruner

    # ------------------------------------------------------------------
    # The search
    # ------------------------------------------------------------------
    def run(self) -> SabreReport:
        """Execute the search until the queue or the budget is exhausted."""
        session = self._session
        queue: Deque[_QueueEntry] = deque(
            _QueueEntry(timestamp=time, base=EMPTY_SCENARIO)
            for time in self._initial_injection_times()
        )
        if not queue:
            queue.append(_QueueEntry(timestamp=0.0, base=EMPTY_SCENARIO))

        while queue and session.budget.can_afford_simulation():
            entry = queue.popleft()
            ran_this_visit = 0
            cursor = entry.cursor
            while cursor < len(self._subsets):
                if not session.budget.can_afford_simulation():
                    break
                if self._per_dequeue is not None and ran_this_visit >= self._per_dequeue:
                    break
                subset = self._subsets[cursor]
                cursor += 1
                scenario = entry.base.extended(
                    FaultSpec(sensor_id, entry.timestamp) for sensor_id in subset
                )
                if self._pruner.can_prune(scenario) or session.was_explored(scenario):
                    self.report.pruned += 1
                    continue
                result = session.run_scenario(scenario)
                if result is None:
                    break
                ran_this_visit += 1
                self.report.simulations += 1
                self._pruner.record_explored(scenario)
                if result.found_unsafe_condition:
                    self.report.unsafe_scenarios += 1
                    self._pruner.record_bug(scenario)
                else:
                    # Bug-free runs seed deeper, multi-time scenarios.
                    for transition_time in result.transition_times:
                        queue.append(_QueueEntry(timestamp=transition_time, base=scenario))

            if cursor < len(self._subsets):
                # Not finished with this entry: come back to it later.
                queue.append(
                    _QueueEntry(timestamp=entry.timestamp, base=entry.base, cursor=cursor)
                )
            else:
                # Line 20: revisit the neighbourhood of this transition at a
                # later timestamp (bounded by the mission duration).
                shifted_time = entry.timestamp + self._time_quantum
                if shifted_time <= self._session.mission_duration:
                    queue.append(_QueueEntry(timestamp=shifted_time, base=entry.base))

        self.report.queue_exhausted = not queue
        return self.report

    def _profile_transition_times(self) -> List[float]:
        """The injection timestamps discovered by the profiling run."""
        times = self._session.transition_times
        # The initial "preflight" announcement at t=0 is not a transition
        # between flight operations; keep it only if nothing else exists.
        meaningful = [time for time in times if time > 0.0]
        return meaningful if meaningful else times

    def _initial_injection_times(self) -> List[float]:
        """Seed injection points: each transition and its near neighbourhood.

        Avis injects failures *around* mode transitions: the transition
        instant itself (where the failure lands at the tail of the
        outgoing mode) and one time quantum into the new mode (where it
        lands at the head of the incoming mode).  Both sides of the
        boundary are critical windows.
        """
        duration = self._session.mission_duration
        times: List[float] = []
        for time in self._profile_transition_times():
            for candidate in (time, time + self._time_quantum):
                if candidate <= duration and candidate not in times:
                    times.append(candidate)
        return times
