"""SABRE: stratified breadth-first exploration of the fault space.

This is Algorithm 1 of the paper.  A profiling run discovers the times of
the operating-mode transitions; the transition queue is seeded with one
entry per transition; each dequeued entry is expanded with every
non-redundant combination of sensor failures injected at that timestamp;
bug-free runs re-enqueue their own transitions (so multi-time,
multi-sensor scenarios are reached), and each entry is finally re-enqueued
with a shifted timestamp so the neighbourhood of every transition is
eventually covered.

One engineering refinement is exposed as a parameter:
``max_scenarios_per_dequeue`` bounds how many new scenarios are simulated
for a single queue entry before the entry is put back (with its
enumeration cursor) at the tail.  With the bound disabled SABRE is
exactly Algorithm 1; with a small bound the same scenarios are explored
in a fairer order across transitions, which matters when the simulation
budget is far smaller than the paper's two hours.  The default campaign
uses a bound of 8.

Three extensions, all off by default so classic campaigns are untouched:

* The ``failures`` sequence accepts any
  :data:`~repro.hinj.faults.FailureHandle` -- sensor instances and
  traffic-channel handles alike -- so the coordination fault family
  (beacon dropout/freeze/delay) is explored exactly like sensor
  failures.
* ``separation_aware=True`` replaces the FIFO dequeue with a weighted
  one: each queue entry's injection window is scored by the minimum
  pairwise fleet separation the profiling run exhibited inside that
  mode window, and the tightest-geometry window is dequeued first
  (ties in FIFO order).  Takeoff, formation joins and return legs are
  probed before wide-open cruise, which measurably shortens the path
  to the first separation violation.  The weighting engages only when
  the profiling run carries fleet separation data; otherwise -- and for
  every single-vehicle campaign -- the queue is bit-identical FIFO.
* ``burst_durations`` opens the *recovery-window* axis: besides the
  latched faults of Algorithm 1, every dequeued transition is expanded
  with intermittent variants of each failure subset -- the fault window
  opens at the transition-anchored timestamp (inside the profiled mode
  window SABRE is probing) and closes ``duration`` seconds later.  The
  latched subsets are enumerated first, in exactly their classic order,
  so the default (no burst durations) is bit-identical to before; a
  burst whose recovery would land beyond the mission end is skipped as
  behaviourally latched-equivalent.

Batched exploration
-------------------

SABRE is feedback-driven: an unsafe result feeds the found-bug pruner and
a bug-free result re-seeds the transition queue.  The search is therefore
implemented as a *resumable proposal machine* rather than a plain loop:

* :meth:`SabreSearch.propose_batch` walks the dequeue -> candidate
  expansion exactly as the sequential loop would -- same budget checks,
  same pruning decisions, same cursor bookkeeping -- but instead of
  simulating each accepted candidate it *reserves* its simulation cost
  and appends it to the batch.  Feedback that depends on a run's outcome
  (found-bug pruning, queue re-seeding, the end-of-visit re-enqueue that
  must follow it) is written to a pending log.
* The campaign engine executes the whole batch concurrently on its
  execution backend and ingests every result into the session in
  proposal order.
* The next :meth:`propose_batch` call replays the pending log in
  canonical order -- bugs recorded, transitions enqueued, entries
  re-enqueued exactly where the sequential loop would have put them --
  before proposing more work.

The one place a candidate's *admission* genuinely depends on an outcome
still in flight is found-bug pruning: a strict superset of an in-flight
scenario must be skipped if that scenario turns out unsafe.  The machine
cuts the batch immediately before any such candidate (the cursor is not
advanced), so the decision is re-taken next round with full knowledge.
Everything else that feeds ``CanPrune`` -- duplicate and symmetry
pruning -- depends only on a candidate having been *explored*, which is
certain the moment its simulation is reserved, so that state is applied
eagerly at proposal time.

The result is the PR 1 determinism contract for the paper's headline
strategy: a batched campaign is bit-identical to the sequential one --
same scenarios in the same order, same budget trajectory, same pruning
statistics -- at every budget.  :meth:`SabreSearch.run` itself is the
machine driven at batch size one with immediate feedback, which reduces
to Algorithm 1 by construction.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import (
    Deque,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.pruning import RedundancyPruner
from repro.core.session import ExplorationSession
from repro.obs import runtime as obs_runtime
from repro.hinj.faults import (
    EMPTY_SCENARIO,
    BurstFailure,
    FailureHandle,
    FaultScenario,
    FaultSpec,
    spec_for,
    validate_burst_durations,
)
from repro.sensors.base import SensorId


@dataclass
class _QueueEntry:
    """One entry of the transition queue: inject at ``timestamp`` on top of
    the already-injected ``base`` scenario, starting at subset ``cursor``."""

    timestamp: float
    base: FaultScenario
    cursor: int = 0


#: Pending-feedback operations, replayed in canonical (sequential) order:
#: ``("ran", scenario)`` consumes the scenario's result -- record the bug
#: or re-seed the queue; ``("requeue", entry)`` re-enqueues a visited
#: entry behind the queue appends of the runs that preceded it.
_PendingOp = Tuple[str, Union[FaultScenario, _QueueEntry]]


@dataclass
class SabreReport:
    """Summary of one SABRE exploration."""

    simulations: int = 0
    unsafe_scenarios: int = 0
    pruned: int = 0
    queue_exhausted: bool = False


class SabreSearch:
    """Algorithm 1: stratified breadth-first search over injection sites."""

    def __init__(
        self,
        session: ExplorationSession,
        failures: Optional[Sequence[FailureHandle]] = None,
        max_concurrent_failures: int = 2,
        time_quantum_s: float = 1.0,
        max_scenarios_per_dequeue: Optional[int] = None,
        pruner: Optional[RedundancyPruner] = None,
        separation_aware: bool = False,
        burst_durations: Sequence[float] = (),
    ) -> None:
        self._session = session
        self._failures = list(failures) if failures is not None else list(session.sensor_ids)
        if not self._failures:
            raise ValueError("SABRE needs at least one sensor failure to inject")
        self._max_concurrent = max(1, max_concurrent_failures)
        self._time_quantum = time_quantum_s
        self._per_dequeue = max_scenarios_per_dequeue
        self._pruner = (
            pruner
            if pruner is not None
            else RedundancyPruner(role_of=session.sensor_role)
        )
        self._burst_durations = list(validate_burst_durations(burst_durations))
        if self._burst_durations and any(
            isinstance(failure, BurstFailure) for failure in self._failures
        ):
            # A burst handle carries its own window; sweeping it again
            # with burst_durations would schedule conflicting windows.
            raise ValueError(
                "failures already contain burst handles: pass either "
                "pre-burst handles or burst_durations, not both"
            )
        self._subsets = self._enumerate_subsets()
        # The per-dequeue expansion walks (subset, window) variants: the
        # latched subsets first, in exactly the classic order -- so with
        # no burst durations the variant list IS the subset list and the
        # search is bit-identical to the pre-window engine -- then every
        # subset again per burst duration.
        self._variants: List[Tuple[Tuple[FailureHandle, ...], Optional[float]]] = [
            (subset, None) for subset in self._subsets
        ] + [
            (subset, duration)
            for duration in self._burst_durations
            for subset in self._subsets
        ]
        self.report = SabreReport()
        # --- separation-aware dequeue ordering ------------------------
        # Weighted dequeue only engages when asked for AND the profiling
        # run carries fleet separation data; otherwise the queue is the
        # exact FIFO of Algorithm 1 (bit-identical to every pre-feature
        # campaign).
        self._separation_profile = (
            self._build_separation_profile() if separation_aware else []
        )
        self._separation_aware = bool(self._separation_profile)
        self._separation_weights: dict = {}
        # --- proposal-machine state -----------------------------------
        self._queue: Optional[Deque[_QueueEntry]] = None
        self._visit_entry: Optional[_QueueEntry] = None
        self._visit_cursor: int = 0
        self._visit_ran: int = 0
        self._pending_ops: List[_PendingOp] = []
        self._in_flight: List[FrozenSet[FaultSpec]] = []
        self._finished = False
        # Batch cuts forced by found-bug dependencies on in-flight runs.
        # Deliberately NOT part of SabreReport: a sequential run never
        # defers, and the report must stay bit-identical across drivers.
        self.in_flight_cuts = 0

    # ------------------------------------------------------------------
    # Subset enumeration (the PowerSet of line 5, smallest subsets first)
    # ------------------------------------------------------------------
    def _enumerate_subsets(self) -> List[Tuple[FailureHandle, ...]]:
        """Failure subsets ordered smallest-and-most-informative first.

        Singletons precede pairs; within a size, subsets failing primary
        instances precede those failing backups (failing an idle backup
        rarely changes behaviour, so it is the least informative probe).
        Coordination failure handles have no redundancy role and count
        as primaries.
        """
        subsets: List[Tuple[FailureHandle, ...]] = []
        for size in range(1, self._max_concurrent + 1):
            for combo in itertools.combinations(self._failures, size):
                subsets.append(combo)

        def backup_count(subset: Tuple[FailureHandle, ...]) -> int:
            from repro.sensors.base import SensorRole

            return sum(
                1
                for sensor_id in subset
                if isinstance(sensor_id, SensorId)
                and self._session.sensor_role(sensor_id) == SensorRole.BACKUP
            )

        subsets.sort(
            key=lambda subset: (
                len(subset),
                backup_count(subset),
                tuple(sensor_id.label for sensor_id in subset),
            )
        )
        return subsets

    @property
    def subsets(self) -> List[Tuple[FailureHandle, ...]]:
        """The ordered failure subsets considered at each injection point."""
        return list(self._subsets)

    @property
    def variants(self) -> List[Tuple[Tuple[FailureHandle, ...], Optional[float]]]:
        """The ordered (subset, recovery window) variants actually walked
        at each injection point: the latched subsets, then the burst
        expansions (empty ``burst_durations`` leaves only the former)."""
        return list(self._variants)

    @property
    def burst_durations(self) -> List[float]:
        """The recovery windows explored next to the latched faults."""
        return list(self._burst_durations)

    @property
    def separation_aware(self) -> bool:
        """True when the weighted (tightest-geometry-first) dequeue is
        active -- it engages only when requested *and* the profiling run
        carries fleet separation data."""
        return self._separation_aware

    @property
    def pruner(self) -> RedundancyPruner:
        """The redundancy pruner (exposes pruning statistics)."""
        return self._pruner

    @property
    def session(self) -> ExplorationSession:
        """The exploration session this search charges and records into."""
        return self._session

    @property
    def max_scenarios_per_dequeue(self) -> Optional[int]:
        """The per-dequeue simulation bound (None disables it)."""
        return self._per_dequeue

    @property
    def finished(self) -> bool:
        """True once the queue or the budget has been exhausted."""
        return self._finished

    # ------------------------------------------------------------------
    # Separation-aware dequeue ordering
    # ------------------------------------------------------------------
    def _build_separation_profile(self) -> List[Tuple[float, float]]:
        """(time, min pairwise separation) samples from the profiling run.

        Built from the per-vehicle traces the fleet harness records;
        empty for single-vehicle profiles, which leaves the feature
        inert.  Only samples with at least two airborne vehicles count:
        vehicles parked on their pads are not traffic.
        """
        import math

        profile = self._session.profiling_run
        traces = getattr(profile, "vehicle_traces", None)
        if not traces or len(traces) < 2:
            return []
        samples: List[Tuple[float, float]] = []
        length = min(len(trace) for trace in traces.values())
        ordered = [traces[vehicle] for vehicle in sorted(traces)]
        for index in range(length):
            airborne = [
                trace[index].position
                for trace in ordered
                if not trace[index].on_ground
            ]
            if len(airborne) < 2:
                continue
            separation = min(
                math.dist(airborne[a], airborne[b])
                for a in range(len(airborne))
                for b in range(a + 1, len(airborne))
            )
            samples.append((ordered[0][index].time, separation))
        return samples

    def _window_separation(self, timestamp: float) -> float:
        """The tightest profiled separation in the mode window opened at
        ``timestamp``.

        The window runs from the injection time to the next profiled
        mode transition (or the mission end): a fault injected at ``t``
        lands in the mode in effect until that boundary, so the whole
        window's geometry is what the injection can perturb.  ``inf``
        when the window never has an airborne pair -- an injection there
        cannot tighten any fleet geometry.
        """
        weight = self._separation_weights.get(timestamp)
        if weight is not None:
            return weight
        window_end = self._session.mission_duration
        for transition_time in self._session.transition_times:
            if transition_time > timestamp:
                window_end = min(window_end, transition_time)
                break
        window_end = max(window_end, timestamp + self._time_quantum)
        weight = min(
            (
                separation
                for time, separation in self._separation_profile
                if timestamp <= time <= window_end
            ),
            default=float("inf"),
        )
        self._separation_weights[timestamp] = weight
        return weight

    def _pop_entry(self) -> _QueueEntry:
        """Dequeue the next transition entry.

        Uniform SABRE pops FIFO (Algorithm 1).  Separation-aware SABRE
        pops the entry whose injection window showed the tightest fleet
        geometry during profiling, breaking ties in FIFO order -- so
        takeoff, formation joins and crossings are explored before
        wide-open cruise windows, and the ordering degenerates to FIFO
        exactly when every window is equally tight.
        """
        assert self._queue is not None
        if not self._separation_aware:
            return self._queue.popleft()
        best_index = 0
        best_weight = self._window_separation(self._queue[0].timestamp)
        for index in range(1, len(self._queue)):
            weight = self._window_separation(self._queue[index].timestamp)
            if weight < best_weight:
                best_index = index
                best_weight = weight
        entry = self._queue[best_index]
        del self._queue[best_index]
        return entry

    # ------------------------------------------------------------------
    # The proposal machine
    # ------------------------------------------------------------------
    def _start(self) -> None:
        if self._queue is not None:
            return
        self._queue = deque(
            _QueueEntry(timestamp=time, base=EMPTY_SCENARIO)
            for time in self._initial_injection_times()
        )
        if not self._queue:
            self._queue.append(_QueueEntry(timestamp=0.0, base=EMPTY_SCENARIO))

    def _apply_feedback(self) -> None:
        """Replay the pending log in canonical order.

        Every ``"ran"`` scenario's result must already be in the session
        (the engine ingests the whole batch, in proposal order, before
        asking for more work; the sequential driver runs each scenario
        before re-entering the machine).
        """
        assert self._queue is not None
        for op, payload in self._pending_ops:
            if op == "ran":
                scenario = payload
                result = self._session.result_for(scenario)
                if result is None:
                    raise RuntimeError(
                        "batched SABRE proposed a scenario whose result was "
                        "never ingested -- the engine must record every "
                        "proposed scenario before the next proposal round"
                    )
                if result.found_unsafe_condition:
                    self.report.unsafe_scenarios += 1
                    self._pruner.record_bug(scenario)
                else:
                    # Bug-free runs seed deeper, multi-time scenarios.
                    for transition_time in result.transition_times:
                        self._queue.append(
                            _QueueEntry(timestamp=transition_time, base=scenario)
                        )
            else:
                self._queue.append(payload)
        self._pending_ops.clear()
        self._in_flight.clear()

    def _emit_requeue(self, entry: _QueueEntry) -> None:
        """Re-enqueue ``entry``, behind any queue appends still pending."""
        if self._pending_ops:
            self._pending_ops.append(("requeue", entry))
        else:
            assert self._queue is not None
            self._queue.append(entry)

    def _end_visit(self, completed: bool) -> None:
        entry = self._visit_entry
        assert entry is not None
        if not completed:
            # Not finished with this entry: come back to it later.
            self._emit_requeue(
                _QueueEntry(
                    timestamp=entry.timestamp,
                    base=entry.base,
                    cursor=self._visit_cursor,
                )
            )
        else:
            # Line 20: revisit the neighbourhood of this transition at a
            # later timestamp (bounded by the mission duration).
            shifted_time = entry.timestamp + self._time_quantum
            if shifted_time <= self._session.mission_duration:
                self._emit_requeue(
                    _QueueEntry(timestamp=shifted_time, base=entry.base)
                )
        self._visit_entry = None

    def _depends_on_in_flight(self, scenario: FaultScenario) -> bool:
        """True when the sequential loop *might* prune ``scenario`` based
        on the outcome of a simulation still in flight.

        Found-bug pruning skips strict supersets of a scenario that
        triggered a bug, so a candidate is only outcome-dependent when
        its fault set strictly contains an in-flight scenario's faults.
        """
        if not self._in_flight or not self._pruner.found_bug_pruning_enabled:
            return False
        faults = frozenset(scenario)
        return any(pending < faults for pending in self._in_flight)

    def propose_batch(
        self, max_scenarios: int, charge: bool = True
    ) -> List[FaultScenario]:
        """Propose up to ``max_scenarios`` independent scenarios.

        Walks the dequeue expansion in sequential order, charging one
        simulation per accepted candidate (``charge=False`` leaves the
        charging to a sequential driver that simulates immediately).
        Returns ``[]`` once the queue or the budget is exhausted; a
        non-empty batch must be fully simulated and ingested into the
        session before the next call.
        """
        session = self._session
        self._start()
        self._apply_feedback()
        assert self._queue is not None
        obs = obs_runtime.current()
        if obs is not None:
            obs.metrics.gauge("sabre.queue_depth").set(len(self._queue))
        batch: List[FaultScenario] = []
        while len(batch) < max_scenarios and not self._finished:
            if self._visit_entry is None:
                # The outer loop: pop the next entry, if any work remains.
                if not self._queue:
                    if self._pending_ops:
                        # In-flight runs may refill the queue; wait.
                        break
                    self._finished = True
                    break
                if not session.budget.can_afford_simulation():
                    self._finished = True
                    break
                entry = self._pop_entry()
                self._visit_entry = entry
                self._visit_cursor = entry.cursor
                self._visit_ran = 0
            entry = self._visit_entry
            # The inner loop's exit conditions, in sequential order.
            if self._visit_cursor >= len(self._variants):
                self._end_visit(completed=True)
                continue
            if not session.budget.can_afford_simulation():
                self._end_visit(completed=False)
                continue
            if self._per_dequeue is not None and self._visit_ran >= self._per_dequeue:
                self._end_visit(completed=False)
                continue
            subset, duration = self._variants[self._visit_cursor]
            if (
                duration is not None
                and entry.timestamp + duration >= session.mission_duration
            ):
                # The window would outlive the mission: behaviourally the
                # latched variant, which is enumerated separately -- skip
                # rather than spend budget on a duplicate probe.
                self._visit_cursor += 1
                self.report.pruned += 1
                if obs is not None:
                    obs.metrics.counter(
                        "sabre.pruned", reason="latched_equivalent"
                    ).inc()
                continue
            scenario = entry.base.extended(
                spec_for(failure, entry.timestamp, duration) for failure in subset
            )
            if self._depends_on_in_flight(scenario):
                # Admission depends on an outcome still in flight: cut the
                # batch here (cursor untouched) and re-decide next round.
                self.in_flight_cuts += 1
                if obs is not None:
                    obs.metrics.counter(
                        "sabre.batch_cuts", reason="in_flight_dependency"
                    ).inc()
                break
            self._visit_cursor += 1
            # Evaluated in the sequential loop's exact short-circuit order;
            # split only so the prune reason can be attributed.
            if self._pruner.can_prune(scenario):
                self.report.pruned += 1
                if obs is not None:
                    obs.metrics.counter("sabre.pruned", reason="redundant").inc()
                continue
            if session.was_explored(scenario):
                self.report.pruned += 1
                if obs is not None:
                    obs.metrics.counter("sabre.pruned", reason="explored").inc()
                continue
            if charge and not session.reserve_simulation():
                # Unreachable in practice: affordability was checked just
                # above and nothing has charged the budget since.
                self._visit_cursor -= 1
                self._end_visit(completed=False)
                continue
            self._visit_ran += 1
            self.report.simulations += 1
            if obs is not None:
                obs.metrics.counter(
                    "sabre.proposed",
                    variant="burst" if duration is not None else "latched",
                ).inc()
            # Exploration is certain from this point on, so duplicate and
            # symmetry pruning may see the candidate immediately.
            self._pruner.record_explored(scenario)
            self._in_flight.append(frozenset(scenario))
            self._pending_ops.append(("ran", scenario))
            batch.append(scenario)
        if self._finished and not self._pending_ops:
            self.report.queue_exhausted = not self._queue
        return batch

    # ------------------------------------------------------------------
    # The sequential search (the machine at batch size one)
    # ------------------------------------------------------------------
    def run(self) -> SabreReport:
        """Execute the search until the queue or the budget is exhausted."""
        session = self._session
        while True:
            batch = self.propose_batch(1, charge=False)
            if not batch:
                break
            # run_scenario charges the simulation the machine accounted
            # for (charge=False) and records the result, so the next
            # proposal immediately consumes its feedback.
            session.run_scenario(batch[0])
        return self.report

    def _profile_transition_times(self) -> List[float]:
        """The injection timestamps discovered by the profiling run."""
        times = self._session.transition_times
        # The initial "preflight" announcement at t=0 is not a transition
        # between flight operations; keep it only if nothing else exists.
        meaningful = [time for time in times if time > 0.0]
        return meaningful if meaningful else times

    def _initial_injection_times(self) -> List[float]:
        """Seed injection points: each transition and its near neighbourhood.

        Avis injects failures *around* mode transitions: the transition
        instant itself (where the failure lands at the tail of the
        outgoing mode) and one time quantum into the new mode (where it
        lands at the head of the incoming mode).  Both sides of the
        boundary are critical windows.
        """
        duration = self._session.mission_duration
        times: List[float] = []
        for time in self._profile_transition_times():
            for candidate in (time, time + self._time_quantum):
                if candidate <= duration and candidate not in times:
                    times.append(candidate)
        return times
