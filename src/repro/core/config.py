"""Run configuration: everything needed to provision one test run.

The paper provisions "a new instance of the simulator and firmware" at
the start of each test; :class:`RunConfiguration` is the recipe for that
provisioning, shared by the profiling runs, the search strategies, and
bug replay so that every run of a campaign is built identically.

Fleet composition is a first-class, per-vehicle concept: a
:class:`VehicleSpec` names one fleet member's firmware flavour, airframe
and parameter overrides, and ``RunConfiguration.vehicles`` holds one
spec per fleet member so a single campaign can fly an ArduPilot Iris
lead with a PX4 Solo wing.  The classic scalar fields
(``firmware_class``, ``airframe``, ``firmware_params``) remain as
aliases for vehicle 0 -- every existing construction keeps working, and
``fleet_size=N`` with identical specs is bit-identical (including cache
keys) to the pre-spec fleet engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple, Type

from repro.firmware.ardupilot import ArduPilotFirmware
from repro.firmware.base import ControlFirmware
from repro.firmware.params import FirmwareParameters
from repro.sim.environment import Environment, default_environment
from repro.sim.vehicle import IRIS_QUADCOPTER, AirframeParameters
from repro.workloads.builtin import AutoWorkload
from repro.workloads.framework import Target


@dataclass(frozen=True)
class VehicleSpec:
    """Everything vehicle-specific about one fleet member's provisioning.

    Attributes
    ----------
    firmware_class:
        The firmware flavour this vehicle runs (:class:`ArduPilotFirmware`
        or :class:`Px4Firmware`).
    airframe:
        The vehicle's airframe parameters.
    firmware_params:
        Optional firmware parameter overrides (None uses the flavour's
        defaults).
    """

    firmware_class: Type[ControlFirmware] = ArduPilotFirmware
    airframe: AirframeParameters = IRIS_QUADCOPTER
    firmware_params: Optional[FirmwareParameters] = None

    @property
    def firmware_name(self) -> str:
        """The flavour name of this vehicle's firmware class."""
        return self.firmware_class.name

    def describe(self) -> str:
        """Short human-readable description used in reports and cell ids."""
        extra = "+params" if self.firmware_params is not None else ""
        return f"{self.firmware_name}/{self.airframe.name}{extra}"


@dataclass
class RunConfiguration:
    """Recipe for provisioning one simulated test run.

    Attributes
    ----------
    firmware_class:
        The firmware flavour to check (:class:`ArduPilotFirmware` or
        :class:`Px4Firmware`).  Alias for vehicle 0's spec.
    workload_factory:
        Zero-argument callable returning a fresh workload instance.
    environment_factory:
        Zero-argument callable returning a fresh environment.
    airframe:
        Airframe parameters (the Iris in every paper experiment).  Alias
        for vehicle 0's spec.
    firmware_params:
        Optional firmware parameter overrides (None uses the flavour's
        defaults).  Alias for vehicle 0's spec.
    dt:
        Simulation time-step in seconds.  The paper steps at 1 ms; the
        pure-Python reproduction defaults to 20 ms, which is fast enough
        for the controllers and keeps campaigns tractable.
    max_sim_time_s:
        Hard cap on simulated time per run (fly-away runs would otherwise
        never terminate).
    sample_interval_steps:
        The trace (and the liveliness check) is sampled every this many
        steps.
    noise_seed:
        Seed for the deterministic sensor noise.  Profiling runs vary it
        to obtain the run-to-run spread the liveliness threshold needs.
    reinserted_bugs:
        Previously-known bug ids to re-insert (Table V experiments).
    disabled_bugs:
        Bug ids to disable (i.e. treat as fixed).
    stop_on_unsafe:
        Abort a run as soon as the invariant monitor reports a violation
        (saves simulation budget; the paper's runs likewise end once an
        unsafe condition has been recorded).
    fleet_size:
        Number of vehicles hosted by one simulation.  The default of 1
        is the classic Avis setup and is bit-identical to the
        pre-fleet engine; fleet workloads (:mod:`repro.workloads.fleet`)
        need 2 or more.
    fleet_pad_spacing_m:
        East spacing between fleet launch pads, in metres.
    vehicles:
        Optional per-vehicle :class:`VehicleSpec` sequence.  When given,
        it defines the fleet: ``fleet_size`` is derived from its length
        (an explicitly passed ``fleet_size`` must agree) and the scalar
        aliases above are synchronised to vehicle 0's spec.  When
        omitted, every fleet member uses the scalar fields -- the
        classic homogeneous fleet.
    traffic_beacon_interval_s:
        Period of each fleet member's position/velocity beacon broadcast
        over the inter-vehicle traffic channel (fleet runs only).
    traffic_latency_s:
        Nominal delivery latency of a traffic beacon, in seconds.
    stepper:
        Simulation stepping mode.  ``reference`` (default) is the
        original per-vehicle lock-step loop; ``soa`` advances the fleet
        through the batched structure-of-arrays physics core
        (bit-identical to ``reference``, including cache keys); and
        ``adaptive`` additionally fuses micro-steps while no fault
        window, workload checkpoint, mode transition or proximity
        hazard is near (same safety verdicts, distinct cache keys).
    """

    #: Stepping modes accepted by :attr:`stepper`.
    STEPPERS = ("reference", "soa", "adaptive")

    firmware_class: Type[ControlFirmware] = ArduPilotFirmware
    workload_factory: Callable[[], Target] = AutoWorkload
    environment_factory: Callable[[], Environment] = default_environment
    airframe: AirframeParameters = IRIS_QUADCOPTER
    firmware_params: Optional[FirmwareParameters] = None
    dt: float = 0.02
    max_sim_time_s: float = 160.0
    sample_interval_steps: int = 5
    noise_seed: int = 0
    reinserted_bugs: Tuple[str, ...] = ()
    disabled_bugs: Tuple[str, ...] = ()
    stop_on_unsafe: bool = True
    fleet_size: int = 1
    fleet_pad_spacing_m: float = 8.0
    vehicles: Optional[Tuple[VehicleSpec, ...]] = None
    traffic_beacon_interval_s: float = 0.2
    traffic_latency_s: float = 0.1
    stepper: str = "reference"

    def __post_init__(self) -> None:
        if self.vehicles is not None:
            self.vehicles = tuple(self.vehicles)
            if not self.vehicles:
                raise ValueError("vehicles, when given, needs at least one spec")
            if self.fleet_size == 1 and len(self.vehicles) != 1:
                self.fleet_size = len(self.vehicles)
            elif self.fleet_size != len(self.vehicles):
                raise ValueError(
                    f"fleet_size={self.fleet_size} disagrees with "
                    f"{len(self.vehicles)} vehicle spec(s)"
                )
            # The scalar fields are aliases for vehicle 0: keep them (and
            # everything that reads them -- reports, fingerprints, the
            # lead facades) pointing at the lead's spec.
            lead = self.vehicles[0]
            self.firmware_class = lead.firmware_class
            self.airframe = lead.airframe
            self.firmware_params = lead.firmware_params
        if self.fleet_size < 1:
            raise ValueError("fleet_size must be at least 1")
        if self.traffic_beacon_interval_s <= 0.0:
            raise ValueError("traffic_beacon_interval_s must be positive")
        if self.traffic_latency_s < 0.0:
            raise ValueError("traffic_latency_s cannot be negative")
        if self.stepper not in self.STEPPERS:
            raise ValueError(
                f"unknown stepper {self.stepper!r}; expected one of {self.STEPPERS}"
            )

    def with_noise_seed(self, noise_seed: int) -> "RunConfiguration":
        """Return a copy of the configuration with a different noise seed."""
        return RunConfiguration(
            firmware_class=self.firmware_class,
            workload_factory=self.workload_factory,
            environment_factory=self.environment_factory,
            airframe=self.airframe,
            firmware_params=self.firmware_params,
            dt=self.dt,
            max_sim_time_s=self.max_sim_time_s,
            sample_interval_steps=self.sample_interval_steps,
            noise_seed=noise_seed,
            reinserted_bugs=self.reinserted_bugs,
            disabled_bugs=self.disabled_bugs,
            stop_on_unsafe=self.stop_on_unsafe,
            fleet_size=self.fleet_size,
            fleet_pad_spacing_m=self.fleet_pad_spacing_m,
            vehicles=self.vehicles,
            traffic_beacon_interval_s=self.traffic_beacon_interval_s,
            traffic_latency_s=self.traffic_latency_s,
            stepper=self.stepper,
        )

    # ------------------------------------------------------------------
    # Per-vehicle specs
    # ------------------------------------------------------------------
    @property
    def lead_spec(self) -> VehicleSpec:
        """Vehicle 0's spec (the scalar aliases, as one object)."""
        return VehicleSpec(
            firmware_class=self.firmware_class,
            airframe=self.airframe,
            firmware_params=self.firmware_params,
        )

    def vehicle_spec(self, vehicle: int) -> VehicleSpec:
        """The provisioning spec of fleet member ``vehicle``."""
        if not 0 <= vehicle < self.fleet_size:
            raise IndexError(
                f"no vehicle {vehicle} in a fleet of {self.fleet_size}"
            )
        if self.vehicles is not None:
            return self.vehicles[vehicle]
        return self.lead_spec

    @property
    def vehicle_specs(self) -> Tuple[VehicleSpec, ...]:
        """One spec per fleet member, in vehicle order."""
        if self.vehicles is not None:
            return self.vehicles
        return tuple(self.lead_spec for _ in range(self.fleet_size))

    @property
    def is_heterogeneous(self) -> bool:
        """True when at least one fleet member differs from the lead.

        Homogeneous configurations -- whether expressed through the
        scalar aliases or through an explicit ``vehicles`` tuple of
        identical specs -- are the classic fleet and must fingerprint
        (and therefore cache) identically.
        """
        if self.vehicles is None:
            return False
        lead = self.vehicles[0]
        return any(spec != lead for spec in self.vehicles[1:])

    @property
    def firmware_name(self) -> str:
        """The flavour name of the configured (lead) firmware class."""
        return self.firmware_class.name
