"""Run configuration: everything needed to provision one test run.

The paper provisions "a new instance of the simulator and firmware" at
the start of each test; :class:`RunConfiguration` is the recipe for that
provisioning, shared by the profiling runs, the search strategies, and
bug replay so that every run of a campaign is built identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple, Type

from repro.firmware.ardupilot import ArduPilotFirmware
from repro.firmware.base import ControlFirmware
from repro.firmware.params import FirmwareParameters
from repro.sim.environment import Environment, default_environment
from repro.sim.vehicle import IRIS_QUADCOPTER, AirframeParameters
from repro.workloads.builtin import AutoWorkload
from repro.workloads.framework import Target


@dataclass
class RunConfiguration:
    """Recipe for provisioning one simulated test run.

    Attributes
    ----------
    firmware_class:
        The firmware flavour to check (:class:`ArduPilotFirmware` or
        :class:`Px4Firmware`).
    workload_factory:
        Zero-argument callable returning a fresh workload instance.
    environment_factory:
        Zero-argument callable returning a fresh environment.
    airframe:
        Airframe parameters (the Iris in every paper experiment).
    firmware_params:
        Optional firmware parameter overrides (None uses the flavour's
        defaults).
    dt:
        Simulation time-step in seconds.  The paper steps at 1 ms; the
        pure-Python reproduction defaults to 20 ms, which is fast enough
        for the controllers and keeps campaigns tractable.
    max_sim_time_s:
        Hard cap on simulated time per run (fly-away runs would otherwise
        never terminate).
    sample_interval_steps:
        The trace (and the liveliness check) is sampled every this many
        steps.
    noise_seed:
        Seed for the deterministic sensor noise.  Profiling runs vary it
        to obtain the run-to-run spread the liveliness threshold needs.
    reinserted_bugs:
        Previously-known bug ids to re-insert (Table V experiments).
    disabled_bugs:
        Bug ids to disable (i.e. treat as fixed).
    stop_on_unsafe:
        Abort a run as soon as the invariant monitor reports a violation
        (saves simulation budget; the paper's runs likewise end once an
        unsafe condition has been recorded).
    fleet_size:
        Number of vehicles hosted by one simulation.  The default of 1
        is the classic Avis setup and is bit-identical to the
        pre-fleet engine; fleet workloads (:mod:`repro.workloads.fleet`)
        need 2 or more.
    fleet_pad_spacing_m:
        East spacing between fleet launch pads, in metres.
    """

    firmware_class: Type[ControlFirmware] = ArduPilotFirmware
    workload_factory: Callable[[], Target] = AutoWorkload
    environment_factory: Callable[[], Environment] = default_environment
    airframe: AirframeParameters = IRIS_QUADCOPTER
    firmware_params: Optional[FirmwareParameters] = None
    dt: float = 0.02
    max_sim_time_s: float = 160.0
    sample_interval_steps: int = 5
    noise_seed: int = 0
    reinserted_bugs: Tuple[str, ...] = ()
    disabled_bugs: Tuple[str, ...] = ()
    stop_on_unsafe: bool = True
    fleet_size: int = 1
    fleet_pad_spacing_m: float = 8.0

    def __post_init__(self) -> None:
        if self.fleet_size < 1:
            raise ValueError("fleet_size must be at least 1")

    def with_noise_seed(self, noise_seed: int) -> "RunConfiguration":
        """Return a copy of the configuration with a different noise seed."""
        return RunConfiguration(
            firmware_class=self.firmware_class,
            workload_factory=self.workload_factory,
            environment_factory=self.environment_factory,
            airframe=self.airframe,
            firmware_params=self.firmware_params,
            dt=self.dt,
            max_sim_time_s=self.max_sim_time_s,
            sample_interval_steps=self.sample_interval_steps,
            noise_seed=noise_seed,
            reinserted_bugs=self.reinserted_bugs,
            disabled_bugs=self.disabled_bugs,
            stop_on_unsafe=self.stop_on_unsafe,
            fleet_size=self.fleet_size,
            fleet_pad_spacing_m=self.fleet_pad_spacing_m,
        )

    @property
    def firmware_name(self) -> str:
        """The flavour name of the configured firmware class."""
        return self.firmware_class.name
