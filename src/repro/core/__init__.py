"""Avis: the in-situ model checker (the paper's contribution).

The core package ties the substrates together into the system shown in
Figure 4 of the paper:

* :mod:`repro.core.runner` provisions a fresh simulator + firmware +
  ground-control station per test, executes a workload under a fault
  scenario, and records everything the invariant monitor and the search
  strategies need.
* :mod:`repro.core.modegraph`, :mod:`repro.core.liveliness`,
  :mod:`repro.core.safety` and :mod:`repro.core.monitor` implement the
  invariant monitor (Section IV-C): the safety rule, the liveliness rule
  with the mode-graph state distance, and the safe-mode escape hatch.
* :mod:`repro.core.sabre` and :mod:`repro.core.pruning` implement the
  SABRE stratified search (Algorithm 1) and the two redundancy
  elimination policies.
* :mod:`repro.core.strategies` implements the competing approaches of
  Table I (random injection, depth-first / breadth-first exhaustive
  search, Bayesian Fault Injection, and Stratified BFI).
* :mod:`repro.core.avis` is the user-facing campaign orchestrator, and
  :mod:`repro.core.replay` re-executes recorded bug scenarios.
"""

from repro.core.avis import Avis, CampaignResult
from repro.core.config import RunConfiguration, VehicleSpec
from repro.core.monitor import InvariantMonitor, UnsafeCondition, UnsafeConditionKind
from repro.core.runner import RunResult, SimulationHarness, TestRunner
from repro.core.sabre import SabreSearch
from repro.core.strategies import (
    BayesianFaultInjection,
    BreadthFirstSearch,
    DepthFirstSearch,
    RandomInjection,
    SearchStrategy,
    StratifiedBFI,
)

__all__ = [
    "Avis",
    "BayesianFaultInjection",
    "BreadthFirstSearch",
    "CampaignResult",
    "DepthFirstSearch",
    "InvariantMonitor",
    "RandomInjection",
    "RunConfiguration",
    "RunResult",
    "SabreSearch",
    "SearchStrategy",
    "SimulationHarness",
    "StratifiedBFI",
    "TestRunner",
    "UnsafeCondition",
    "UnsafeConditionKind",
    "VehicleSpec",
]
