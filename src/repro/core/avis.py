"""Avis: the campaign orchestrator (Figure 4 of the paper).

``Avis`` ties the pieces together for one (firmware, workload) pair:

1. **Profiling** -- run the workload fault-free a few times (with
   different sensor-noise seeds); the runs calibrate the liveliness
   monitor, build the mode graph, and give SABRE its initial transition
   queue.
2. **Checking** -- run a search strategy (SABRE + pruning by default,
   or one of the Table I baselines) under a simulation/labelling budget,
   evaluating every run with the invariant monitor.
3. **Reporting** -- collect the unsafe scenarios, the per-mode breakdown
   (Table IV), and the root-cause bugs each unsafe scenario maps to
   (Tables II and V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

from repro.core.config import RunConfiguration
from repro.core.monitor import InvariantMonitor, UnsafeCondition, mode_category_of
from repro.core.runner import RunResult, TestRunner
from repro.core.session import BudgetAccount, ExplorationSession
from repro.core.strategies import AvisStrategy, SearchStrategy
from repro.engine.backends import ExecutionBackend
from repro.engine.cache import ResultCache
from repro.engine.campaign import DEFAULT_BATCH_SIZE, CampaignEngine
from repro.hinj.faults import default_traffic_failures, validate_burst_durations
from repro.obs import runtime as obs_runtime
from repro.sensors.suite import iris_sensor_suite


class ProfilingError(RuntimeError):
    """Raised when the fault-free profiling run does not pass the workload."""


@dataclass
class CampaignResult:
    """Outcome of one checking campaign (one strategy, one budget)."""

    strategy_name: str
    firmware_name: str
    workload_name: str
    results: List[RunResult]
    simulations: int
    labels: int
    budget_spent: float

    @property
    def unsafe_results(self) -> List[RunResult]:
        """Runs that produced at least one unsafe condition."""
        return [result for result in self.results if result.found_unsafe_condition]

    @property
    def unsafe_scenario_count(self) -> int:
        """Number of unsafe scenarios identified (the Table III metric)."""
        return len(self.unsafe_results)

    @property
    def unsafe_condition_count(self) -> int:
        """Total number of unsafe conditions across all runs."""
        return sum(len(result.unsafe_conditions) for result in self.results)

    @property
    def triggered_bug_ids(self) -> Set[str]:
        """Root-cause bugs behind the unsafe scenarios (ground truth)."""
        bugs: Set[str] = set()
        for result in self.unsafe_results:
            bugs.update(result.triggered_bugs)
        return bugs

    @property
    def per_mode_counts(self) -> Dict[str, int]:
        """Unsafe scenarios per mode category (the Table IV metric)."""
        counts: Dict[str, int] = {"takeoff": 0, "manual": 0, "waypoint": 0, "land": 0}
        for result in self.unsafe_results:
            condition = result.unsafe_conditions[0]
            category = mode_category_of(condition)
            counts[category] = counts.get(category, 0) + 1
        return counts

    def simulations_to_find(self, bug_id: str) -> Optional[int]:
        """Number of simulations executed up to and including the first
        unsafe scenario attributable to ``bug_id`` (the Table V metric)."""
        for index, result in enumerate(self.results, start=1):
            if result.found_unsafe_condition and bug_id in result.triggered_bugs:
                return index
        return None

    @property
    def efficiency(self) -> float:
        """Unsafe scenarios per simulation (the paper's efficiency metric)."""
        if self.simulations == 0:
            return 0.0
        return self.unsafe_scenario_count / self.simulations

    def summary(self) -> str:
        """One-line summary used by the benchmark harnesses."""
        return (
            f"{self.strategy_name:>16}: {self.unsafe_scenario_count:3d} unsafe scenarios "
            f"in {self.simulations:3d} simulations "
            f"({self.labels} labels, {self.budget_spent:.1f} budget units)"
        )


class Avis:
    """The aerial-vehicle in-situ model checker."""

    def __init__(
        self,
        config: RunConfiguration,
        profiling_runs: int = 2,
        budget_units: float = 60.0,
        simulation_cost: float = 1.0,
        labelling_cost: float = 0.15,
        backend: Union[str, ExecutionBackend, None] = None,
        cache: Optional[ResultCache] = None,
        batch_size=DEFAULT_BATCH_SIZE,
        traffic_faults: bool = False,
        burst_durations: Sequence[float] = (),
    ) -> None:
        self._config = config
        self._profiling_run_count = max(profiling_runs, 1)
        self._budget_units = budget_units
        self._simulation_cost = simulation_cost
        self._labelling_cost = labelling_cost
        # Recovery windows the default (SABRE) strategy explores next to
        # the latched faults; empty keeps the classic fault space.
        self._burst_durations = validate_burst_durations(burst_durations)
        # Opt-in coordination fault space: one handle per (vehicle,
        # fault kind), offered to strategies through the session.
        if traffic_faults and config.fleet_size < 2:
            # A single vehicle has no inter-vehicle channel; silently
            # running a sensor-only campaign would misrepresent coverage.
            raise ValueError(
                "traffic_faults=True needs a fleet (fleet_size >= 2): a "
                "single-vehicle campaign has no inter-vehicle channel to fault"
            )
        self._traffic_failures = (
            default_traffic_failures(config.fleet_size) if traffic_faults else []
        )
        # A per-orchestrator cache by default: compare() runs several
        # strategies over the same fault space, so overlapping scenarios
        # are only ever simulated once.
        self._cache = cache if cache is not None else ResultCache()
        self._engine = CampaignEngine(
            backend=backend, cache=self._cache, batch_size=batch_size
        )
        self._profiles: Optional[List[RunResult]] = None
        self._monitor: Optional[InvariantMonitor] = None

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    @property
    def config(self) -> RunConfiguration:
        """The run configuration used for every simulation."""
        return self._config

    @property
    def engine(self) -> CampaignEngine:
        """The campaign engine executing this orchestrator's campaigns."""
        return self._engine

    @property
    def cache(self) -> ResultCache:
        """The result cache shared by every campaign of this orchestrator."""
        return self._cache

    @property
    def monitor(self) -> InvariantMonitor:
        """The invariant monitor (profiles the workload on first use)."""
        if self._monitor is None:
            self.profile()
        assert self._monitor is not None
        return self._monitor

    @property
    def profiling_results(self) -> List[RunResult]:
        """The fault-free profiling runs (profiles on first use)."""
        if self._profiles is None:
            self.profile()
        assert self._profiles is not None
        return list(self._profiles)

    def profile(self) -> List[RunResult]:
        """Execute the fault-free profiling runs and calibrate the monitor."""
        obs = obs_runtime.current()
        if obs is not None:
            with obs.tracer.span(
                "avis.profile",
                firmware=self._config.firmware_name,
                runs=self._profiling_run_count,
            ):
                return self._profile()
        return self._profile()

    def _profile(self) -> List[RunResult]:
        runner = TestRunner(self._config)
        profiles: List[RunResult] = []
        for index in range(self._profiling_run_count):
            result = runner.run(noise_seed=self._config.noise_seed + index)
            if not result.workload_passed:
                reason = (
                    result.workload_result.reason
                    if result.workload_result is not None
                    else "no workload result"
                )
                raise ProfilingError(
                    f"fault-free profiling run {index} did not pass: {reason}"
                )
            profiles.append(result)
        self._profiles = profiles
        self._monitor = InvariantMonitor(profiles)
        return profiles

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    def check(
        self,
        strategy: Optional[SearchStrategy] = None,
        budget_units: Optional[float] = None,
    ) -> CampaignResult:
        """Run one checking campaign with ``strategy`` (SABRE by default).

        The default strategy inherits this orchestrator's
        ``burst_durations`` and explores the opted-in coordination fault
        space when ``traffic_faults=True`` was requested.
        """
        if strategy is None:
            strategy = AvisStrategy(
                include_traffic_faults=bool(self._traffic_failures),
                burst_durations=self._burst_durations,
            )
        profiles = self.profiling_results
        monitor = self.monitor

        runner = TestRunner(self._config, monitor=monitor)
        budget = BudgetAccount(
            total_units=budget_units if budget_units is not None else self._budget_units,
            simulation_cost=self._simulation_cost,
            labelling_cost=self._labelling_cost,
        )
        session = ExplorationSession(
            runner=runner,
            budget=budget,
            profiling_run=profiles[0],
            suite=iris_sensor_suite(noise_seed=self._config.noise_seed),
            cache=self._cache,
            traffic_failures=self._traffic_failures,
        )
        obs = obs_runtime.current()
        if obs is not None:
            with obs.tracer.span(
                "avis.check",
                strategy=strategy.name,
                firmware=self._config.firmware_name,
                budget=budget.total_units,
            ):
                self._engine.execute(strategy, session)
        else:
            self._engine.execute(strategy, session)
        return CampaignResult(
            strategy_name=strategy.name,
            firmware_name=self._config.firmware_name,
            workload_name=profiles[0].workload_name,
            results=session.results,
            simulations=budget.simulations,
            labels=budget.labels,
            budget_spent=budget.spent_units,
        )

    def compare(
        self,
        strategies: Sequence[SearchStrategy],
        budget_units: Optional[float] = None,
    ) -> List[CampaignResult]:
        """Run the same budgeted campaign once per strategy (Table III).

        Campaigns share this orchestrator's result cache, so scenarios
        several strategies propose are only simulated once (a cache hit
        still charges the hitting campaign's budget, keeping the
        comparison fair), and each campaign's batchable simulations run
        through the configured execution backend.
        """
        return [self.check(strategy=strategy, budget_units=budget_units) for strategy in strategies]
