"""Message definitions for the MAVLink-like protocol.

Only the messages the paper's workloads rely on are modelled, and they
are modelled as plain dataclasses rather than a binary wire format: the
workload framework needs the protocol's *transaction semantics* (who
initiates, who waits, what acknowledges what), not its serialisation.
Names follow the real MAVLink message and command names so readers
familiar with pymavlink can map them directly.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import ClassVar, Optional


class MavCommand(enum.Enum):
    """The subset of MAV_CMD used by the workloads."""

    COMPONENT_ARM_DISARM = 400
    NAV_TAKEOFF = 22
    NAV_WAYPOINT = 16
    NAV_LAND = 21
    NAV_RETURN_TO_LAUNCH = 20
    DO_SET_MODE = 176
    DO_SET_HOME = 179
    MISSION_START = 300


class MavResult(enum.Enum):
    """Result codes for command acknowledgements."""

    ACCEPTED = 0
    TEMPORARILY_REJECTED = 1
    DENIED = 2
    UNSUPPORTED = 3
    FAILED = 4


_sequence = itertools.count(1)


@dataclass(frozen=True)
class Message:
    """Base class for every protocol message.

    Each message gets a monotonically increasing sequence number so tests
    and logs can refer to individual messages unambiguously.
    """

    sequence: int = field(default_factory=lambda: next(_sequence), init=False, compare=False)

    #: Short name used in logs; subclasses override.
    name: ClassVar[str] = "MESSAGE"


@dataclass(frozen=True)
class Heartbeat(Message):
    """Periodic liveness + mode announcement from the vehicle."""

    name: ClassVar[str] = "HEARTBEAT"
    mode: str = "preflight"
    armed: bool = False
    system_status: str = "standby"


@dataclass(frozen=True)
class CommandLong(Message):
    """A command from the ground-control station to the vehicle."""

    name: ClassVar[str] = "COMMAND_LONG"
    command: MavCommand = MavCommand.COMPONENT_ARM_DISARM
    param1: float = 0.0
    param2: float = 0.0
    param3: float = 0.0
    param4: float = 0.0
    param5: float = 0.0
    param6: float = 0.0
    param7: float = 0.0


@dataclass(frozen=True)
class CommandAck(Message):
    """The vehicle's acknowledgement of a :class:`CommandLong`."""

    name: ClassVar[str] = "COMMAND_ACK"
    command: MavCommand = MavCommand.COMPONENT_ARM_DISARM
    result: MavResult = MavResult.ACCEPTED


@dataclass(frozen=True)
class SetMode(Message):
    """Request that the vehicle switch to a named flight mode."""

    name: ClassVar[str] = "SET_MODE"
    mode: str = "guided"


@dataclass(frozen=True)
class MissionCount(Message):
    """Start of a mission upload: announces the number of items."""

    name: ClassVar[str] = "MISSION_COUNT"
    count: int = 0


@dataclass(frozen=True)
class MissionRequest(Message):
    """The vehicle requests one mission item by sequence number."""

    name: ClassVar[str] = "MISSION_REQUEST"
    seq: int = 0


@dataclass(frozen=True)
class MissionItem(Message):
    """One mission item sent in response to a :class:`MissionRequest`."""

    name: ClassVar[str] = "MISSION_ITEM"
    seq: int = 0
    command: MavCommand = MavCommand.NAV_WAYPOINT
    latitude: float = 0.0
    longitude: float = 0.0
    altitude: float = 0.0
    param1: float = 0.0
    autocontinue: bool = True


@dataclass(frozen=True)
class MissionAck(Message):
    """The vehicle's acknowledgement that the mission upload completed."""

    name: ClassVar[str] = "MISSION_ACK"
    accepted: bool = True
    reason: str = ""


@dataclass(frozen=True)
class MissionCurrent(Message):
    """Telemetry: the mission item currently being executed."""

    name: ClassVar[str] = "MISSION_CURRENT"
    seq: int = 0


@dataclass(frozen=True)
class MissionItemReached(Message):
    """Telemetry: the vehicle reached mission item ``seq``."""

    name: ClassVar[str] = "MISSION_ITEM_REACHED"
    seq: int = 0


@dataclass(frozen=True)
class GlobalPosition(Message):
    """Telemetry: the firmware's own position estimate."""

    name: ClassVar[str] = "GLOBAL_POSITION_INT"
    latitude: float = 0.0
    longitude: float = 0.0
    altitude: float = 0.0
    relative_altitude: float = 0.0
    vx: float = 0.0
    vy: float = 0.0
    vz: float = 0.0
    heading: float = 0.0


@dataclass(frozen=True)
class StatusText(Message):
    """Free-form status text from the firmware (warnings, fail-safes)."""

    name: ClassVar[str] = "STATUSTEXT"
    severity: str = "info"
    text: str = ""


def describe(message: Message) -> str:
    """One-line description of a message used by link logs."""
    fields = {
        key: value
        for key, value in vars(message).items()
        if key not in {"sequence"} and not key.startswith("_")
    }
    rendered = ", ".join(f"{key}={value}" for key, value in fields.items())
    return f"{message.name}({rendered})"
