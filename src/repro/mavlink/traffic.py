"""The inter-vehicle traffic channel: ADS-B-style position beacons.

Fleet members do not read each other's simulator state.  Instead every
vehicle periodically *broadcasts* a :class:`TrafficBeacon` carrying its
position and velocity, and every other vehicle *consumes* the beacons
with a delivery latency -- the same shared-medium, best-effort traffic
picture real fleets fly on (and the SITL follow scripts exercise).  The
channel is deterministic: broadcast times and latencies are fixed
numbers of simulation steps, so runs stay reproducible.

Because the channel is the only path one vehicle's view of another
takes, it is also the fault injection surface for the coordination
fault family (:class:`~repro.hinj.faults.TrafficFaultSpec`):

* **dropout** -- beacons broadcast by the faulted vehicle while the
  fault is active are never delivered; receivers' last view of it ages
  out.
* **freeze** -- beacons keep being delivered on schedule but carry the
  last pre-fault position/velocity payload, so receivers track a
  plausible-but-stale ghost that never moves again.
* **delay** -- beacons are delivered with an extra fixed latency, so
  receivers track where the vehicle *was*.

A fault with a finite ``duration_s`` *recovers*: once its window closes
the dropout ends and beacons resume flowing, a freeze thaws back to the
live payload, and a delay reverts to the channel's base latency.  The
default (``duration_s=None``) latches for the rest of the run, exactly
as before.

Injections are recorded (first beacon each fault affected, plus the
first post-recovery beacon for intermittent faults), mirroring the
sensor scheduler's injection log.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.hinj.faults import TrafficFaultKind, TrafficFaultSpec


@dataclass(frozen=True)
class TrafficBeacon:
    """One position/velocity broadcast from a fleet member.

    ``position`` is the (north, east, altitude) offset from the shared
    home in metres; ``velocity`` the (north, east, climb) rates in m/s.
    ``time`` is the simulation time the beacon was emitted (receivers
    compute staleness from it against their own clock).
    """

    vehicle: int
    time: float
    position: Tuple[float, float, float]
    velocity: Tuple[float, float, float]

    def age_at(self, now: float) -> float:
        """Seconds elapsed since this beacon was emitted."""
        return now - self.time


@dataclass(frozen=True)
class TrafficInjectionRecord:
    """A coordination fault the channel actually applied during a run.

    ``recovered_time`` is the time of the first beacon broadcast after
    an intermittent fault's window closed -- the moment the channel's
    behaviour actually reverted.  It stays ``None`` for latched faults
    (and for windows that outlive the run).
    """

    fault: TrafficFaultSpec
    scheduled_time: float
    injected_time: float
    recovered_time: Optional[float] = None

    @property
    def recovered(self) -> bool:
        """True once the fault's recovery has taken effect on the air."""
        return self.recovered_time is not None

    def describe(self) -> str:
        """One-line description for reports."""
        text = (
            f"{self.fault.label} scheduled t={self.scheduled_time:.2f}s, "
            f"first effect t={self.injected_time:.2f}s"
        )
        if self.recovered_time is not None:
            text += f", recovered t={self.recovered_time:.2f}s"
        return text


def traffic_flight_events(records: List[TrafficInjectionRecord]) -> list:
    """Flight-recorder events for a run's coordination-fault log.

    One ``traffic.injected`` event per applied fault plus a
    ``traffic.recovered`` event for every intermittent fault whose
    window actually closed on the air.
    """
    from repro.obs.recorder import FlightEvent

    events = []
    for record in records:
        vehicle = f"v{record.fault.vehicle}"
        events.append(
            FlightEvent(
                record.injected_time,
                "traffic.injected",
                record.fault.label,
                vehicle=vehicle,
            )
        )
        if record.recovered_time is not None:
            events.append(
                FlightEvent(
                    record.recovered_time,
                    "traffic.recovered",
                    record.fault.label,
                    vehicle=vehicle,
                )
            )
    return events


class TrafficChannel:
    """The shared beacon medium of one fleet simulation.

    The harness drives it in lock-step: :meth:`advance` once per
    simulation step, :meth:`broadcast` whenever a vehicle's beacon
    period elapses, and followers read :meth:`latest` for their view of
    any other vehicle.
    """

    def __init__(
        self,
        fleet_size: int,
        dt: float,
        beacon_interval_s: float = 0.2,
        latency_s: float = 0.1,
        faults: Sequence[TrafficFaultSpec] = (),
    ) -> None:
        if fleet_size < 1:
            raise ValueError("a traffic channel needs at least one vehicle")
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        self.fleet_size = fleet_size
        self.dt = dt
        self.beacon_interval_steps = max(int(round(beacon_interval_s / dt)), 1)
        self.latency_steps = max(int(round(latency_s / dt)), 0)
        self._step = 0
        # In-flight beacons per sender: (delivery step, beacon).
        self._in_flight: Dict[int, Deque[Tuple[int, TrafficBeacon]]] = {
            vehicle: deque() for vehicle in range(fleet_size)
        }
        # The delivered (shared-medium) picture: latest beacon per sender.
        self._delivered: Dict[int, TrafficBeacon] = {}
        # Last pre-fault beacon per frozen sender (the ghost payload).
        self._frozen: Dict[int, TrafficBeacon] = {}
        self._faults: Dict[int, List[TrafficFaultSpec]] = {}
        for fault in faults:
            self._faults.setdefault(fault.vehicle, []).append(fault)
        for vehicle_faults in self._faults.values():
            vehicle_faults.sort(key=lambda fault: fault.sort_key())
        self._injected: Dict[TrafficFaultSpec, TrafficInjectionRecord] = {}
        self.beacons_sent = 0
        self.beacons_delivered = 0
        self.beacons_dropped = 0

    # ------------------------------------------------------------------
    # Clocking and broadcasting
    # ------------------------------------------------------------------
    def advance(self) -> None:
        """Advance the channel clock by one simulation step and deliver
        every beacon whose latency has elapsed."""
        self._step += 1
        for vehicle, queue in self._in_flight.items():
            while queue and queue[0][0] <= self._step:
                _, beacon = queue.popleft()
                self._delivered[vehicle] = beacon
                self.beacons_delivered += 1

    def beacon_due(self) -> bool:
        """True when the fleet should broadcast this step.

        The schedule is fleet-wide synchronous: every vehicle broadcasts
        on the same step (per-vehicle stagger would be a channel-model
        extension, not something callers can request today).
        """
        return self._step % self.beacon_interval_steps == 0

    def broadcast(
        self,
        vehicle: int,
        time: float,
        position: Tuple[float, float, float],
        velocity: Tuple[float, float, float],
    ) -> None:
        """Broadcast one beacon from ``vehicle``, applying active faults.

        Every active fault on the sender is *recorded* (and recoveries
        of previously-applied faults stamped) before any effect is
        applied, so the injection log stays complete even when a dropout
        ultimately swallows the beacon -- a co-scheduled freeze or delay
        on the same vehicle still appears in :attr:`injections`, and the
        freeze's ghost payload is still captured.
        """
        beacon = TrafficBeacon(
            vehicle=vehicle, time=time, position=position, velocity=velocity
        )
        self.beacons_sent += 1
        latency = self.latency_steps
        dropped = False
        for fault in self._faults.get(vehicle, ()):
            if not fault.active_at(time):
                # Still in the future, or recovered: record the first
                # post-recovery broadcast, and remember the healthy
                # payload so a (later) freeze can replay it.
                self._record_recovery(fault, time)
                continue
            self._record_injection(fault, time)
            if fault.kind == TrafficFaultKind.DROPOUT:
                dropped = True
            elif fault.kind == TrafficFaultKind.FREEZE:
                ghost = self._frozen.get(vehicle)
                if ghost is not None:
                    # Apparently fresh, payload frozen at the pre-fault state.
                    beacon = TrafficBeacon(
                        vehicle=vehicle,
                        time=time,
                        position=ghost.position,
                        velocity=(0.0, 0.0, 0.0),
                    )
                # Without a pre-fault beacon the first broadcast freezes
                # itself: it becomes the ghost everyone keeps seeing.
            elif fault.kind == TrafficFaultKind.DELAY:
                latency += max(int(round(fault.extra_delay_s / self.dt)), 0)
        if vehicle not in self._frozen or not self._is_frozen(vehicle, time):
            self._frozen[vehicle] = beacon
        if dropped:
            self.beacons_dropped += 1
            return
        self._in_flight[vehicle].append((self._step + latency, beacon))

    def _is_frozen(self, vehicle: int, time: float) -> bool:
        return any(
            fault.kind == TrafficFaultKind.FREEZE and fault.active_at(time)
            for fault in self._faults.get(vehicle, ())
        )

    def _record_injection(self, fault: TrafficFaultSpec, time: float) -> None:
        if fault not in self._injected:
            self._injected[fault] = TrafficInjectionRecord(
                fault=fault, scheduled_time=fault.start_time, injected_time=time
            )

    def _record_recovery(self, fault: TrafficFaultSpec, time: float) -> None:
        """Stamp the first post-recovery broadcast of an applied fault."""
        record = self._injected.get(fault)
        if (
            record is not None
            and record.recovered_time is None
            and fault.end_time is not None
            and time >= fault.end_time
        ):
            self._injected[fault] = replace(record, recovered_time=time)

    # ------------------------------------------------------------------
    # Consuming
    # ------------------------------------------------------------------
    def latest(self, receiver: int, sender: int) -> Optional[TrafficBeacon]:
        """The latest delivered beacon of ``sender`` as seen by
        ``receiver`` (None before the first delivery).

        Own-ship queries (``receiver == sender``) raise: real traffic
        receivers filter out their own returns, and a vehicle needing
        its own state has its navigation estimate -- asking the channel
        for it is a workload bug.  Out-of-range indices raise for the
        same reason: a fleet-index typo must not read as "no beacon
        yet" forever.
        """
        for role, index in (("receiver", receiver), ("sender", sender)):
            if not 0 <= index < self.fleet_size:
                raise ValueError(
                    f"{role} {index} is not part of this fleet of "
                    f"{self.fleet_size} vehicle(s)"
                )
        if receiver == sender:
            raise ValueError("a vehicle does not track itself over traffic")
        return self._delivered.get(sender)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def injections(self) -> List[TrafficInjectionRecord]:
        """Coordination faults actually applied, in first-effect order."""
        return sorted(
            self._injected.values(),
            key=lambda record: (record.injected_time, record.fault.sort_key()),
        )

    @property
    def stats(self) -> Dict[str, int]:
        """Broadcast/delivery/drop counters."""
        return {
            "sent": self.beacons_sent,
            "delivered": self.beacons_delivered,
            "dropped": self.beacons_dropped,
        }
