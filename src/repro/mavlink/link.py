"""The in-process link between the ground-control station and the firmware.

The link is a pair of FIFO queues.  Delivery is deterministic: a message
sent during step *n* is available to the receiving side from step *n*
onwards.  An optional per-message delivery delay models the "slight
delays between the workload sending and the firmware receiving messages"
that the paper cites as a source of benign non-determinism; it is
deterministic here (a fixed number of steps) so runs stay reproducible.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple, Type, TypeVar

from repro.mavlink.messages import Message

MessageT = TypeVar("MessageT", bound=Message)


@dataclass
class LinkStats:
    """Counters describing traffic over one direction of the link."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0


class _Channel:
    """One direction of the link (a FIFO with an optional delivery delay)."""

    def __init__(self, delay_steps: int = 0, capacity: Optional[int] = None) -> None:
        if delay_steps < 0:
            raise ValueError("delay_steps cannot be negative")
        self._delay_steps = delay_steps
        self._capacity = capacity
        self._queue: Deque[Tuple[int, Message]] = deque()
        self._step = 0
        self.stats = LinkStats()

    def advance(self) -> None:
        """Advance the channel clock by one simulation step."""
        self._step += 1

    def send(self, message: Message) -> bool:
        """Enqueue ``message``; returns False when the channel is full."""
        if self._capacity is not None and len(self._queue) >= self._capacity:
            self.stats.dropped += 1
            return False
        self._queue.append((self._step + self._delay_steps, message))
        self.stats.sent += 1
        return True

    def receive_all(self) -> List[Message]:
        """Dequeue every message whose delivery time has arrived."""
        delivered: List[Message] = []
        while self._queue and self._queue[0][0] <= self._step:
            _, message = self._queue.popleft()
            delivered.append(message)
            self.stats.delivered += 1
        return delivered

    @property
    def pending(self) -> int:
        """Number of messages waiting in the channel."""
        return len(self._queue)


class MavLink:
    """Bidirectional link: GCS <-> vehicle."""

    def __init__(self, delay_steps: int = 0, capacity: Optional[int] = None) -> None:
        self._to_vehicle = _Channel(delay_steps=delay_steps, capacity=capacity)
        self._to_gcs = _Channel(delay_steps=delay_steps, capacity=capacity)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def advance(self) -> None:
        """Advance both directions by one simulation step."""
        self._to_vehicle.advance()
        self._to_gcs.advance()

    # ------------------------------------------------------------------
    # GCS side
    # ------------------------------------------------------------------
    def gcs_send(self, message: Message) -> bool:
        """Send a message from the ground-control station to the vehicle."""
        return self._to_vehicle.send(message)

    def gcs_receive(self) -> List[Message]:
        """Receive every pending message addressed to the GCS."""
        return self._to_gcs.receive_all()

    # ------------------------------------------------------------------
    # Vehicle side
    # ------------------------------------------------------------------
    def vehicle_send(self, message: Message) -> bool:
        """Send a message from the vehicle to the ground-control station."""
        return self._to_gcs.send(message)

    def vehicle_receive(self) -> List[Message]:
        """Receive every pending message addressed to the vehicle."""
        return self._to_vehicle.receive_all()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def to_vehicle_stats(self) -> LinkStats:
        """Traffic counters for the GCS -> vehicle direction."""
        return self._to_vehicle.stats

    @property
    def to_gcs_stats(self) -> LinkStats:
        """Traffic counters for the vehicle -> GCS direction."""
        return self._to_gcs.stats

    @property
    def pending_to_vehicle(self) -> int:
        """Messages queued toward the vehicle."""
        return self._to_vehicle.pending

    @property
    def pending_to_gcs(self) -> int:
        """Messages queued toward the GCS."""
        return self._to_gcs.pending


def drain_messages_of_type(
    messages: List[Message], message_type: Type[MessageT]
) -> Tuple[List[MessageT], List[Message]]:
    """Split ``messages`` into those of ``message_type`` and the rest."""
    matching: List[MessageT] = []
    remaining: List[Message] = []
    for message in messages:
        if isinstance(message, message_type):
            matching.append(message)
        else:
            remaining.append(message)
    return matching, remaining
