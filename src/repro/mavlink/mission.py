"""Mission plans and the mission-upload handshake.

MAVLink's mission micro-service is vehicle-driven: the ground-control
station announces ``MISSION_COUNT``, then the *vehicle* requests each
item with ``MISSION_REQUEST`` and finally acknowledges the whole plan
with ``MISSION_ACK``.  Section V-A of the paper singles this out as a
deadlock hazard under lock-step execution, which is why the workload
framework wraps it.  Both halves of the handshake are implemented here:

* :class:`MissionUploadState` -- the GCS-side state machine used by
  :class:`~repro.mavlink.gcs.GroundControlStation.upload_mission`.
* :class:`MissionReceiveState` -- the vehicle-side state machine used by
  the firmware's MAVLink handler.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.mavlink.messages import (
    MavCommand,
    Message,
    MissionAck,
    MissionCount,
    MissionItem,
    MissionRequest,
)


def mission_item(
    seq: int,
    command: MavCommand,
    latitude: float = 0.0,
    longitude: float = 0.0,
    altitude: float = 0.0,
    param1: float = 0.0,
) -> MissionItem:
    """Convenience constructor for a mission item."""
    return MissionItem(
        seq=seq,
        command=command,
        latitude=latitude,
        longitude=longitude,
        altitude=altitude,
        param1=param1,
    )


@dataclass
class MissionPlan:
    """An ordered list of mission items forming one mission."""

    items: List[MissionItem] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.items = [
            MissionItem(
                seq=index,
                command=item.command,
                latitude=item.latitude,
                longitude=item.longitude,
                altitude=item.altitude,
                param1=item.param1,
                autocontinue=item.autocontinue,
            )
            for index, item in enumerate(self.items)
        ]

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def item(self, seq: int) -> MissionItem:
        """Return the item with sequence number ``seq``."""
        return self.items[seq]

    @property
    def is_empty(self) -> bool:
        """True when the plan has no items."""
        return not self.items

    def extended(self, other: "MissionPlan") -> "MissionPlan":
        """Return a new plan with ``other``'s items appended (re-sequenced)."""
        return MissionPlan(items=self.items + other.items)

    def commands(self) -> List[MavCommand]:
        """The command of each item, in order (useful for assertions)."""
        return [item.command for item in self.items]


class UploadPhase(enum.Enum):
    """Phases of the GCS-side mission upload state machine."""

    IDLE = "idle"
    AWAITING_REQUESTS = "awaiting-requests"
    COMPLETE = "complete"
    FAILED = "failed"


class MissionUploadState:
    """GCS-side state machine for uploading a :class:`MissionPlan`."""

    def __init__(self, plan: MissionPlan) -> None:
        if plan.is_empty:
            raise ValueError("cannot upload an empty mission plan")
        self._plan = plan
        self._phase = UploadPhase.IDLE
        self._failure_reason = ""

    @property
    def phase(self) -> UploadPhase:
        """The current phase of the upload."""
        return self._phase

    @property
    def complete(self) -> bool:
        """True when the vehicle acknowledged the whole plan."""
        return self._phase == UploadPhase.COMPLETE

    @property
    def failed(self) -> bool:
        """True when the vehicle rejected the plan."""
        return self._phase == UploadPhase.FAILED

    @property
    def failure_reason(self) -> str:
        """The vehicle's rejection reason, when the upload failed."""
        return self._failure_reason

    def start(self) -> MissionCount:
        """Produce the initial ``MISSION_COUNT`` announcement."""
        self._phase = UploadPhase.AWAITING_REQUESTS
        return MissionCount(count=len(self._plan))

    def handle(self, message: Message) -> Optional[MissionItem]:
        """Process one message from the vehicle.

        Returns the :class:`MissionItem` to send when the vehicle asked
        for one; returns ``None`` otherwise (including on completion).
        """
        if self._phase != UploadPhase.AWAITING_REQUESTS:
            return None
        if isinstance(message, MissionRequest):
            if not 0 <= message.seq < len(self._plan):
                self._phase = UploadPhase.FAILED
                self._failure_reason = f"vehicle requested invalid item {message.seq}"
                return None
            return self._plan.item(message.seq)
        if isinstance(message, MissionAck):
            if message.accepted:
                self._phase = UploadPhase.COMPLETE
            else:
                self._phase = UploadPhase.FAILED
                self._failure_reason = message.reason or "mission rejected"
        return None


class MissionReceiveState:
    """Vehicle-side state machine for receiving a mission upload."""

    def __init__(self, max_items: int = 64) -> None:
        self._max_items = max_items
        self._expected = 0
        self._next_seq = 0
        self._items: List[MissionItem] = []
        self._receiving = False

    @property
    def receiving(self) -> bool:
        """True while an upload is in progress."""
        return self._receiving

    def handle_count(self, count: MissionCount) -> Optional[Message]:
        """Process ``MISSION_COUNT``; returns the first request or a nack."""
        if count.count <= 0 or count.count > self._max_items:
            return MissionAck(accepted=False, reason=f"invalid mission size {count.count}")
        self._expected = count.count
        self._next_seq = 0
        self._items = []
        self._receiving = True
        return MissionRequest(seq=0)

    def handle_item(self, item: MissionItem) -> Optional[Message]:
        """Process one ``MISSION_ITEM``; returns the next request or the ack."""
        if not self._receiving:
            return None
        if item.seq != self._next_seq:
            # Out-of-order item: re-request the one we expect (matches the
            # retry behaviour of real stacks and keeps lock-step runs alive).
            return MissionRequest(seq=self._next_seq)
        self._items.append(item)
        self._next_seq += 1
        if self._next_seq >= self._expected:
            self._receiving = False
            return MissionAck(accepted=True)
        return MissionRequest(seq=self._next_seq)

    def take_plan(self) -> Optional[MissionPlan]:
        """Return the completed plan once the upload finished, else None."""
        if self._receiving or not self._items:
            return None
        plan = MissionPlan(items=list(self._items))
        return plan
