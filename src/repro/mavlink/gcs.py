"""The ground-control station used by the workload framework.

The GCS owns the GCS end of the :class:`~repro.mavlink.link.MavLink`:
it sends commands and mission uploads, and it digests the telemetry the
firmware streams back (heartbeats, position, mission progress, status
text).  The workload framework's high-level APIs (``arm``, ``takeoff``,
``wait_altitude`` ...) are all built from these primitives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.mavlink.link import MavLink
from repro.mavlink.messages import (
    CommandAck,
    CommandLong,
    GlobalPosition,
    Heartbeat,
    MavCommand,
    MavResult,
    Message,
    MissionAck,
    MissionCurrent,
    MissionItemReached,
    MissionRequest,
    SetMode,
    StatusText,
)
from repro.mavlink.mission import MissionPlan, MissionUploadState


@dataclass
class TelemetrySnapshot:
    """The GCS's latest view of the vehicle, built from telemetry."""

    mode: str = "preflight"
    armed: bool = False
    relative_altitude: float = 0.0
    latitude: float = 0.0
    longitude: float = 0.0
    heading: float = 0.0
    climb_rate: float = 0.0
    mission_current: int = 0
    reached_items: List[int] = field(default_factory=list)
    status_messages: List[str] = field(default_factory=list)
    last_heartbeat_time: float = 0.0


class GroundControlStation:
    """GCS-side protocol driver."""

    def __init__(self, link: MavLink) -> None:
        self._link = link
        self._telemetry = TelemetrySnapshot()
        self._pending_acks: List[CommandAck] = []
        self._upload: Optional[MissionUploadState] = None

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    @property
    def telemetry(self) -> TelemetrySnapshot:
        """The latest digested telemetry."""
        return self._telemetry

    def poll(self, time: float = 0.0) -> List[Message]:
        """Receive and digest every pending message from the vehicle.

        Returns the raw messages so callers with special needs (tests,
        custom workloads) can inspect them as well.
        """
        messages = self._link.gcs_receive()
        for message in messages:
            self._digest(message, time)
        return messages

    def _digest(self, message: Message, time: float) -> None:
        if isinstance(message, Heartbeat):
            self._telemetry.mode = message.mode
            self._telemetry.armed = message.armed
            self._telemetry.last_heartbeat_time = time
        elif isinstance(message, GlobalPosition):
            self._telemetry.relative_altitude = message.relative_altitude
            self._telemetry.latitude = message.latitude
            self._telemetry.longitude = message.longitude
            self._telemetry.heading = message.heading
            self._telemetry.climb_rate = message.vz
        elif isinstance(message, MissionCurrent):
            self._telemetry.mission_current = message.seq
        elif isinstance(message, MissionItemReached):
            if message.seq not in self._telemetry.reached_items:
                self._telemetry.reached_items.append(message.seq)
        elif isinstance(message, StatusText):
            self._telemetry.status_messages.append(f"[{message.severity}] {message.text}")
        elif isinstance(message, CommandAck):
            self._pending_acks.append(message)
        elif isinstance(message, (MissionRequest, MissionAck)) and self._upload is not None:
            item = self._upload.handle(message)
            if item is not None:
                self._link.gcs_send(item)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def send_command(self, command: MavCommand, **params: float) -> None:
        """Send a ``COMMAND_LONG`` with the given parameters."""
        self._link.gcs_send(CommandLong(command=command, **params))

    def arm(self) -> None:
        """Request that the vehicle arm its motors."""
        self.send_command(MavCommand.COMPONENT_ARM_DISARM, param1=1.0)

    def disarm(self) -> None:
        """Request that the vehicle disarm its motors."""
        self.send_command(MavCommand.COMPONENT_ARM_DISARM, param1=0.0)

    def set_mode(self, mode: str) -> None:
        """Request a flight-mode change."""
        self._link.gcs_send(SetMode(mode=mode))

    def command_takeoff(self, altitude: float) -> None:
        """Command an immediate (guided) takeoff to ``altitude`` metres."""
        self.send_command(MavCommand.NAV_TAKEOFF, param7=altitude)

    def start_mission(self) -> None:
        """Command the vehicle to start executing the uploaded mission."""
        self.send_command(MavCommand.MISSION_START)

    def take_acks(self) -> List[CommandAck]:
        """Return (and clear) command acknowledgements received so far."""
        acks, self._pending_acks = self._pending_acks, []
        return acks

    def last_ack_for(self, command: MavCommand) -> Optional[CommandAck]:
        """The most recent acknowledgement for ``command``, if any."""
        for ack in reversed(self._pending_acks):
            if ack.command == command:
                return ack
        return None

    # ------------------------------------------------------------------
    # Mission upload
    # ------------------------------------------------------------------
    def begin_mission_upload(self, plan: MissionPlan) -> None:
        """Start the mission upload handshake for ``plan``.

        The handshake progresses as :meth:`poll` digests the vehicle's
        ``MISSION_REQUEST`` messages; the workload framework keeps calling
        ``step()`` until :meth:`mission_upload_complete` turns true.
        """
        self._upload = MissionUploadState(plan)
        self._link.gcs_send(self._upload.start())

    @property
    def mission_upload_complete(self) -> bool:
        """True when the vehicle acknowledged the uploaded plan."""
        return self._upload is not None and self._upload.complete

    @property
    def mission_upload_failed(self) -> bool:
        """True when the vehicle rejected the uploaded plan."""
        return self._upload is not None and self._upload.failed

    @property
    def mission_upload_failure_reason(self) -> str:
        """The rejection reason for a failed upload (empty otherwise)."""
        if self._upload is None:
            return ""
        return self._upload.failure_reason
