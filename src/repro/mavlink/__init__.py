"""A MAVLink-like ground-control protocol.

The paper's workloads speak MAVLink to the firmware through a ground
control station, and Section V-A explains why that is painful: the
*vehicle* drives most transactions (e.g. mission upload is
count/request/item/ack with the vehicle asking for each item), which
creates deadlock hazards when everything runs in lock-step and makes
even simple missions awkward to express.  The workload framework exists
to hide those transactions.

This package reproduces the protocol semantics the framework needs:

* :mod:`repro.mavlink.messages` -- message dataclasses (heartbeat,
  command, set-mode, the mission micro-service, telemetry).
* :mod:`repro.mavlink.link` -- an in-process, queue-based link between a
  ground-control station and the firmware.
* :mod:`repro.mavlink.mission` -- mission items and the upload handshake
  state machines for both ends.
* :mod:`repro.mavlink.gcs` -- the ground-control station used by the
  workload framework.
* :mod:`repro.mavlink.traffic` -- the ADS-B-style inter-vehicle beacon
  channel fleet members coordinate over (and the injection surface of
  the coordination fault family).
"""

from repro.mavlink.gcs import GroundControlStation
from repro.mavlink.link import MavLink
from repro.mavlink.messages import (
    CommandAck,
    CommandLong,
    GlobalPosition,
    Heartbeat,
    MavCommand,
    MavResult,
    Message,
    MissionAck,
    MissionCount,
    MissionCurrent,
    MissionItem,
    MissionItemReached,
    MissionRequest,
    SetMode,
    StatusText,
)
from repro.mavlink.mission import MissionPlan, MissionUploadState, mission_item
from repro.mavlink.traffic import TrafficBeacon, TrafficChannel, TrafficInjectionRecord

__all__ = [
    "CommandAck",
    "CommandLong",
    "GlobalPosition",
    "GroundControlStation",
    "Heartbeat",
    "MavCommand",
    "MavLink",
    "MavResult",
    "Message",
    "MissionAck",
    "MissionCount",
    "MissionCurrent",
    "MissionItem",
    "MissionItemReached",
    "MissionPlan",
    "MissionRequest",
    "MissionUploadState",
    "SetMode",
    "StatusText",
    "TrafficBeacon",
    "TrafficChannel",
    "TrafficInjectionRecord",
    "mission_item",
]
