"""repro: a reproduction of "Avis: In-Situ Model Checking for UAVs" (DSN 2021).

The package is organised as the paper's system plus every substrate it
depends on:

* :mod:`repro.sim` -- the flight simulator (vehicle dynamics, environment).
* :mod:`repro.sensors` -- sensor models with redundancy and clean failures.
* :mod:`repro.hinj` -- the ``libhinj`` equivalent (driver instrumentation,
  fault scheduling, mode-transition reporting).
* :mod:`repro.mavlink` -- the MAVLink-like ground-control protocol.
* :mod:`repro.firmware` -- ArduPilot- and PX4-flavoured control firmware,
  including the latent and re-insertable sensor bugs the evaluation uses.
* :mod:`repro.workloads` -- the workload framework and default workloads.
* :mod:`repro.core` -- Avis itself: SABRE, pruning, the invariant monitor,
  the baseline strategies, replay and reporting.
* :mod:`repro.bugstudy` -- the Section III bug-study dataset and analysis.
* :mod:`repro.analysis` -- figure/table regeneration helpers.

Quickstart::

    from repro import Avis, RunConfiguration
    from repro.firmware import ArduPilotFirmware
    from repro.workloads import AutoWorkload

    config = RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: AutoWorkload(altitude=15.0),
    )
    avis = Avis(config, budget_units=30)
    campaign = avis.check()
    for run in campaign.unsafe_results:
        print(run.summary())

Campaign matrices are submitted through the request API -- in-process
or to a ``python -m repro.engine serve`` daemon, same records either
way::

    from repro import CampaignClient, CampaignRequest

    request = CampaignRequest(strategies=("avis", "random"),
                              budgets=(30.0,), backend="pool:4")
    records = CampaignClient().run(request)           # in-process
    records = CampaignClient("127.0.0.1:7800").run(request)  # service
"""

from repro.core.avis import Avis, CampaignResult
from repro.core.config import RunConfiguration, VehicleSpec
from repro.core.monitor import InvariantMonitor, UnsafeCondition
from repro.core.runner import RunResult, TestRunner
from repro.hinj.faults import FaultScenario, FaultSpec, TrafficFaultSpec

__version__ = "1.0.0"

__all__ = [
    "Avis",
    "CampaignClient",
    "CampaignRequest",
    "CampaignResult",
    "FaultScenario",
    "FaultSpec",
    "InvariantMonitor",
    "RemoteBackend",
    "ResultCache",
    "RunConfiguration",
    "RunResult",
    "ServiceError",
    "TestRunner",
    "TrafficFaultSpec",
    "UnsafeCondition",
    "VehicleSpec",
    "__version__",
    "parse_backend_spec",
    "run_campaign",
]

#: Campaign-fabric symbols, re-exported lazily: the engine modules
#: import the orchestrator above, so an eager import here would cycle.
_ENGINE_EXPORTS = {
    "CampaignClient",
    "CampaignRequest",
    "RemoteBackend",
    "ResultCache",
    "ServiceError",
    "parse_backend_spec",
    "run_campaign",
}


def __getattr__(name: str):
    if name in _ENGINE_EXPORTS:
        import repro.engine as _engine

        return getattr(_engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
