"""repro: a reproduction of "Avis: In-Situ Model Checking for UAVs" (DSN 2021).

The package is organised as the paper's system plus every substrate it
depends on:

* :mod:`repro.sim` -- the flight simulator (vehicle dynamics, environment).
* :mod:`repro.sensors` -- sensor models with redundancy and clean failures.
* :mod:`repro.hinj` -- the ``libhinj`` equivalent (driver instrumentation,
  fault scheduling, mode-transition reporting).
* :mod:`repro.mavlink` -- the MAVLink-like ground-control protocol.
* :mod:`repro.firmware` -- ArduPilot- and PX4-flavoured control firmware,
  including the latent and re-insertable sensor bugs the evaluation uses.
* :mod:`repro.workloads` -- the workload framework and default workloads.
* :mod:`repro.core` -- Avis itself: SABRE, pruning, the invariant monitor,
  the baseline strategies, replay and reporting.
* :mod:`repro.bugstudy` -- the Section III bug-study dataset and analysis.
* :mod:`repro.analysis` -- figure/table regeneration helpers.

Quickstart::

    from repro import Avis, RunConfiguration
    from repro.firmware import ArduPilotFirmware
    from repro.workloads import AutoWorkload

    config = RunConfiguration(
        firmware_class=ArduPilotFirmware,
        workload_factory=lambda: AutoWorkload(altitude=15.0),
    )
    avis = Avis(config, budget_units=30)
    campaign = avis.check()
    for run in campaign.unsafe_results:
        print(run.summary())
"""

from repro.core.avis import Avis, CampaignResult
from repro.core.config import RunConfiguration, VehicleSpec
from repro.core.monitor import InvariantMonitor, UnsafeCondition
from repro.core.runner import RunResult, TestRunner
from repro.hinj.faults import FaultScenario, FaultSpec, TrafficFaultSpec

__version__ = "1.0.0"

__all__ = [
    "Avis",
    "CampaignResult",
    "FaultScenario",
    "FaultSpec",
    "InvariantMonitor",
    "RunConfiguration",
    "RunResult",
    "TestRunner",
    "TrafficFaultSpec",
    "UnsafeCondition",
    "VehicleSpec",
    "__version__",
]
