"""The rule registry: every shipped rule, one table.

Rules are plain (id, family, summary, check) records; ``check`` takes
the :class:`~repro.lint.driver.LintContext` and returns findings.  The
two ``LNT`` meta rules are synthesized by the driver (waiver parsing and
file collection) rather than checked here, but they are listed so
``--list-rules`` documents every id that can appear in output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.lint.findings import Finding


@dataclass(frozen=True)
class Rule:
    """One statically-checked invariant."""

    id: str
    family: str
    summary: str
    check: Callable[["LintContext"], List[Finding]]  # noqa: F821


#: (id, summary) of findings synthesized outside rule checks.
META_RULES: Tuple[Tuple[str, str], ...] = (
    ("LNT001", "inline waiver has no '-- justification'"),
    ("LNT002", "file could not be parsed"),
)


def all_rules() -> Sequence[Rule]:
    """Every shipped rule, sorted by id."""
    from repro.lint import rules_det, rules_fab, rules_fpr, rules_obs

    rules: List[Rule] = []
    for module in (rules_det, rules_fpr, rules_obs, rules_fab):
        rules.extend(module.RULES)
    return sorted(rules, key=lambda rule: rule.id)
