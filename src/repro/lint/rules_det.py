"""DET: determinism-source rules.

The simulation core (``sim``, ``core``, ``firmware``, ``hinj``,
``sensors``) must be a pure function of its inputs: a wall clock, an
entropy source or the unseeded global ``random`` anywhere inside it
breaks serial == pool == remote bit-identity.  Fingerprint paths
additionally may not iterate sets or dict views unsorted (string
hashing is per-process randomized, so iteration order diverges across
workers), and directory listings must be sorted wherever they are
consumed in order.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.lint.astutil import (
    call_name,
    import_map,
    method_name,
    parent_of,
    symbol_for,
)
from repro.lint.findings import Finding
from repro.lint.registry import Rule
from repro.lint.walker import LintModule

#: Packages forming the determinism core.
DET_SCOPE = (
    "repro.sim",
    "repro.core",
    "repro.firmware",
    "repro.hinj",
    "repro.sensors",
)

#: Canonical names of wall-clock reads.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Canonical names of entropy sources (uuid3/uuid5 are input-derived and
#: therefore deterministic; uuid1 is clock/MAC-based, uuid4 is random).
ENTROPY_CALLS = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})
ENTROPY_PREFIXES = ("secrets.",)

#: Module-level functions of the global (process-shared, unseeded at
#: import) random instance.  ``random.Random(seed)`` stays legal.
GLOBAL_RANDOM_FUNCTIONS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "uniform",
        "triangular",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "vonmisesvariate",
        "betavariate",
        "gammavariate",
        "paretovariate",
        "weibullvariate",
        "seed",
    }
)

#: Calls/constructs that yield unordered collections.
UNORDERED_BUILTIN_CALLS = frozenset({"set", "frozenset", "vars"})
UNORDERED_VIEW_METHODS = frozenset({"keys", "values", "items"})

#: Consumers for which iteration order provably cannot matter.
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "min", "max", "any", "all", "len", "set", "frozenset"}
)

#: Consumers that freeze an iteration order into their result.
ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter"})

#: Canonical names of unsorted directory-listing producers.
LISTING_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)
LISTING_METHODS = frozenset({"iterdir"})


def _is_sorted_call(node: ast.expr, imap: Dict[str, str]) -> bool:
    return isinstance(node, ast.Call) and call_name(node, imap) == "sorted"


class _UnorderedScan:
    """Shared machinery: find unordered values consumed in order.

    ``sources`` classifies producer expressions (set/dict views for
    DET004, directory listings for DET005); the scan then tracks names
    assigned from them and reports For loops, comprehensions and
    order-freezing calls that consume one without ``sorted(...)``.
    """

    def __init__(
        self,
        module: LintModule,
        rule: str,
        family: str,
        what: str,
        is_source,
    ) -> None:
        self.module = module
        self.imap = import_map(module.tree, module.name)
        self.rule = rule
        self.family = family
        self.what = what
        self.is_source = is_source
        self.tainted: Set[str] = set()
        self.findings: List[Finding] = []

    # -- classification ------------------------------------------------
    def unordered(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        return bool(self.is_source(node, self.imap))

    def _collect_assignments(self, root: ast.AST) -> None:
        for node in ast.walk(root):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if self.unordered(node.value):
                self.tainted.add(target.id)
            elif _is_sorted_call(node.value, self.imap):
                self.tainted.discard(target.id)

    # -- consumption ---------------------------------------------------
    def _report(self, node: ast.AST, detail: str) -> None:
        self.findings.append(
            Finding(
                rule=self.rule,
                family=self.family,
                path=self.module.display,
                line=node.lineno,
                col=node.col_offset,
                message=f"{detail} {self.what}; wrap it in sorted(...)",
                symbol=symbol_for(node),
            )
        )

    def _comprehension_is_safe(self, comp: ast.expr) -> bool:
        """True when a ListComp/GeneratorExp feeds an order-insensitive
        consumer (its own order then never escapes)."""
        parent = parent_of(comp)
        if isinstance(parent, ast.Call) and comp in parent.args:
            name = call_name(parent, self.imap)
            bare = name.rsplit(".", 1)[-1] if name else method_name(parent)
            return bare in ORDER_INSENSITIVE_CONSUMERS
        return False

    def scan(self, root: ast.AST) -> List[Finding]:
        self._collect_assignments(root)
        for node in ast.walk(root):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self.unordered(node.iter):
                    self._report(node, "for-loop iterates")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if self.unordered(generator.iter):
                        if not self._comprehension_is_safe(node):
                            self._report(node, "comprehension iterates")
            elif isinstance(node, ast.Call):
                name = call_name(node, self.imap)
                bare = name.rsplit(".", 1)[-1] if name else None
                sensitive = bare in ORDER_SENSITIVE_CALLS or (
                    method_name(node) == "join"
                )
                if sensitive:
                    for arg in node.args:
                        if self.unordered(arg):
                            self._report(node, "call freezes the order of")
        return self.findings


# ----------------------------------------------------------------------
# DET001/002/003: forbidden calls in the determinism core
# ----------------------------------------------------------------------
def _scan_calls(context) -> List[Finding]:
    findings: List[Finding] = []
    for module in context.modules:
        if not module.in_package(*DET_SCOPE):
            continue
        imap = import_map(module.tree, module.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, imap)
            if name is None:
                continue
            rule: Optional[str] = None
            message = ""
            if name in WALL_CLOCK_CALLS:
                rule = "DET001"
                message = (
                    f"wall-clock read {name}() inside the simulation core;"
                    " inject the simulated clock instead"
                )
            elif name in ENTROPY_CALLS or name.startswith(ENTROPY_PREFIXES):
                rule = "DET002"
                message = (
                    f"entropy source {name}() inside the simulation core;"
                    " derive values from the run's seed"
                )
            elif (
                name.startswith("random.")
                and name.rsplit(".", 1)[-1] in GLOBAL_RANDOM_FUNCTIONS
            ):
                rule = "DET003"
                message = (
                    f"{name}() uses the unseeded process-global RNG;"
                    " use a random.Random(seed) instance"
                )
            if rule is not None:
                findings.append(
                    Finding(
                        rule=rule,
                        family="DET",
                        path=module.display,
                        line=node.lineno,
                        col=node.col_offset,
                        message=message,
                        symbol=symbol_for(node),
                    )
                )
    return findings


def _check_det001(context) -> List[Finding]:
    return [f for f in _scan_calls(context) if f.rule == "DET001"]


def _check_det002(context) -> List[Finding]:
    return [f for f in _scan_calls(context) if f.rule == "DET002"]


def _check_det003(context) -> List[Finding]:
    return [f for f in _scan_calls(context) if f.rule == "DET003"]


# ----------------------------------------------------------------------
# DET004: unsorted set/dict iteration on fingerprint paths
# ----------------------------------------------------------------------
def _is_set_or_view(node: ast.expr, imap: Dict[str, str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node, imap)
        if name in UNORDERED_BUILTIN_CALLS:
            return True
        if method_name(node) in UNORDERED_VIEW_METHODS and not node.args:
            return True
    return False


def _check_det004(context) -> List[Finding]:
    findings: List[Finding] = []
    for fn in context.fingerprint_reachable:
        scan = _UnorderedScan(
            fn.module,
            rule="DET004",
            family="DET",
            what=(
                "an unordered set/dict view on a fingerprint path"
                f" (reachable via {fn.qualname})"
            ),
            is_source=_is_set_or_view,
        )
        findings.extend(scan.scan(fn.node))
    # The same loop can be reachable through several roots; report once.
    unique = {}
    for finding in findings:
        unique.setdefault((finding.path, finding.line, finding.col), finding)
    return list(unique.values())


# ----------------------------------------------------------------------
# DET005: unsorted directory listings
# ----------------------------------------------------------------------
def _is_listing(node: ast.expr, imap: Dict[str, str]) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node, imap)
    if name in LISTING_CALLS:
        return True
    return method_name(node) in LISTING_METHODS


def _check_det005(context) -> List[Finding]:
    findings: List[Finding] = []
    for module in context.modules:
        scan = _UnorderedScan(
            module,
            rule="DET005",
            family="DET",
            what="an os.listdir/glob result (filesystem order varies)",
            is_source=_is_listing,
        )
        findings.extend(scan.scan(module.tree))
    return findings


RULES = [
    Rule(
        id="DET001",
        family="DET",
        summary="no wall-clock reads inside sim/core/firmware/hinj/sensors",
        check=_check_det001,
    ),
    Rule(
        id="DET002",
        family="DET",
        summary="no entropy sources (uuid/os.urandom/secrets) in the core",
        check=_check_det002,
    ),
    Rule(
        id="DET003",
        family="DET",
        summary="no unseeded global random in the core",
        check=_check_det003,
    ),
    Rule(
        id="DET004",
        family="DET",
        summary="no unsorted set/dict iteration on fingerprint paths",
        check=_check_det004,
    ),
    Rule(
        id="DET005",
        family="DET",
        summary="os.listdir/glob results must be sorted before use",
        check=_check_det005,
    ),
]
