"""The ``repro-lint`` / ``python -m repro.lint`` command line.

Exit codes: 0 clean, 1 findings (or stale baseline entries), 2 usage /
environment errors.  ``--changed`` narrows the run to files that differ
from the merge base with the main branch (plus untracked files), which
keeps pre-push runs fast; CI always lints the full tree.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from typing import List, Optional, Sequence

from repro.lint import baseline as baseline_mod
from repro.lint.driver import run_lint
from repro.lint.registry import META_RULES, all_rules
from repro.lint.report import render_json, render_text

#: Refs probed, in order, for the ``--changed`` merge base.
MERGE_BASE_CANDIDATES = ("origin/main", "origin/master", "main", "master")


def _git(args: List[str], cwd: str) -> Optional[str]:
    """Run a git command; None when git (or the ref) is unavailable."""
    try:
        proc = subprocess.run(
            ["git"] + args,
            cwd=cwd,
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError:
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout


def _changed_files(paths: Sequence[str], cwd: str) -> Optional[List[str]]:
    """Python files under ``paths`` that differ from the merge base.

    Includes untracked files (new fixtures must not dodge the lint).
    Returns ``None`` when no merge base can be determined.
    """
    merge_base = None
    for candidate in MERGE_BASE_CANDIDATES:
        out = _git(["merge-base", "HEAD", candidate], cwd)
        if out and out.strip():
            merge_base = out.strip()
            break
    if merge_base is None:
        return None
    changed = _git(["diff", "--name-only", merge_base, "--"], cwd)
    untracked = _git(["ls-files", "--others", "--exclude-standard"], cwd)
    if changed is None:
        return None
    names = set(changed.split()) | set((untracked or "").split())
    roots = [os.path.normpath(path) for path in paths]
    selected: List[str] = []
    for name in sorted(names):
        if not name.endswith(".py"):
            continue
        normalized = os.path.normpath(name)
        if not any(
            normalized == root or normalized.startswith(root + os.sep)
            for root in roots
        ):
            continue
        if os.path.exists(os.path.join(cwd, normalized)):
            selected.append(os.path.join(cwd, normalized))
    return selected


def _list_rules() -> str:
    lines = ["rule    family  summary"]
    for rule in all_rules():
        lines.append(f"{rule.id}  {rule.family:<6}  {rule.summary}")
    for rule_id, summary in META_RULES:
        lines.append(f"{rule_id}  LNT     {summary}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism & fabric-safety analyzer for the"
            " repro tree (rule families DET/FPR/OBS/FAB)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline file of known findings; defaults to"
            f" ./{baseline_mod.DEFAULT_BASELINE} when it exists"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "lint only files differing from the merge base with"
            " main (plus untracked files)"
        ),
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list waived and baselined findings (text format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    cwd = os.getcwd()
    baseline_path: Optional[str] = args.baseline
    if args.no_baseline:
        baseline_path = None
    elif baseline_path is None:
        default = os.path.join(cwd, baseline_mod.DEFAULT_BASELINE)
        if os.path.exists(default):
            baseline_path = default

    files: Optional[List[str]] = None
    if args.changed:
        files = _changed_files(args.paths, cwd)
        if files is None:
            print(
                "repro-lint: --changed needs a git merge base"
                " (origin/main, origin/master, main or master);"
                " none found",
                file=sys.stderr,
            )
            return 2
        if not files:
            print("0 finding(s), 0 waived, 0 baselined, 0 file(s) checked")
            return 0

    missing = [
        path
        for path in (files if files is not None else args.paths)
        if not os.path.exists(path)
    ]
    if missing:
        print(
            f"repro-lint: no such path: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    if args.write_baseline:
        result = run_lint(args.paths, baseline_path=None, files=files)
        target = args.baseline or os.path.join(
            cwd, baseline_mod.DEFAULT_BASELINE
        )
        baseline_mod.write_baseline(target, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to"
            f" {os.path.relpath(target, cwd)}"
        )
        return 0

    result = run_lint(args.paths, baseline_path=baseline_path, files=files)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
