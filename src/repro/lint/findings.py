"""The structured finding record every rule emits.

A finding pins a rule id to a source location plus a message.  The
``symbol`` (enclosing function or field, when known) participates in the
baseline identity instead of the line number, so committed baselines
survive unrelated edits that shift lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    family: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""

    def render(self) -> str:
        """The one-line text form, ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def order_key(self) -> Tuple[str, int, int, str, str]:
        """Deterministic display ordering."""
        return (self.path, self.line, self.col, self.rule, self.message)

    def identity(self) -> Tuple[str, str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.path, self.rule, self.symbol, self.message)

    def to_dict(self) -> Dict[str, object]:
        """The JSON-output form."""
        return {
            "rule": self.rule,
            "family": self.family,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }
