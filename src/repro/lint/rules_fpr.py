"""FPR: fingerprint-coverage rules.

``FPR001`` machine-checks the recurring "field exists but the
fingerprint never renders it" bug class: every dataclass field of the
classes registered in :mod:`repro.lint.fingerprint_registry` must be
consumed by its fingerprint routine(s), credited through a declared
property alias, or exempted there with a justification.

The check is skipped for a class whose fingerprint routines are not in
the analyzed file set at all (e.g. a ``--changed`` run touching only
``config.py``); run the analyzer over the full tree -- as CI does --
for authoritative coverage.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint import fingerprint_registry
from repro.lint.callgraph import FunctionInfo
from repro.lint.findings import Finding
from repro.lint.registry import Rule
from repro.lint.walker import LintModule


def _class_fields(node: ast.ClassDef) -> List[Tuple[str, int, int]]:
    """The dataclass fields of a class body: (name, line, col).

    Only annotated assignments declare fields; ``ClassVar`` annotations
    and private names are not fields.
    """
    fields: List[Tuple[str, int, int]] = []
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        target = statement.target
        if not isinstance(target, ast.Name) or target.id.startswith("_"):
            continue
        annotation = statement.annotation
        base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
        if isinstance(base, ast.Name) and base.id == "ClassVar":
            continue
        if isinstance(base, ast.Attribute) and base.attr == "ClassVar":
            continue
        fields.append((target.id, statement.lineno, statement.col_offset))
    return fields


def _consumed_names(functions: List[FunctionInfo]) -> Set[str]:
    """Every attribute name and getattr-string the routines touch."""
    consumed: Set[str] = set()
    for fn in functions:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Attribute):
                consumed.add(node.attr)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in ("getattr", "hasattr")
                    and len(node.args) >= 2
                    and isinstance(node.args[1], ast.Constant)
                    and isinstance(node.args[1].value, str)
                ):
                    consumed.add(node.args[1].value)
    return consumed


def _fingerprint_functions_for(
    context, class_module: LintModule, names: Tuple[str, ...]
) -> List[FunctionInfo]:
    """The registered routines, preferring the class's own module."""
    local = [
        fn
        for fn in context.callgraph.functions
        if fn.name in names and fn.module is class_module
    ]
    if local:
        return local
    return [fn for fn in context.callgraph.functions if fn.name in names]


def _check_fpr001(context) -> List[Finding]:
    findings: List[Finding] = []
    registry = fingerprint_registry.FINGERPRINT_FUNCTIONS
    for module in context.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or node.name not in registry:
                continue
            routine_names = registry[node.name]
            routines = _fingerprint_functions_for(context, module, routine_names)
            if not routines:
                continue
            consumed = _consumed_names(routines)
            aliases = fingerprint_registry.FIELD_ALIASES.get(node.name, {})
            for field, line, col in _class_fields(node):
                if field in consumed:
                    continue
                if any(alias in consumed for alias in aliases.get(field, ())):
                    continue
                exemption = fingerprint_registry.EXEMPTIONS.get(
                    (node.name, field)
                )
                if exemption:
                    continue
                routine_list = ", ".join(sorted({fn.name for fn in routines}))
                findings.append(
                    Finding(
                        rule="FPR001",
                        family="FPR",
                        path=module.display,
                        line=line,
                        col=col,
                        message=(
                            f"field {node.name}.{field} is not consumed by"
                            f" {routine_list} and has no entry in the"
                            " fingerprint exemption registry"
                            " (repro/lint/fingerprint_registry.py)"
                        ),
                        symbol=f"{node.name}.{field}",
                    )
                )
    return findings


RULES = [
    Rule(
        id="FPR001",
        family="FPR",
        summary=(
            "every RunConfiguration/FaultSpec/TrafficFaultSpec/VehicleSpec"
            " field reaches its fingerprint or is exempted"
        ),
        check=_check_fpr001,
    ),
]
