"""The committed baseline: known findings that do not fail the build.

A baseline entry matches findings by ``(path, rule, symbol, message)``
-- deliberately *not* by line number, so unrelated edits that shift
lines never churn the file.  The repo policy (ISSUE 10) is that the
committed ``lint-baseline.json`` stays empty for ``src/repro``: the
baseline exists to stage the analyzer onto a dirty tree, not to park
violations forever.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Set, Tuple

from repro.lint.findings import Finding

BASELINE_VERSION = 1

#: Default baseline filename probed in the working directory.
DEFAULT_BASELINE = "lint-baseline.json"

Identity = Tuple[str, str, str, str]


def load_baseline(path: str) -> Set[Identity]:
    """The identities recorded in a baseline file (empty if absent)."""
    if not os.path.exists(path):
        return set()
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(f"{path} is not a repro.lint baseline file")
    identities: Set[Identity] = set()
    for entry in payload["entries"]:
        identities.add(
            (
                str(entry["path"]),
                str(entry["rule"]),
                str(entry.get("symbol", "")),
                str(entry["message"]),
            )
        )
    return identities


def apply_baseline(
    findings: Iterable[Finding], baseline: Set[Identity]
) -> Tuple[List[Finding], List[Finding], List[Identity]]:
    """Split findings into (kept, baselined); report unused entries.

    Unused entries are returned (sorted) so the caller can nudge the
    user to prune them -- a baseline shrinks, it never rots.
    """
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    used: Set[Identity] = set()
    for finding in findings:
        identity = finding.identity()
        if identity in baseline:
            suppressed.append(finding)
            used.add(identity)
        else:
            kept.append(finding)
    return kept, suppressed, sorted(baseline - used)


def write_baseline(path: str, findings: Iterable[Finding]) -> None:
    """Record ``findings`` as the new baseline (sorted, stable)."""
    entries: List[Dict[str, str]] = []
    for identity in sorted({f.identity() for f in findings}):
        entry_path, rule, symbol, message = identity
        entries.append(
            {"path": entry_path, "rule": rule, "symbol": symbol, "message": message}
        )
    payload = {"version": BASELINE_VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
