"""Shared AST helpers: import resolution and qualified-name walking.

The rules never inspect runtime objects -- everything is resolved from
the source alone.  The central tool is the *import map*: a per-module
dictionary from local names to the dotted origin they were imported
from, which lets a rule recognise ``t.time()``, ``time.time()`` and
``from time import time; time()`` as the same canonical call.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def import_map(tree: ast.Module, module_name: str = "") -> Dict[str, str]:
    """Local name -> dotted origin, for every import anywhere in the file.

    Function-local imports are included: the deferred-import idiom the
    OBS rules allow still has to resolve when the imported name is used.
    Relative imports are anchored on ``module_name`` best-effort.
    """
    package = module_name.rsplit(".", 1)[0] if "." in module_name else ""
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    mapping[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = module_name.split(".") if module_name else []
                anchor = anchor[: len(anchor) - node.level] or [package or "?"]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                local = alias.asname or alias.name
                mapping[local] = f"{base}.{alias.name}" if base else alias.name
    return mapping


def dotted_name(node: ast.expr, imap: Dict[str, str]) -> Optional[str]:
    """The canonical dotted form of a Name/Attribute chain, or None.

    ``obs_runtime.current`` with ``obs_runtime`` imported from
    ``repro.obs`` resolves to ``repro.obs.runtime.current``.  Chains not
    rooted in a plain name (``self.x.y``) do not resolve.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(imap.get(node.id, node.id))
    return ".".join(reversed(parts))


def call_name(node: ast.Call, imap: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name of a call's target, or None."""
    return dotted_name(node.func, imap)


def method_name(node: ast.Call) -> Optional[str]:
    """The bare attribute name of a method-style call, or None."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    """The parent annotated by the walker, or None at the module root."""
    return getattr(node, "lint_parent", None)


def enclosing_function(node: ast.AST) -> Optional[FunctionNode]:
    """The innermost function/method containing ``node``, if any."""
    current = parent_of(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parent_of(current)
    return None


def function_qualname(node: FunctionNode) -> str:
    """``Class.method`` / ``outer.<locals>.inner``-style display name."""
    parts = [node.name]
    current = parent_of(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            parts.append(f"{current.name}.<locals>")
        elif isinstance(current, ast.ClassDef):
            parts.append(current.name)
        current = parent_of(current)
    return ".".join(reversed(parts))


def symbol_for(node: ast.AST) -> str:
    """The baseline symbol of a node: its enclosing function, or ''."""
    function = enclosing_function(node)
    return function_qualname(function) if function is not None else ""


def walk_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, FunctionNode]]:
    """Every function/method in the module with its qualified name."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield function_qualname(node), node


def is_type_checking_block(node: ast.stmt) -> bool:
    """True for an ``if TYPE_CHECKING:`` guard (eager-import exempt)."""
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def is_none_constant(node: ast.expr) -> bool:
    """True for the literal ``None``."""
    return isinstance(node, ast.Constant) and node.value is None


def names_in(node: ast.AST) -> List[str]:
    """Every plain Name id appearing in a subtree."""
    return [n.id for n in ast.walk(node) if isinstance(n, ast.Name)]
