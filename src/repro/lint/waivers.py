"""Inline waivers: deliberate violations carry their justification.

A waiver comment suppresses named rules on its own line and on the line
directly below (so a comment can sit above a long statement)::

    global _ACTIVE  # repro-lint: disable=FAB003 -- fork workers inherit it

The justification after ``--`` is mandatory: a waiver without one still
suppresses the finding (the author clearly meant it) but is itself
reported as ``LNT001``, so unjustified suppressions cannot accumulate
silently.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.lint.findings import Finding
from repro.lint.walker import LintModule

WAIVER_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
    r"(?:\s*--\s*(.*\S))?"
)


@dataclass(frozen=True)
class Waiver:
    """One parsed waiver comment."""

    line: int
    rules: Tuple[str, ...]
    justification: str

    def covers(self, finding: Finding) -> bool:
        """True when this waiver suppresses ``finding``."""
        return finding.rule in self.rules and finding.line in (
            self.line,
            self.line + 1,
        )


def waivers_in(module: LintModule) -> List[Waiver]:
    """Every waiver comment in the module, in line order."""
    found: List[Waiver] = []
    for lineno, text in enumerate(module.lines, start=1):
        match = WAIVER_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            sorted(part.strip() for part in match.group(1).split(","))
        )
        found.append(
            Waiver(
                line=lineno,
                rules=rules,
                justification=(match.group(2) or "").strip(),
            )
        )
    return found


def apply_waivers(
    modules: Iterable[LintModule], findings: Iterable[Finding]
) -> Tuple[List[Finding], List[Finding], List[Finding]]:
    """Split findings into (kept, waived) and report bad waivers.

    Returns ``(kept, waived, meta)`` where ``meta`` holds one ``LNT001``
    finding per waiver that lacks a justification.
    """
    by_path: Dict[str, List[Waiver]] = {}
    meta: List[Finding] = []
    for module in modules:
        module_waivers = waivers_in(module)
        if module_waivers:
            by_path[module.display] = module_waivers
        for waiver in module_waivers:
            if not waiver.justification:
                meta.append(
                    Finding(
                        rule="LNT001",
                        family="LNT",
                        path=module.display,
                        line=waiver.line,
                        col=0,
                        message=(
                            "waiver for "
                            + ",".join(waiver.rules)
                            + " has no justification; append"
                            " '-- <why this is safe>'"
                        ),
                    )
                )
    kept: List[Finding] = []
    waived: List[Finding] = []
    for finding in findings:
        if any(
            waiver.covers(finding)
            for waiver in by_path.get(finding.path, ())
        ):
            waived.append(finding)
        else:
            kept.append(finding)
    return kept, waived, meta
