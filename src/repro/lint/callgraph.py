"""A best-effort, bare-name call graph over the analyzed modules.

The determinism rules need *reachability*: "is this function on a
fingerprint path?".  Python's dynamism makes a precise call graph
impossible statically, so edges are resolved by bare name -- a call to
``label`` reaches every known function named ``label``.  That
over-approximates (extra functions get scanned, which at worst produces
a waivable finding) and never under-approximates for direct calls,
which is the right trade for an invariant checker.

Fingerprint *roots* are the routines whose output feeds cache keys,
scenario hashes, stable labels or sort orders; anything they reach must
be deterministic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.lint.astutil import FunctionNode, function_qualname
from repro.lint.walker import LintModule

#: Substrings / exact names marking a function as a fingerprint root.
FINGERPRINT_ROOT_SUBSTRINGS = ("fingerprint", "cache_key")
FINGERPRINT_ROOT_NAMES = frozenset(
    {
        "scenario_key",
        "key_for",
        "bug_registry_stamp",
        "sort_key",
        "_sort_key",
        "_spec_sort_key",
        "label",
        "failure_label",
        "__hash__",
        "_canonical",
    }
)


@dataclass
class FunctionInfo:
    """One analyzed function/method."""

    module: LintModule
    qualname: str
    name: str
    node: FunctionNode
    callees: Set[str] = field(default_factory=set)

    @property
    def is_fingerprint_root(self) -> bool:
        """True when this function's output feeds keys/hashes/labels."""
        return (
            any(part in self.name for part in FINGERPRINT_ROOT_SUBSTRINGS)
            or self.name in FINGERPRINT_ROOT_NAMES
        )


#: Method names so common on builtin containers/strings that a bare-name
#: edge through them would connect everything to everything (``d.get``
#: must not reach every class's ``get``).  Direct ``Name`` calls are
#: never filtered, so helper *functions* with these names still resolve.
UBIQUITOUS_METHODS = frozenset(
    {
        "get",
        "pop",
        "update",
        "setdefault",
        "append",
        "extend",
        "insert",
        "remove",
        "clear",
        "copy",
        "add",
        "discard",
        "keys",
        "values",
        "items",
        "join",
        "split",
        "strip",
        "format",
        "encode",
        "decode",
        "read",
        "write",
        "close",
        "open",
    }
)


def _called_names(node: FunctionNode) -> Set[str]:
    """Bare names of everything the function (incl. nested defs) calls."""
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            func = child.func
            if isinstance(func, ast.Name):
                names.add(func.id)
            elif isinstance(func, ast.Attribute):
                if func.attr not in UBIQUITOUS_METHODS:
                    names.add(func.attr)
    return names


class CallGraph:
    """Bare-name call graph over a set of modules."""

    def __init__(self, modules: Iterable[LintModule]) -> None:
        self.functions: List[FunctionInfo] = []
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        for module in modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                info = FunctionInfo(
                    module=module,
                    qualname=function_qualname(node),
                    name=node.name,
                    node=node,
                    callees=_called_names(node),
                )
                self.functions.append(info)
                self.by_name.setdefault(node.name, []).append(info)
                # A call spelled with the class name reaches the
                # constructor chain.
                if node.name in ("__init__", "__post_init__"):
                    owner = info.qualname.rsplit(".", 2)
                    if len(owner) >= 2:
                        self.by_name.setdefault(owner[-2], []).append(info)

    def fingerprint_roots(self) -> List[FunctionInfo]:
        """Every fingerprint/cache-key/label/sort routine."""
        return [fn for fn in self.functions if fn.is_fingerprint_root]

    def reachable_from(
        self, roots: Iterable[FunctionInfo]
    ) -> List[FunctionInfo]:
        """Roots plus everything transitively callable from them."""
        seen: Set[int] = set()
        order: List[FunctionInfo] = []
        stack = list(roots)
        while stack:
            fn = stack.pop()
            if id(fn) in seen:
                continue
            seen.add(id(fn))
            order.append(fn)
            for name in sorted(fn.callees):
                for callee in self.by_name.get(name, ()):
                    if id(callee) not in seen:
                        stack.append(callee)
        return order

    def fingerprint_reachable(self) -> List[FunctionInfo]:
        """Every function on a fingerprint path."""
        return self.reachable_from(self.fingerprint_roots())
