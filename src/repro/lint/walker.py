"""File discovery and parsing: the analyzer's view of one module.

Discovery is itself deterministic (directories and files are walked in
sorted order -- the analyzer practices what it preaches), and every
parsed module carries the dotted name the package-scoped rules key on.
The name is normally derived from the path (everything from the last
``repro`` path component down); a fixture that lives outside the package
tree can pin it with a directive comment near the top of the file::

    # repro-lint: module=repro.sim.fixture_wall_clock
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.lint.findings import Finding

#: Directive pinning a file's dotted module name (fixtures only).
MODULE_DIRECTIVE = re.compile(r"#\s*repro-lint:\s*module=([A-Za-z_][\w.]*)")

#: How many leading lines are searched for the module directive.
DIRECTIVE_WINDOW = 10


@dataclass
class LintModule:
    """One parsed source file plus the metadata rules need."""

    path: str
    display: str
    name: str
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)

    def in_package(self, *packages: str) -> bool:
        """True when this module lives under any of ``packages``."""
        return any(
            self.name == package or self.name.startswith(package + ".")
            for package in packages
        )


def module_name_for(path: str, source: str) -> str:
    """The dotted module name of ``path`` (directive wins over layout)."""
    for line in source.splitlines()[:DIRECTIVE_WINDOW]:
        match = MODULE_DIRECTIVE.search(line)
        if match:
            return match.group(1)
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    stem = parts[-1][: -len(".py")] if parts[-1].endswith(".py") else parts[-1]
    if "repro" in parts[:-1]:
        anchor = len(parts) - 2 - parts[-2::-1].index("repro")
        dotted = parts[anchor:-1]
        if stem != "__init__":
            dotted.append(stem)
        return ".".join(dotted)
    return stem


def _annotate_parents(tree: ast.Module) -> None:
    """Give every node a ``lint_parent`` pointer (rules climb these)."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child.lint_parent = parent  # type: ignore[attr-defined]


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Every ``.py`` file under ``paths``, in sorted walk order."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name for name in dirnames if not name.startswith(".")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    found.append(os.path.join(dirpath, filename))
    return found


def collect_modules(
    paths: Iterable[str], root: Optional[str] = None
) -> Tuple[List[LintModule], List[Finding]]:
    """Parse every python file under ``paths``.

    Returns the parsed modules plus one ``LNT002`` finding per file that
    failed to parse (a syntax error must fail the lint run, not crash
    it).
    """
    root = root if root is not None else os.getcwd()
    modules: List[LintModule] = []
    errors: List[Finding] = []
    for path in iter_python_files(paths):
        display = os.path.relpath(path, root).replace(os.sep, "/")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError, ValueError) as error:
            line = getattr(error, "lineno", None) or 1
            errors.append(
                Finding(
                    rule="LNT002",
                    family="LNT",
                    path=display,
                    line=int(line),
                    col=0,
                    message=f"file could not be parsed: {error}",
                )
            )
            continue
        _annotate_parents(tree)
        modules.append(
            LintModule(
                path=path,
                display=display,
                name=module_name_for(path, source),
                tree=tree,
                source=source,
                lines=source.splitlines(),
            )
        )
    return modules, errors
