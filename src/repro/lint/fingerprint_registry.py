"""The fingerprint-coverage registry behind the FPR rule family.

The engine's bit-identity contract says a cache key covers *everything*
a run's outcome depends on.  The recurring bug class is the silent gap:
a new field lands on :class:`~repro.core.config.RunConfiguration` (or a
fault spec) and nobody threads it into the fingerprint, so two
behaviourally different runs share a cache entry.  ``FPR001`` closes
that gap mechanically: every field of every registered dataclass must
be *consumed* by its fingerprint routine(s) -- directly, through a
declared property alias, or through an explicit exemption below.

How consumption is detected
---------------------------

The rule harvests, from the AST of the registered fingerprint routines,
every attribute name accessed and every string literal passed to
``getattr``.  A field is covered when its own name -- or any name it is
aliased to in :data:`FIELD_ALIASES` -- appears in that harvest.

How to exempt a new non-fingerprinted field
-------------------------------------------

If a new field genuinely cannot affect a run's recorded outcome (say, a
display-only annotation), add an entry here rather than waiving at the
class definition::

    EXEMPTIONS[("RunConfiguration", "display_color")] = (
        "presentation-only; never read by the simulation or the cache"
    )

The justification string is mandatory and should say *why* the field
cannot change what a simulation records.  Prefer threading the field
into the fingerprint (emitting the term only when the value is
non-default keeps existing cache keys byte-identical -- the
``fleet_size`` / ``~duration`` / ``stepper`` terms are the house
pattern) over exempting it: an exemption is a standing claim the
analyzer cannot verify.

If a *property* of the class feeds the fingerprint instead of the raw
field (``firmware_name`` reads ``firmware_class``), declare the mapping
in :data:`FIELD_ALIASES` so the rule credits the field.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Registered dataclass -> the fingerprint routine(s) that must consume
#: its fields.  Routines are looked up by bare name, preferring the
#: module that defines the class, then anywhere in the analyzed tree.
FINGERPRINT_FUNCTIONS: Dict[str, Tuple[str, ...]] = {
    "RunConfiguration": (
        "config_fingerprint",
        "workload_fingerprint",
        "campaign_fingerprint",
    ),
    "VehicleSpec": ("config_fingerprint",),
    "FaultSpec": ("scenario_fingerprint",),
    "TrafficFaultSpec": ("scenario_fingerprint",),
}

#: Field -> property names whose appearance in the fingerprint counts
#: as consuming the field.
FIELD_ALIASES: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "RunConfiguration": {
        # The scalar firmware aliases render through the flavour name.
        "firmware_class": ("firmware_name",),
        # Heterogeneous fleets render per-vehicle terms through these
        # two properties; homogeneous fleets deliberately omit them.
        "vehicles": ("vehicle_specs", "is_heterogeneous"),
    },
    "VehicleSpec": {
        "firmware_class": ("firmware_name",),
    },
    "TrafficFaultSpec": {
        # The vehicle-namespaced label folds in the vehicle, the fault
        # kind and (for DELAY faults) the extra delay.
        "vehicle": ("label",),
        "kind": ("label",),
        "extra_delay_s": ("label",),
    },
}

#: (class, field) -> justification for fields deliberately outside the
#: fingerprint.  Empty for the shipped tree: every behaviour-bearing
#: field is currently consumed.  See the module docstring before adding
#: an entry.
EXEMPTIONS: Dict[Tuple[str, str], str] = {}
