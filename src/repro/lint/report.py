"""Rendering: the text and JSON forms of a lint result.

Both forms are byte-deterministic for a given result (sorted findings,
sorted keys) so CI diffs and cached artifacts stay stable.
"""

from __future__ import annotations

import json

from repro.lint.driver import LintResult


def render_text(result: LintResult, verbose: bool = False) -> str:
    """The human-facing report."""
    lines = [finding.render() for finding in result.findings]
    if verbose and result.waived:
        lines.append("")
        lines.append(f"waived ({len(result.waived)}):")
        lines.extend(f"  {finding.render()}" for finding in result.waived)
    if verbose and result.baselined:
        lines.append("")
        lines.append(f"baselined ({len(result.baselined)}):")
        lines.extend(f"  {finding.render()}" for finding in result.baselined)
    if result.unused_baseline:
        lines.append("")
        lines.append(
            f"unused baseline entries ({len(result.unused_baseline)})"
            " -- prune them from the baseline file:"
        )
        lines.extend(
            f"  {path}: {rule} [{symbol or '-'}] {message}"
            for path, rule, symbol, message in result.unused_baseline
        )
    if lines:
        lines.append("")
    summary = (
        f"{len(result.findings)} finding(s),"
        f" {len(result.waived)} waived,"
        f" {len(result.baselined)} baselined,"
        f" {result.files_checked} file(s) checked"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The machine-facing report (one JSON document)."""
    payload = {
        "findings": [finding.to_dict() for finding in result.findings],
        "waived": [finding.to_dict() for finding in result.waived],
        "baselined": [finding.to_dict() for finding in result.baselined],
        "unused_baseline": [
            {"path": path, "rule": rule, "symbol": symbol, "message": message}
            for path, rule, symbol, message in result.unused_baseline
        ],
        "files_checked": result.files_checked,
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
