"""OBS: observability-hygiene rules.

The PR-6 contract is that observability is *inert by default*: no
runtime installed means no clocks read, no objects allocated, no
behaviour perturbed -- and traced campaigns stay bit-identical to
untraced ones.  Three statically checkable consequences:

``OBS001``
    The result of ``obs_runtime.current()`` is used only under a
    ``None`` gate (``if obs is not None: ...`` / an early return).
``OBS002``
    The simulation core imports nothing from ``repro.obs`` eagerly
    except the gate itself (``repro.obs.runtime``); recorder/metrics
    imports are deferred into the gated call sites (or live in
    ``TYPE_CHECKING`` blocks).
``OBS003``
    Fingerprint paths never touch observability at all -- a cache key
    must not depend on, or feed, the instruments.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.lint.astutil import (
    dotted_name,
    import_map,
    is_none_constant,
    is_type_checking_block,
    names_in,
    parent_of,
    symbol_for,
)
from repro.lint.findings import Finding
from repro.lint.registry import Rule
from repro.lint.walker import LintModule

#: The one module the core may import eagerly: the gate itself.
GATE_MODULE = "repro.obs.runtime"

#: Packages whose eager obs imports are restricted (the determinism
#: core plus everything a simulation run touches).
OBS_IMPORT_SCOPE = (
    "repro.sim",
    "repro.core",
    "repro.firmware",
    "repro.hinj",
    "repro.sensors",
    "repro.mavlink",
    "repro.workloads",
)


def _current_call(node: ast.expr, imap: Dict[str, str]) -> bool:
    """True for a call resolving to ``repro.obs.runtime.current()``."""
    return (
        isinstance(node, ast.Call)
        and dotted_name(node.func, imap) == f"{GATE_MODULE}.current"
    )


def _is_none_test_of(test: ast.expr, name: str) -> Optional[bool]:
    """Classify a test mentioning ``name``.

    Returns True for a positive gate (``name``, ``name is not None``,
    possibly inside ``and``), False for a negative gate
    (``name is None``, ``not name``), None when ``name`` is absent.
    """
    if name not in names_in(test):
        return None
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left_is_name = isinstance(test.left, ast.Name) and test.left.id == name
        if left_is_name and is_none_constant(test.comparators[0]):
            return isinstance(test.ops[0], ast.IsNot)
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        inner = test.operand
        if isinstance(inner, ast.Name) and inner.id == name:
            return False
    # Truthiness or a compound condition mentioning the name counts as
    # a positive gate ("if obs is not None and purged:").
    return True


def _guarded(usage: ast.AST, name: str, function: ast.AST) -> bool:
    """True when ``usage`` of ``name`` sits under a None gate."""
    current = usage
    while current is not function:
        parent = parent_of(current)
        if parent is None:
            break
        if isinstance(parent, ast.If):
            polarity = _is_none_test_of(parent.test, name)
            if polarity is True and current in parent.body:
                return True
            if polarity is False and current in parent.orelse:
                return True
        if isinstance(parent, ast.IfExp):
            polarity = _is_none_test_of(parent.test, name)
            if polarity is True and current is parent.body:
                return True
            if polarity is False and current is parent.orelse:
                return True
        current = parent
    # Early-return gate: a top-level "if name is None: return" before
    # the usage dominates everything after it.
    body = getattr(function, "body", [])
    for statement in body:
        if statement.lineno >= usage.lineno:
            break
        if isinstance(statement, ast.If) and not statement.orelse:
            polarity = _is_none_test_of(statement.test, name)
            exits = statement.body and all(
                isinstance(s, (ast.Return, ast.Raise, ast.Continue))
                for s in statement.body
            )
            if polarity is False and exits:
                return True
    return False


def _check_obs001(context) -> List[Finding]:
    findings: List[Finding] = []
    for module in context.modules:
        if module.in_package("repro.obs") or not module.name.startswith("repro."):
            continue
        imap = import_map(module.tree, module.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            handles: Set[str] = set()
            for child in ast.walk(node):
                if (
                    isinstance(child, ast.Assign)
                    and len(child.targets) == 1
                    and isinstance(child.targets[0], ast.Name)
                    and _current_call(child.value, imap)
                ):
                    handles.add(child.targets[0].id)
            if not handles:
                continue
            for child in ast.walk(node):
                if (
                    isinstance(child, ast.Attribute)
                    and isinstance(child.value, ast.Name)
                    and child.value.id in handles
                    and isinstance(child.ctx, ast.Load)
                    and not _guarded(child, child.value.id, node)
                ):
                    findings.append(
                        Finding(
                            rule="OBS001",
                            family="OBS",
                            path=module.display,
                            line=child.lineno,
                            col=child.col_offset,
                            message=(
                                f"'{child.value.id}."
                                f"{child.attr}' uses the obs runtime without"
                                f" an 'if {child.value.id} is not None' gate;"
                                " ungated instrumentation breaks the"
                                " inert-by-default contract"
                            ),
                            symbol=symbol_for(child),
                        )
                    )
    return findings


def _eager_obs_imports(module: LintModule) -> List[Finding]:
    findings: List[Finding] = []

    def scan_statements(statements) -> None:
        for statement in statements:
            if is_type_checking_block(statement):
                continue
            if isinstance(statement, ast.If):
                scan_statements(statement.body)
                scan_statements(statement.orelse)
                continue
            if isinstance(statement, ast.Try):
                scan_statements(statement.body)
                for handler in statement.handlers:
                    scan_statements(handler.body)
                scan_statements(statement.orelse)
                scan_statements(statement.finalbody)
                continue
            targets: List[str] = []
            if isinstance(statement, ast.Import):
                targets = [alias.name for alias in statement.names]
            elif isinstance(statement, ast.ImportFrom) and statement.module:
                base = statement.module
                if base == "repro.obs":
                    targets = [
                        f"{base}.{alias.name}" for alias in statement.names
                    ]
                else:
                    targets = [base]
            for target in targets:
                if not (target == "repro.obs" or target.startswith("repro.obs.")):
                    continue
                if target == GATE_MODULE or target.startswith(GATE_MODULE + "."):
                    continue
                findings.append(
                    Finding(
                        rule="OBS002",
                        family="OBS",
                        path=module.display,
                        line=statement.lineno,
                        col=statement.col_offset,
                        message=(
                            f"eager import of {target} in the simulation"
                            f" core; only {GATE_MODULE} may be imported at"
                            " module level -- defer this into the gated"
                            " call site or a TYPE_CHECKING block"
                        ),
                    )
                )

    scan_statements(module.tree.body)
    return findings


def _check_obs002(context) -> List[Finding]:
    findings: List[Finding] = []
    for module in context.modules:
        if module.in_package(*OBS_IMPORT_SCOPE):
            findings.extend(_eager_obs_imports(module))
    return findings


def _check_obs003(context) -> List[Finding]:
    findings: List[Finding] = []
    seen: Set[int] = set()
    for fn in context.fingerprint_reachable:
        if id(fn.node) in seen:
            continue
        seen.add(id(fn.node))
        if fn.module.in_package("repro.obs") or not fn.module.name.startswith(
            "repro."
        ):
            continue
        imap = import_map(fn.module.tree, fn.module.name)
        for node in ast.walk(fn.node):
            if not isinstance(node, (ast.Name, ast.Attribute)):
                continue
            dotted = dotted_name(node, imap)
            if dotted is None or not dotted.startswith("repro.obs"):
                continue
            if isinstance(parent_of(node), ast.Attribute):
                continue  # report the full chain once, not each prefix
            findings.append(
                Finding(
                    rule="OBS003",
                    family="OBS",
                    path=fn.module.display,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"observability reference ({dotted}) inside"
                        f" fingerprint-path routine {fn.qualname};"
                        " cache keys must neither depend on nor feed the"
                        " instruments"
                    ),
                    symbol=fn.qualname,
                )
            )
            break
    return findings


RULES = [
    Rule(
        id="OBS001",
        family="OBS",
        summary="obs_runtime.current() results are used under a None gate",
        check=_check_obs001,
    ),
    Rule(
        id="OBS002",
        family="OBS",
        summary="the core imports only repro.obs.runtime eagerly",
        check=_check_obs002,
    ),
    Rule(
        id="OBS003",
        family="OBS",
        summary="fingerprint paths never touch observability",
        check=_check_obs003,
    ),
]
