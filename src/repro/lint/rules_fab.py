"""FAB: fabric / concurrency hygiene rules.

The distributed fabric (PR 8) moved campaigns onto threads, sockets and
fork-started workers; three bug classes from that work are statically
checkable:

``FAB001``
    Every ``threading.Thread(...)`` sets ``daemon=`` explicitly.  An
    implicit non-daemon thread keeps the process alive after a crash;
    an accidentally inherited daemon flag silently drops work -- either
    way the intent must be written down.
``FAB002``
    No blocking socket operation while a lock is held: a peer that
    stalls mid-frame would then stall every thread contending for the
    lock (the campaign service deliberately sends *outside* its lock).
``FAB003``
    Worker-imported modules do not rebind module-global state
    (``global X``): fork-started workers inherit a copy that silently
    diverges from the parent's.  The sanctioned fork-inheritance
    globals carry inline waivers naming why they are safe.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.astutil import call_name, import_map, symbol_for
from repro.lint.findings import Finding
from repro.lint.registry import Rule

#: Packages imported by pool/remote workers (fork or spawn).
WORKER_SCOPE = (
    "repro.sim",
    "repro.sensors",
    "repro.firmware",
    "repro.hinj",
    "repro.mavlink",
    "repro.workloads",
    "repro.core",
    "repro.engine",
    "repro.obs",
)

#: Method names that block on a socket (or speak a frame on one).
BLOCKING_SOCKET_METHODS = frozenset(
    {"send", "sendall", "sendto", "recv", "recv_into", "accept", "connect"}
)
BLOCKING_FRAME_HELPERS = frozenset({"send_frame", "recv_frame"})


def _check_fab001(context) -> List[Finding]:
    findings: List[Finding] = []
    for module in context.modules:
        imap = import_map(module.tree, module.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node, imap) != "threading.Thread":
                continue
            if any(keyword.arg == "daemon" for keyword in node.keywords):
                continue
            findings.append(
                Finding(
                    rule="FAB001",
                    family="FAB",
                    path=module.display,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "threading.Thread(...) without an explicit daemon="
                        " flag; write the lifetime intent down"
                    ),
                    symbol=symbol_for(node),
                )
            )
    return findings


def _looks_like_lock(node: ast.expr) -> bool:
    """True when a with-item expression names a lock."""
    text = ast.unparse(node).lower()
    return "lock" in text


def _check_fab002(context) -> List[Finding]:
    findings: List[Finding] = []
    for module in context.modules:
        imap = import_map(module.tree, module.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not any(
                _looks_like_lock(item.context_expr) for item in node.items
            ):
                continue
            for child in ast.walk(node):
                if not isinstance(child, ast.Call):
                    continue
                blocking = False
                if isinstance(child.func, ast.Attribute):
                    blocking = child.func.attr in BLOCKING_SOCKET_METHODS
                name = call_name(child, imap)
                if name is not None and name.rsplit(".", 1)[-1] in (
                    BLOCKING_FRAME_HELPERS
                ):
                    blocking = True
                if not blocking:
                    continue
                findings.append(
                    Finding(
                        rule="FAB002",
                        family="FAB",
                        path=module.display,
                        line=child.lineno,
                        col=child.col_offset,
                        message=(
                            f"blocking socket operation"
                            f" '{ast.unparse(child.func)}' while a lock is"
                            " held; a stalled peer would stall every"
                            " contending thread -- move the I/O outside"
                            " the lock"
                        ),
                        symbol=symbol_for(child),
                    )
                )
    return findings


def _check_fab003(context) -> List[Finding]:
    findings: List[Finding] = []
    for module in context.modules:
        if not module.in_package(*WORKER_SCOPE):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Global):
                continue
            names = ", ".join(node.names)
            findings.append(
                Finding(
                    rule="FAB003",
                    family="FAB",
                    path=module.display,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"'global {names}' rebinds module state in a"
                        " worker-imported module; fork-started workers"
                        " inherit a diverging copy -- inject the state"
                        " explicitly or waive with the fork-safety"
                        " argument"
                    ),
                    symbol=symbol_for(node),
                )
            )
    return findings


RULES = [
    Rule(
        id="FAB001",
        family="FAB",
        summary="threads declare daemon= explicitly",
        check=_check_fab001,
    ),
    Rule(
        id="FAB002",
        family="FAB",
        summary="no blocking socket I/O while holding a lock",
        check=_check_fab002,
    ),
    Rule(
        id="FAB003",
        family="FAB",
        summary="worker-imported modules do not rebind module globals",
        check=_check_fab003,
    ),
]
