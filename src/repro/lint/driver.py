"""The lint driver: collect, check, waive, baseline.

``run_lint`` is the one entry point both the CLI and the test suite use.
It parses the requested files, builds the call graph once, runs every
registered rule against the shared :class:`LintContext`, then applies
inline waivers and the committed baseline.  Everything it returns is
deterministically ordered -- the analyzer is subject to the same
bit-identity contract as the code it checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lint import baseline as baseline_mod
from repro.lint.callgraph import CallGraph, FunctionInfo
from repro.lint.findings import Finding
from repro.lint.registry import all_rules
from repro.lint.waivers import apply_waivers
from repro.lint.walker import LintModule, collect_modules


@dataclass
class LintContext:
    """Everything a rule check may consult."""

    modules: List[LintModule]
    callgraph: CallGraph
    fingerprint_reachable: List[FunctionInfo]

    @classmethod
    def build(cls, modules: List[LintModule]) -> "LintContext":
        graph = CallGraph(modules)
        return cls(
            modules=modules,
            callgraph=graph,
            fingerprint_reachable=graph.fingerprint_reachable(),
        )


@dataclass
class LintResult:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    waived: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    unused_baseline: List[Tuple[str, str, str, str]] = field(
        default_factory=list
    )
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing fails the run."""
        return not self.findings and not self.unused_baseline


def check_modules(modules: List[LintModule]) -> List[Finding]:
    """Run every registered rule over already-parsed modules."""
    context = LintContext.build(modules)
    findings: List[Finding] = []
    for rule in all_rules():
        findings.extend(rule.check(context))
    return findings


def run_lint(
    paths: Sequence[str],
    baseline_path: Optional[str] = None,
    root: Optional[str] = None,
    files: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint ``paths`` (or an explicit ``files`` list) end to end.

    ``baseline_path`` points at a committed baseline file; ``None``
    means no baseline is applied.  ``root`` anchors the relative paths
    findings are reported with (defaults to the working directory).
    """
    targets = list(files) if files is not None else list(paths)
    modules, parse_errors = collect_modules(targets, root=root)
    raw = check_modules(modules)
    kept, waived, waiver_meta = apply_waivers(modules, raw)
    kept.extend(waiver_meta)
    kept.extend(parse_errors)
    baselined: List[Finding] = []
    unused: List[Tuple[str, str, str, str]] = []
    if baseline_path is not None:
        known = baseline_mod.load_baseline(baseline_path)
        kept, baselined, unused = baseline_mod.apply_baseline(kept, known)
    return LintResult(
        findings=sorted(kept, key=Finding.order_key),
        waived=sorted(waived, key=Finding.order_key),
        baselined=sorted(baselined, key=Finding.order_key),
        unused_baseline=unused,
        files_checked=len(modules) + len(parse_errors),
    )
