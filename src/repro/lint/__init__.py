"""repro.lint: AST-based determinism & fabric-safety analysis.

The repo's whole value proposition is that campaigns are deterministic
and replayable -- serial == pool == remote bit-for-bit, cache
fingerprints cover every behaviour-affecting field, observability inert
by default.  Those invariants were guarded only by runtime equivalence
tests; this package enforces them *statically*, so the bug classes are
rejected at lint time instead of bisected out of a flaky nightly.

Rule families
-------------

``DET`` -- determinism sources.  No wall clocks, entropy, or unseeded
    global ``random`` inside the simulation core; no unsorted set/dict
    iteration in any function reachable from a fingerprint / cache-key /
    label routine; ``os.listdir``/``glob`` results must be sorted.
``FPR`` -- fingerprint coverage.  Every field of the registered
    behaviour-bearing dataclasses (``RunConfiguration``, ``FaultSpec``,
    ``TrafficFaultSpec``, ``VehicleSpec``) must be consumed by its
    fingerprint routine or exempted, with justification, in
    :mod:`repro.lint.fingerprint_registry`.
``OBS`` -- observability hygiene.  Instrumentation must route through
    the gated runtime (``obs_runtime.current()`` guarded by a None
    check), eager ``repro.obs`` imports are confined to the runtime
    module inside the simulation core, and fingerprint paths never
    touch observability at all.
``FAB`` -- fabric/concurrency hygiene.  Threads declare ``daemon=``
    explicitly, no blocking socket operation runs while a lock is held,
    and worker-imported modules do not rebind module-global state.
``LNT`` -- analyzer meta rules (waivers without justification, files
    that fail to parse).

Findings can be waived inline::

    value = risky()  # repro-lint: disable=DET001 -- measured, not hashed

or recorded in a committed baseline file (see :mod:`repro.lint.baseline`).
The CLI lives at ``python -m repro.lint`` (also installed as
``repro-lint``).  The package is zero-dependency and pure-stdlib.
"""

from __future__ import annotations

from repro.lint.driver import LintResult, run_lint
from repro.lint.findings import Finding
from repro.lint.registry import all_rules

__all__ = ["Finding", "LintResult", "all_rules", "run_lint"]
