"""The firmware's fused state estimator.

ArduPilot and PX4 both run an extended Kalman filter fusing IMU, GPS,
compass and barometer data (Figure 2 of the paper).  The reproduction
uses complementary filters -- the same fusion structure (inertial
propagation corrected by absolute measurements) with far less machinery
-- because what Avis exercises is not estimation accuracy but the
estimator's *fail-over behaviour*: which source is trusted for each
quantity, what happens when the active instance of a type fails, and how
the rest of the firmware reacts to degraded estimates.

Fail-over rules (mirroring the stock firmware behaviour):

* gyroscope / accelerometer / compass: the primary instance is used; when
  it fails the first healthy backup takes over transparently.
* barometer: primary altitude source; when every barometer has failed the
  estimator falls back to GPS altitude and flags the altitude as degraded.
* GPS: sole horizontal-position source; when it fails the estimator dead
  reckons on the accelerometer and declares the position invalid after a
  configurable timeout.
* battery: not fused; its health is tracked for the fail-safe manager.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Mapping, Optional, Set

from repro.firmware.params import FirmwareParameters
from repro.sensors.base import SensorId, SensorReading, SensorRole, SensorType
from repro.sensors.suite import SensorSuite
from repro.sim.physics import GRAVITY
from repro.sim.state import wrap_angle


@dataclass(frozen=True)
class EstimatorStatus:
    """Health summary of the estimator's input sources."""

    healthy_types: FrozenSet[SensorType] = frozenset()
    failed_types: FrozenSet[SensorType] = frozenset()
    altitude_source: str = "barometer"
    position_valid: bool = True
    heading_valid: bool = True

    def is_healthy(self, sensor_type: SensorType) -> bool:
        """True when at least one instance of ``sensor_type`` still works."""
        return sensor_type in self.healthy_types


@dataclass
class StateEstimate:
    """The estimator's current belief about the vehicle state."""

    time: float = 0.0
    north: float = 0.0
    east: float = 0.0
    altitude: float = 0.0
    vel_north: float = 0.0
    vel_east: float = 0.0
    climb_rate: float = 0.0
    roll: float = 0.0
    pitch: float = 0.0
    yaw: float = 0.0
    status: EstimatorStatus = field(default_factory=EstimatorStatus)

    @property
    def horizontal_position(self) -> tuple:
        """``(north, east)`` in metres."""
        return (self.north, self.east)

    def horizontal_distance_to(self, north: float, east: float) -> float:
        """Horizontal distance from the estimate to a target point."""
        return math.hypot(self.north - north, self.east - east)

    def copy(self) -> "StateEstimate":
        """Return an independent copy of the estimate."""
        return replace(self, status=self.status)


@dataclass(frozen=True)
class SensorFailureEvent:
    """An instance failure noticed by the estimator this update."""

    sensor_id: SensorId
    time: float
    #: True when the failed instance was the one the estimator was
    #: actively using (primary, or a backup that had already taken over).
    was_active_instance: bool
    #: True when no healthy instance of the type remains.
    type_exhausted: bool


class StateEstimator:
    """Complementary-filter state estimator with explicit fail-over."""

    # Correction gains per update (tuned for 50 Hz; scale with dt).
    ALTITUDE_GAIN = 3.0          # 1/s pull of altitude toward measurement
    CLIMB_GAIN = 1.5             # 1/s pull of climb rate toward measurement
    POSITION_GAIN = 2.5
    VELOCITY_GAIN = 2.0
    HEADING_GAIN = 2.0
    ATTITUDE_DECAY = 0.5

    def __init__(self, suite: SensorSuite, params: FirmwareParameters) -> None:
        self._suite = suite
        self._params = params
        self._estimate = StateEstimate()
        self._active_instance: Dict[SensorType, Optional[SensorId]] = {}
        self._known_failed: Set[SensorId] = set()
        self._gps_last_seen = 0.0
        self._initialised = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def estimate(self) -> StateEstimate:
        """The current state estimate."""
        return self._estimate

    @property
    def status(self) -> EstimatorStatus:
        """The current source-health summary."""
        return self._estimate.status

    def active_instance(self, sensor_type: SensorType) -> Optional[SensorId]:
        """The instance currently trusted for ``sensor_type`` (if any)."""
        return self._active_instance.get(sensor_type)

    # ------------------------------------------------------------------
    # Update
    # ------------------------------------------------------------------
    def update(
        self,
        readings: Mapping[SensorId, SensorReading],
        dt: float,
        time: float,
    ) -> tuple:
        """Fuse one set of readings.

        Returns ``(estimate, failure_events)`` where ``failure_events``
        lists the instance failures newly observed during this update --
        the firmware's fail-safe manager (and through it the bug registry)
        consumes them.
        """
        failure_events = self._detect_failures(readings, time)

        gyro = self._select(readings, SensorType.GYROSCOPE)
        accel = self._select(readings, SensorType.ACCELEROMETER)
        compass = self._select(readings, SensorType.COMPASS)
        gps = self._select(readings, SensorType.GPS)
        baro = self._select(readings, SensorType.BAROMETER)

        self._update_attitude(gyro, accel, dt)
        self._update_heading(gyro, compass, dt)
        self._update_vertical(accel, baro, gps, dt)
        self._update_horizontal(accel, gps, dt, time)
        self._update_status(time)
        self._estimate.time = time

        if not self._initialised:
            self._initialised = True
        return self._estimate, failure_events

    # ------------------------------------------------------------------
    # Source selection and failure detection
    # ------------------------------------------------------------------
    def _select(
        self, readings: Mapping[SensorId, SensorReading], sensor_type: SensorType
    ) -> Optional[SensorReading]:
        """Pick the reading from the highest-priority healthy instance."""
        reading = self._suite.read_active(readings, sensor_type)
        self._active_instance[sensor_type] = reading.sensor_id if reading else None
        return reading

    def _detect_failures(
        self, readings: Mapping[SensorId, SensorReading], time: float
    ) -> list:
        """Find instance failures that appeared in this batch of readings."""
        events = []
        for sensor_id, reading in sorted(readings.items()):
            if not reading.failed or sensor_id in self._known_failed:
                continue
            self._known_failed.add(sensor_id)
            previously_active = self._active_instance.get(sensor_id.sensor_type)
            was_active = previously_active is None or previously_active == sensor_id
            if previously_active is None:
                # First update: the primary is by definition the active one.
                was_active = self._suite.role_of(sensor_id) == SensorRole.PRIMARY
            type_exhausted = self._suite.all_failed(sensor_id.sensor_type)
            events.append(
                SensorFailureEvent(
                    sensor_id=sensor_id,
                    time=time,
                    was_active_instance=was_active,
                    type_exhausted=type_exhausted,
                )
            )
        return events

    # ------------------------------------------------------------------
    # Filters
    # ------------------------------------------------------------------
    def _update_attitude(
        self,
        gyro: Optional[SensorReading],
        accel: Optional[SensorReading],
        dt: float,
    ) -> None:
        est = self._estimate
        if gyro is not None:
            est.roll += gyro.value("roll_rate") * dt
            est.pitch += gyro.value("pitch_rate") * dt
        # Without an accelerometer the tilt estimate slowly decays to level,
        # which is what a gyro-only estimate with leak does.
        decay = self.ATTITUDE_DECAY * dt
        if accel is not None:
            # Gravity direction gives an absolute tilt reference.
            ax = accel.value("accel_x")
            ay = accel.value("accel_y")
            az = max(accel.value("accel_z"), 1.0)
            pitch_meas = math.atan2(-ax, az)
            roll_meas = math.atan2(ay, az)
            est.roll += (roll_meas - est.roll) * decay
            est.pitch += (pitch_meas - est.pitch) * decay
        else:
            est.roll -= est.roll * decay
            est.pitch -= est.pitch * decay

    def _update_heading(
        self,
        gyro: Optional[SensorReading],
        compass: Optional[SensorReading],
        dt: float,
    ) -> None:
        est = self._estimate
        if gyro is not None:
            est.yaw = wrap_angle(est.yaw + gyro.value("yaw_rate") * dt)
        if compass is not None:
            error = wrap_angle(compass.value("heading") - est.yaw)
            est.yaw = wrap_angle(est.yaw + error * self.HEADING_GAIN * dt)

    def _vertical_acceleration(self, accel: Optional[SensorReading]) -> float:
        """World-frame vertical acceleration derived from the accelerometer."""
        if accel is None:
            return 0.0
        est = self._estimate
        specific_up = (
            accel.value("accel_z") * math.cos(est.roll) * math.cos(est.pitch)
            + accel.value("accel_x") * math.sin(est.pitch)
            - accel.value("accel_y") * math.sin(est.roll)
        )
        return specific_up - GRAVITY

    def _update_vertical(
        self,
        accel: Optional[SensorReading],
        baro: Optional[SensorReading],
        gps: Optional[SensorReading],
        dt: float,
    ) -> None:
        est = self._estimate
        est.climb_rate += self._vertical_acceleration(accel) * dt
        est.altitude += est.climb_rate * dt

        if baro is not None:
            measurement: Optional[float] = baro.value("altitude")
        elif gps is not None:
            measurement = gps.value("altitude")
        else:
            measurement = None

        if measurement is not None:
            innovation = measurement - est.altitude
            est.altitude += innovation * self.ALTITUDE_GAIN * dt
            est.climb_rate += innovation * self.CLIMB_GAIN * dt

    def _update_horizontal(
        self,
        accel: Optional[SensorReading],
        gps: Optional[SensorReading],
        dt: float,
        time: float,
    ) -> None:
        est = self._estimate
        # Inertial propagation: tilt produces horizontal acceleration.
        accel_forward = GRAVITY * math.tan(est.pitch)
        accel_right = GRAVITY * math.tan(est.roll)
        accel_north = accel_forward * math.cos(est.yaw) - accel_right * math.sin(est.yaw)
        accel_east = accel_forward * math.sin(est.yaw) + accel_right * math.cos(est.yaw)
        if accel is None:
            accel_north = 0.0
            accel_east = 0.0
        est.vel_north += accel_north * dt
        est.vel_east += accel_east * dt
        est.north += est.vel_north * dt
        est.east += est.vel_east * dt

        if gps is not None:
            self._gps_last_seen = time
            pos_gain = self.POSITION_GAIN * dt
            vel_gain = self.VELOCITY_GAIN * dt
            est.north += (gps.value("north") - est.north) * pos_gain
            est.east += (gps.value("east") - est.east) * pos_gain
            est.vel_north += (gps.value("vel_north") - est.vel_north) * vel_gain
            est.vel_east += (gps.value("vel_east") - est.vel_east) * vel_gain

    def _update_status(self, time: float) -> None:
        healthy = frozenset(
            sensor_type
            for sensor_type in self._suite.sensor_types
            if not self._suite.all_failed(sensor_type)
        )
        failed = frozenset(set(self._suite.sensor_types) - set(healthy))
        gps_failed = SensorType.GPS in failed
        baro_failed = SensorType.BAROMETER in failed
        altitude_source = "barometer"
        if baro_failed:
            altitude_source = "gps" if not gps_failed else "inertial"
        position_valid = True
        if gps_failed and (time - self._gps_last_seen) > self._params.gps_timeout_s:
            position_valid = False
        heading_valid = SensorType.COMPASS in healthy or SensorType.GYROSCOPE in healthy
        self._estimate.status = EstimatorStatus(
            healthy_types=healthy,
            failed_types=failed,
            altitude_source=altitude_source,
            position_valid=position_valid,
            heading_valid=heading_valid,
        )
