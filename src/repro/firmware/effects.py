"""The bug-effect engine: applies an :class:`EffectScript` to a run.

When the fail-safe path finds that a sensor failure matches an enabled
bug's trigger, the corresponding effect script becomes *active*.  From
then on the engine corrupts the state estimate, overrides the flight
mode, or overrides the throttle exactly as the script prescribes -- this
is the in-simulation realisation of the mishandled failure.

The engine is intentionally the only place bug behaviour is applied, so
"fixing" a bug (disabling it in the registry) removes the behaviour
completely and the firmware's correct fail-safe path takes over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.firmware.bugs import BugDescriptor, EffectScript
from repro.firmware.estimator import StateEstimate
from repro.firmware.modes import FlightMode


@dataclass
class ActiveEffect:
    """One bug effect currently being applied to the run."""

    descriptor: BugDescriptor
    triggered_at: float
    #: Estimate values captured at trigger time, for the freeze effects.
    frozen_north: float = 0.0
    frozen_east: float = 0.0
    frozen_altitude: float = 0.0
    frozen_heading: float = 0.0
    mode_forced: bool = False
    #: Latches for the throttle-cut effects: once the cut condition has
    #: been met the motors stay off (a reset EKF / tripped interlock does
    #: not spontaneously recover).
    throttle_cut_latched: bool = False

    @property
    def script(self) -> EffectScript:
        """The effect script of the underlying bug."""
        return self.descriptor.effect


@dataclass
class EffectOverrides:
    """Per-step outputs of the effect engine consumed by the firmware."""

    forced_mode: Optional[FlightMode] = None
    throttle_override: Optional[float] = None
    block_takeoff: bool = False
    abort_takeoff_at_altitude: Optional[float] = None


class BugEffectEngine:
    """Applies the active bug effects each control period."""

    def __init__(self) -> None:
        self._active: List[ActiveEffect] = []

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------
    def activate(self, descriptor: BugDescriptor, estimate: StateEstimate, time: float) -> None:
        """Begin applying ``descriptor``'s effect (idempotent per bug)."""
        if any(effect.descriptor.bug_id == descriptor.bug_id for effect in self._active):
            return
        self._active.append(
            ActiveEffect(
                descriptor=descriptor,
                triggered_at=time,
                frozen_north=estimate.north,
                frozen_east=estimate.east,
                frozen_altitude=estimate.altitude,
                frozen_heading=estimate.yaw,
            )
        )

    @property
    def active_bug_ids(self) -> List[str]:
        """Ids of bugs whose effects are currently being applied."""
        return [effect.descriptor.bug_id for effect in self._active]

    @property
    def any_active(self) -> bool:
        """True when at least one bug effect is in force."""
        return bool(self._active)

    # ------------------------------------------------------------------
    # Per-step application
    # ------------------------------------------------------------------
    def corrupt_estimate(self, estimate: StateEstimate) -> StateEstimate:
        """Apply estimate corruptions in place and return the estimate."""
        for effect in self._active:
            script = effect.script
            if script.freeze_horizontal:
                estimate.north = effect.frozen_north
                estimate.east = effect.frozen_east
                estimate.vel_north = 0.0
                estimate.vel_east = 0.0
            if script.freeze_altitude:
                estimate.altitude = effect.frozen_altitude
            if script.vertical_velocity_blind:
                estimate.climb_rate = 0.0
            if script.freeze_heading:
                estimate.yaw = effect.frozen_heading
            if script.altitude_offset:
                estimate.altitude += script.altitude_offset
        return estimate

    def overrides(
        self,
        estimate: StateEstimate,
        airborne: bool,
        time: float,
    ) -> EffectOverrides:
        """Compute the mode/throttle overrides for this control period."""
        result = EffectOverrides()
        for effect in self._active:
            script = effect.script
            elapsed = time - effect.triggered_at
            if (
                script.force_mode is not None
                and not effect.mode_forced
                and elapsed >= script.force_mode_delay_s
            ):
                result.forced_mode = script.force_mode
                effect.mode_forced = True
            if script.throttle_cut_once_airborne:
                if effect.throttle_cut_latched or (airborne and estimate.altitude > 1.5):
                    effect.throttle_cut_latched = True
                    result.throttle_override = 0.0
            if script.throttle_cut_below_altitude is not None:
                # The cut models a state-estimate reset / EKF fail-safe that
                # only fires once the (possibly wrong) fail-safe descent is
                # under way, so give the forced mode a moment to engage.
                should_cut = (
                    airborne
                    and estimate.altitude < script.throttle_cut_below_altitude
                    and elapsed >= script.force_mode_delay_s
                )
                if effect.throttle_cut_latched or should_cut:
                    effect.throttle_cut_latched = True
                    result.throttle_override = 0.0
            if script.block_takeoff:
                result.block_takeoff = True
            if script.abort_takeoff_at_altitude is not None:
                if result.abort_takeoff_at_altitude is None:
                    result.abort_takeoff_at_altitude = script.abort_takeoff_at_altitude
                else:
                    result.abort_takeoff_at_altitude = min(
                        result.abort_takeoff_at_altitude, script.abort_takeoff_at_altitude
                    )
        return result
