"""Control-firmware substrate: ArduPilot- and PX4-flavoured autopilots.

The paper checks two real firmware stacks (ArduPilot 3.6.9 and PX4
1.9.0).  We cannot run those C++ code bases here, so this package
implements a multicopter control firmware with the structure the paper
relies on -- operating modes, a fused state estimator with sensor
fail-over, cascaded navigation controllers, fail-safes, arming logic and
a MAVLink handler -- and two flavours on top of it that differ in mode
naming, parameters, and (crucially) in which *sensor bugs* their
fault-handling logic contains.

Bugs are first-class objects (:mod:`repro.firmware.bugs`): the ten
previously-unknown bugs of Table II exist as latent, enabled-by-default
code paths in the corresponding flavour, and the five previously-known
bugs of Table V can be "re-inserted" exactly like the paper re-inserts
them into the upstream code base.
"""

from repro.firmware.ardupilot import ArduPilotFirmware
from repro.firmware.base import ControlFirmware, FirmwareCrashed
from repro.firmware.bugs import (
    ARDUPILOT_LATENT_BUGS,
    KNOWN_BUGS,
    PX4_LATENT_BUGS,
    BugDescriptor,
    BugRegistry,
    BugSymptom,
    BugTrigger,
    EffectScript,
)
from repro.firmware.estimator import EstimatorStatus, StateEstimate, StateEstimator
from repro.firmware.modes import FlightMode, OperatingModeLabel
from repro.firmware.params import FirmwareParameters
from repro.firmware.px4 import Px4Firmware

__all__ = [
    "ARDUPILOT_LATENT_BUGS",
    "ArduPilotFirmware",
    "BugDescriptor",
    "BugRegistry",
    "BugSymptom",
    "BugTrigger",
    "ControlFirmware",
    "EffectScript",
    "EstimatorStatus",
    "FirmwareCrashed",
    "FirmwareParameters",
    "FlightMode",
    "KNOWN_BUGS",
    "OperatingModeLabel",
    "PX4_LATENT_BUGS",
    "Px4Firmware",
    "StateEstimate",
    "StateEstimator",
]
