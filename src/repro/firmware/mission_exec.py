"""Mission executor: runs an uploaded mission plan in AUTO mode.

The executor walks the mission items in order.  Takeoff items climb to
the item altitude; waypoint items fly to the item's location (expressed
as offsets from home -- the georeferencing helpers in
:mod:`repro.sim.environment` convert workload latitude/longitude pairs);
return-to-launch and land items hand control to the corresponding flight
modes.  It also produces the mission progress telemetry
(``MISSION_CURRENT`` / ``MISSION_ITEM_REACHED``) the GCS relies on.

The waypoint index the executor reports is what refines the operating
mode label (``waypoint-1``, ``waypoint-2`` ...) during AUTO flight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.firmware.estimator import StateEstimate
from repro.firmware.params import FirmwareParameters
from repro.mavlink.messages import MavCommand, MissionItem
from repro.mavlink.mission import MissionPlan
from repro.sim.environment import GeoLocation


@dataclass(frozen=True)
class MissionStep:
    """What the executor wants the firmware to do this control period."""

    #: "takeoff", "waypoint", "rtl", "land", or "complete".
    kind: str
    target_north: Optional[float] = None
    target_east: Optional[float] = None
    target_altitude: Optional[float] = None
    #: 1-based waypoint leg index, used for the operating-mode label.
    waypoint_index: Optional[int] = None
    item_seq: Optional[int] = None


class MissionExecutor:
    """Sequences an uploaded :class:`MissionPlan`."""

    def __init__(self, params: FirmwareParameters, home: GeoLocation) -> None:
        self._params = params
        self._home = home
        self._plan: Optional[MissionPlan] = None
        self._current_index = 0
        self._waypoint_counter = 0
        self._waypoint_assignments: dict = {}
        self._reached: List[int] = []
        self._complete = False

    # ------------------------------------------------------------------
    # Plan management
    # ------------------------------------------------------------------
    def load(self, plan: MissionPlan) -> None:
        """Install a freshly uploaded plan and rewind to its start."""
        self._plan = plan
        self._current_index = 0
        self._waypoint_counter = 0
        self._waypoint_assignments = {}
        self._reached = []
        self._complete = False

    @property
    def has_plan(self) -> bool:
        """True when a mission plan is loaded."""
        return self._plan is not None and not self._plan.is_empty

    @property
    def complete(self) -> bool:
        """True when every item has been executed."""
        return self._complete

    @property
    def current_seq(self) -> int:
        """Sequence number of the item currently being executed."""
        return self._current_index

    @property
    def reached_items(self) -> List[int]:
        """Items completed so far (for ``MISSION_ITEM_REACHED``)."""
        return list(self._reached)

    def _item_offsets(self, item: MissionItem) -> Tuple[float, float]:
        """Convert an item's lat/lon to local (north, east) offsets."""
        target = GeoLocation(
            latitude_deg=item.latitude,
            longitude_deg=item.longitude,
            altitude_msl_m=self._home.altitude_msl_m,
        )
        return self._home.local_offset_to(target)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self, estimate: StateEstimate) -> MissionStep:
        """Advance the mission given the current state estimate."""
        if self._plan is None or self._complete:
            return MissionStep(kind="complete")

        while self._current_index < len(self._plan):
            item = self._plan.item(self._current_index)
            step = self._execute_item(item, estimate)
            if step is not None:
                return step
            # The item just completed; move on within the same period.
            self._reached.append(item.seq)
            self._current_index += 1

        self._complete = True
        return MissionStep(kind="complete")

    def _execute_item(
        self, item: MissionItem, estimate: StateEstimate
    ) -> Optional[MissionStep]:
        """Return the step for ``item`` or None when it has completed."""
        if item.command == MavCommand.NAV_TAKEOFF:
            if estimate.altitude >= item.altitude - self._params.takeoff_altitude_tolerance_m:
                return None
            return MissionStep(
                kind="takeoff",
                target_altitude=item.altitude,
                item_seq=item.seq,
            )
        if item.command == MavCommand.NAV_WAYPOINT:
            north, east = self._item_offsets(item)
            if self._waypoint_index_for(item.seq) is None:
                self._waypoint_counter += 1
                self._waypoint_assignments[item.seq] = self._waypoint_counter
            distance = estimate.horizontal_distance_to(north, east)
            altitude_ok = (
                item.altitude <= 0.0
                or abs(estimate.altitude - item.altitude) <= 2.0
            )
            if distance <= self._params.waypoint_radius_m and altitude_ok:
                return None
            return MissionStep(
                kind="waypoint",
                target_north=north,
                target_east=east,
                target_altitude=item.altitude if item.altitude > 0.0 else None,
                waypoint_index=self._waypoint_assignments[item.seq],
                item_seq=item.seq,
            )
        if item.command == MavCommand.NAV_RETURN_TO_LAUNCH:
            # Hand over to RTL; the mode controller owns completion.
            return MissionStep(kind="rtl", item_seq=item.seq)
        if item.command == MavCommand.NAV_LAND:
            return MissionStep(kind="land", item_seq=item.seq)
        # Unsupported items are skipped (mirrors firmware tolerance of
        # DO_* items it does not implement).
        return None

    def _waypoint_index_for(self, seq: int) -> Optional[int]:
        """Waypoint-leg number assigned to mission item ``seq``, if any.

        Legs are numbered 1, 2, 3 ... in execution order so the operating
        mode labels match Table II's "Waypoint 1 -> Waypoint 2" windows.
        """
        return self._waypoint_assignments.get(seq)
