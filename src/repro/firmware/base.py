"""The control firmware: mode state machine tying every component together.

:class:`ControlFirmware` is the Python stand-in for ArduPilot / PX4.  One
instance is provisioned per test run (as in the paper).  Every control
period it:

1. processes MAVLink traffic from the ground-control station,
2. fuses the sensor readings into a state estimate (with fail-over),
3. routes new sensor failures through the fail-safe manager *and* the bug
   registry -- a matching bug replaces the correct handling with the
   mishandling encoded in its effect script,
4. runs the active flight mode's logic to produce a navigation setpoint,
5. runs the cascaded controllers and emits an actuator command, and
6. reports operating-mode transitions through the hinj interface.

The firmware never sees the simulator's ground-truth state; everything it
does is driven by its own (possibly corrupted) estimate, which is what
makes the bug manifestations honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.firmware.arming import ArmingController, ArmingDecision
from repro.firmware.bugs import BugRegistry
from repro.firmware.effects import BugEffectEngine, EffectOverrides
from repro.firmware.estimator import SensorFailureEvent, StateEstimate, StateEstimator
from repro.firmware.failsafe import FailsafeAction, FailsafeEvent, FailsafeManager
from repro.firmware.mission_exec import MissionExecutor, MissionStep
from repro.firmware.modes import (
    ARDUPILOT_MODE_NAMES,
    FlightMode,
    OperatingModeLabel,
    UNTESTED_MODES,
    resolve_mode_name,
)
from repro.firmware.navigation import NavigationSetpoint, NavigationStack
from repro.firmware.params import FirmwareParameters
from repro.firmware.telemetry import FirmwareMavlinkHandler
from repro.hinj.instrumentation import HinjInterface
from repro.mavlink.link import MavLink
from repro.mavlink.mission import MissionPlan
from repro.sensors.base import SensorId, SensorReading, SensorType
from repro.sensors.suite import SensorSuite
from repro.sim.environment import Environment, GeoLocation, default_environment
from repro.sim.physics import ActuatorCommand
from repro.sim.vehicle import IRIS_QUADCOPTER, AirframeParameters


class FirmwareCrashed(Exception):
    """Raised when the firmware process dies (a software crash).

    The invariant monitor's safety rule "checks if the firmware process
    is still running"; raising this exception is the in-process analogue
    of the process exiting.
    """


@dataclass(frozen=True)
class ModeChange:
    """One flight-mode change with its reason, for reports and tests."""

    time: float
    mode: FlightMode
    reason: str


class ControlFirmware:
    """A generic multicopter firmware; flavours specialise naming and bugs."""

    #: Flavour name ("ardupilot" or "px4" for the shipped flavours).
    name = "generic"
    #: Table mapping SET_MODE strings to flight modes for this flavour.
    mode_name_table: Dict[str, FlightMode] = ARDUPILOT_MODE_NAMES

    def __init__(
        self,
        suite: SensorSuite,
        airframe: AirframeParameters = IRIS_QUADCOPTER,
        params: Optional[FirmwareParameters] = None,
        environment: Optional[Environment] = None,
        link: Optional[MavLink] = None,
        hinj: Optional[HinjInterface] = None,
        bug_registry: Optional[BugRegistry] = None,
        dt: float = 0.02,
        initial_hold_point: Tuple[float, float] = (0.0, 0.0),
    ) -> None:
        self.suite = suite
        self.airframe = airframe
        self.params = params if params is not None else FirmwareParameters()
        self.environment = environment if environment is not None else default_environment()
        self.dt = dt

        self._estimator = StateEstimator(suite, self.params)
        self._navigation = NavigationStack(self.params, airframe)
        self._failsafe = FailsafeManager(self.params)
        self._arming = ArmingController(self.params)
        self._mission = MissionExecutor(self.params, self.environment.home)
        self._effects = BugEffectEngine()
        self._bugs = bug_registry if bug_registry is not None else BugRegistry()
        self._hinj = hinj

        self._link = link
        self._mavlink = (
            FirmwareMavlinkHandler(self, link, self.params) if link is not None else None
        )

        self._flight_mode = FlightMode.PREFLIGHT
        self._mode_history: List[ModeChange] = [ModeChange(0.0, FlightMode.PREFLIGHT, "boot")]
        self._operating_label = OperatingModeLabel.PREFLIGHT
        self._label_history: List[Tuple[float, str]] = [(0.0, self._operating_label)]
        self._post_takeoff_mode = FlightMode.GUIDED
        self._takeoff_target_altitude: Optional[float] = None
        # Fleet members launch from offset pads; the hold point must start
        # at the pad or a guided takeoff would drag the vehicle toward the
        # shared home.  The default is the classic single-vehicle origin.
        self._hold_point: Tuple[float, float] = tuple(initial_hold_point)
        self._hold_altitude: float = 0.0
        self._guided_target: Optional[Tuple[float, float, float]] = None
        self._guided_speed_limit: Optional[float] = None
        self._rtl_phase = "climb"
        self._landed_counter = 0
        self._elapsed_steps = 1
        self._failsafe_active = False
        self._process_alive = True
        self._pending_failsafe_mode: Optional[FlightMode] = None

        if self._hinj is not None:
            self._hinj.install(suite)
            self._hinj.update_mode(self._operating_label, 0.0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def flight_mode(self) -> FlightMode:
        """The firmware's current internal flight mode."""
        return self._flight_mode

    @property
    def mode_display_name(self) -> str:
        """The flavour-specific display name of the current mode."""
        return self.mode_name_for(self._flight_mode)

    def mode_name_for(self, mode: FlightMode) -> str:
        """This flavour's SET_MODE string for ``mode``.

        The reverse lookup over :attr:`mode_name_table`; facades use it
        so every vehicle of a (possibly heterogeneous) fleet is
        commanded with its own flavour's mode names.
        """
        for name, value in self.mode_name_table.items():
            if value == mode:
                return name
        return mode.value.upper()

    @property
    def operating_mode_label(self) -> str:
        """The operating-mode label reported through hinj."""
        return self._operating_label

    @property
    def mode_history(self) -> List[ModeChange]:
        """Every flight-mode change since boot."""
        return list(self._mode_history)

    @property
    def label_history(self) -> List[Tuple[float, str]]:
        """Every operating-mode label change since boot."""
        return list(self._label_history)

    @property
    def armed(self) -> bool:
        """True while motors are armed."""
        return self._arming.armed

    @property
    def estimate(self) -> StateEstimate:
        """The firmware's current state estimate."""
        return self._estimator.estimate

    @property
    def bug_registry(self) -> BugRegistry:
        """The bug registry for this firmware instance."""
        return self._bugs

    @property
    def failsafe_events(self) -> List[FailsafeEvent]:
        """Fail-safe decisions taken so far."""
        return self._failsafe.events

    @property
    def failsafe_active(self) -> bool:
        """True once any fail-safe that changes the flight plan has fired."""
        return self._failsafe_active

    @property
    def triggered_bug_ids(self) -> List[str]:
        """Bugs whose mishandling engaged during this run."""
        return self._bugs.triggered_bug_ids

    @property
    def process_alive(self) -> bool:
        """False once the firmware process has crashed."""
        return self._process_alive

    @property
    def home(self) -> GeoLocation:
        """The home (launch) location."""
        return self.environment.home

    @property
    def mission_current_seq(self) -> Optional[int]:
        """Sequence number of the mission item being executed, if any."""
        if not self._mission.has_plan:
            return None
        return self._mission.current_seq

    @property
    def mission_reached_items(self) -> List[int]:
        """Mission items completed so far."""
        return self._mission.reached_items

    @property
    def mission_complete(self) -> bool:
        """True when the uploaded mission has fully executed."""
        return self._mission.complete

    # ------------------------------------------------------------------
    # Commands (called by the MAVLink handler or directly by tests)
    # ------------------------------------------------------------------
    def command_arm(self, time: float) -> ArmingDecision:
        """Arm the motors, subject to pre-arm checks."""
        decision = self._arming.request_arm(self._estimator.status, time)
        return decision

    def command_disarm(self) -> ArmingDecision:
        """Disarm the motors (refused while airborne)."""
        airborne = self.estimate.altitude > 0.5
        return self._arming.request_disarm(airborne)

    def command_takeoff(self, altitude: float, time: float) -> bool:
        """Guided takeoff to ``altitude`` metres above home."""
        if altitude <= 0.0 or not self._arming.armed:
            return False
        self._takeoff_target_altitude = altitude
        self._post_takeoff_mode = FlightMode.GUIDED
        self._guided_target = (self.estimate.north, self.estimate.east, altitude)
        self._set_flight_mode(FlightMode.TAKEOFF, time, "guided takeoff command")
        return True

    def command_rtl(self, time: float) -> None:
        """Switch to return-to-launch."""
        self._set_flight_mode(FlightMode.RTL, time, "RTL command")

    def command_land(self, time: float) -> None:
        """Switch to land."""
        self._set_flight_mode(FlightMode.LAND, time, "land command")

    def start_mission(self, time: float) -> bool:
        """Begin executing the uploaded mission (AUTO mode)."""
        if not self._mission.has_plan or not self._arming.armed:
            return False
        self._set_flight_mode(FlightMode.AUTO, time, "mission start")
        return True

    def set_mode_by_name(self, name: str, time: float) -> bool:
        """Handle a SET_MODE request using the flavour's mode table."""
        mode = resolve_mode_name(name, self.mode_name_table)
        if mode is None:
            return False
        if mode == FlightMode.AUTO and not self._mission.has_plan:
            return False
        if mode in UNTESTED_MODES:
            # Stunt / race modes relax safety guarantees; accepted, but the
            # workloads never request them (Section IV-A of the paper).
            self._set_flight_mode(mode, time, f"pilot mode change to {name}")
            return True
        self._set_flight_mode(mode, time, f"pilot mode change to {name}")
        return True

    def load_mission(self, plan: MissionPlan) -> None:
        """Install an uploaded mission plan."""
        self._mission.load(plan)

    def set_guided_target(
        self,
        north: float,
        east: float,
        altitude: float,
        speed_limit: Optional[float] = None,
    ) -> None:
        """Set the guided-mode target (offsets from home, metres).

        ``speed_limit`` optionally caps the horizontal approach speed
        (m/s), like a DO_CHANGE_SPEED alongside the reposition; None
        keeps the airframe's full envelope.
        """
        self._guided_target = (north, east, altitude)
        self._guided_speed_limit = speed_limit

    # ------------------------------------------------------------------
    # Mode management
    # ------------------------------------------------------------------
    def _set_flight_mode(self, mode: FlightMode, time: float, reason: str) -> None:
        if mode == self._flight_mode:
            return
        self._flight_mode = mode
        self._mode_history.append(ModeChange(time=time, mode=mode, reason=reason))
        estimate = self.estimate
        if mode in (FlightMode.LOITER, FlightMode.POSHOLD, FlightMode.ALT_HOLD, FlightMode.STABILIZE):
            self._hold_point = (estimate.north, estimate.east)
            self._hold_altitude = estimate.altitude
        if mode == FlightMode.LAND:
            self._hold_point = (estimate.north, estimate.east)
            self._landed_counter = 0
        if mode == FlightMode.RTL:
            self._rtl_phase = "climb"
        if self._mavlink is not None:
            self._mavlink.send_status_text("info", f"mode changed to {mode.value}: {reason}")

    def _set_operating_label(self, label: str, time: float) -> None:
        if label == self._operating_label:
            return
        self._operating_label = label
        self._label_history.append((time, label))
        if self._hinj is not None:
            self._hinj.update_mode(label, time)

    # ------------------------------------------------------------------
    # The control period
    # ------------------------------------------------------------------
    def update(
        self,
        readings: Mapping[SensorId, SensorReading],
        time: float,
        elapsed_steps: int = 1,
    ) -> ActuatorCommand:
        """Run one control period and return the actuator command.

        ``elapsed_steps`` is the number of simulation micro-steps since
        the previous control period (1 under the reference stepper).
        The adaptive stepper fuses quiescent windows -- one control
        period covering several physics steps -- and reports the window
        length here so dead-reckoning stays time-consistent: the
        estimator integrates over the elapsed seconds and time-counted
        conditions (the landed-settle counter) advance by the elapsed
        steps.
        """
        if not self._process_alive:
            return ActuatorCommand(armed=False)

        if self._mavlink is not None:
            self._mavlink.process_incoming(time)

        self._elapsed_steps = elapsed_steps
        # ``dt * 1`` is exactly ``dt``, so reference-stepper arithmetic
        # is bit-for-bit unchanged.
        estimate, failure_events = self._estimator.update(
            readings, self.dt * elapsed_steps, time
        )
        airborne = estimate.altitude > 0.3 and self._arming.armed

        for event in failure_events:
            self._handle_sensor_failure(event, airborne, time)
        self._check_battery(readings, time)
        self._check_fence(estimate, time)

        # The buggy handlers corrupt the *control view* of the estimate
        # (what the navigation code believes), not the filter's internal
        # state -- a constant altitude-reference error stays constant.
        estimate = self._effects.corrupt_estimate(estimate.copy())
        overrides = self._effects.overrides(estimate, airborne, time)
        if self._pending_failsafe_mode is not None:
            self._set_flight_mode(self._pending_failsafe_mode, time, "failsafe")
            self._pending_failsafe_mode = None
        if overrides.forced_mode is not None:
            # A buggy handler's (wrong) fail-safe decision wins over the
            # correct one taken for a different, concurrently failed sensor.
            self._set_flight_mode(overrides.forced_mode, time, "fault-handling response")

        setpoint, label = self._mode_logic(estimate, overrides, time)
        attitude = self._navigation.update(estimate, setpoint)
        throttle = attitude.throttle

        if overrides.block_takeoff and label in (
            OperatingModeLabel.TAKEOFF,
            OperatingModeLabel.PREFLIGHT,
        ):
            throttle = min(throttle, 0.3)
        if overrides.throttle_override is not None:
            throttle = overrides.throttle_override
        if not self._arming.armed:
            throttle = 0.0

        self._set_operating_label(label, time)
        if self._mavlink is not None:
            self._mavlink.send_telemetry(time)

        return ActuatorCommand(
            throttle=throttle,
            target_roll=attitude.roll,
            target_pitch=attitude.pitch,
            target_yaw_rate=attitude.yaw_rate,
            armed=self._arming.armed,
        )

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def _handle_sensor_failure(
        self, event: SensorFailureEvent, airborne: bool, time: float
    ) -> None:
        sensor_type = event.sensor_id.sensor_type
        failed_types = frozenset(
            sensor_id.sensor_type for sensor_id in self.suite.failed_sensor_ids()
        )
        seconds_into_mode = time - self._label_history[-1][0]
        matches = self._bugs.match(
            sensor_type=sensor_type,
            mode_label=self._operating_label,
            altitude=self.estimate.altitude,
            failed_types=failed_types,
            was_active_instance=event.was_active_instance,
            time=time,
            seconds_into_mode=seconds_into_mode,
        )
        if matches:
            # The buggy handler runs instead of the correct fail-safe: this
            # is precisely the narrowly-tailored handling the paper blames.
            for descriptor in matches:
                self._effects.activate(descriptor, self.estimate, time)
                if self._mavlink is not None:
                    self._mavlink.send_status_text(
                        "warning", f"handling {sensor_type.value} failure"
                    )
            return

        decision = self._failsafe.handle_sensor_failure(
            event, self._estimator.status, self._flight_mode, airborne
        )
        self._apply_failsafe(decision)

    def _check_battery(self, readings: Mapping[SensorId, SensorReading], time: float) -> None:
        battery = self.suite.read_active(readings, SensorType.BATTERY)
        remaining = battery.value("remaining") if battery is not None else None
        if remaining is None:
            return
        decision = self._failsafe.check_battery(remaining, self._estimator.status, time)
        if decision is not None:
            self._apply_failsafe(decision)

    def _check_fence(self, estimate: StateEstimate, time: float) -> None:
        if not self.params.fence_enabled or not self.environment.fences:
            return
        point = (estimate.north, estimate.east, estimate.altitude)
        breached = self.environment.breached_fence(point) is not None
        decision = self._failsafe.check_fence(breached, time)
        if decision is not None:
            self._apply_failsafe(decision)

    def _apply_failsafe(self, decision: FailsafeEvent) -> None:
        if decision.action == FailsafeAction.LAND:
            self._pending_failsafe_mode = FlightMode.LAND
            self._failsafe_active = True
        elif decision.action == FailsafeAction.RTL:
            self._pending_failsafe_mode = FlightMode.RTL
            self._failsafe_active = True
        elif decision.action == FailsafeAction.DISARM:
            # A critical sensor failed while the vehicle was still on the
            # ground: refuse to fly.  (Liveliness is deliberately
            # sacrificed; the invariant monitor excuses a disarmed vehicle
            # on the ground.)
            self._arming.force_disarm()
            self._failsafe_active = True
        if self._mavlink is not None:
            self._mavlink.send_status_text("critical", decision.describe())

    # ------------------------------------------------------------------
    # Flight-mode logic
    # ------------------------------------------------------------------
    def _mode_logic(
        self, estimate: StateEstimate, overrides: EffectOverrides, time: float
    ) -> Tuple[NavigationSetpoint, str]:
        mode = self._flight_mode
        if mode == FlightMode.PREFLIGHT:
            return NavigationSetpoint(), OperatingModeLabel.PREFLIGHT
        if mode == FlightMode.TAKEOFF:
            return self._takeoff_logic(estimate, overrides, time)
        if mode == FlightMode.AUTO:
            return self._auto_logic(estimate, overrides, time)
        if mode == FlightMode.GUIDED:
            return self._guided_logic(estimate)
        if mode in (FlightMode.LOITER, FlightMode.POSHOLD, FlightMode.ALT_HOLD, FlightMode.STABILIZE):
            label = (
                OperatingModeLabel.LOITER
                if mode == FlightMode.LOITER
                else OperatingModeLabel.POSHOLD
            )
            return (
                NavigationSetpoint(
                    target_north=self._hold_point[0],
                    target_east=self._hold_point[1],
                    target_altitude=self._hold_altitude,
                ),
                label,
            )
        if mode == FlightMode.LAND:
            return self._land_logic(estimate, time)
        if mode == FlightMode.RTL:
            return self._rtl_logic(estimate, time)
        # Stunt/race modes: hold attitude, pilot is trusted.
        return NavigationSetpoint(target_altitude=self._hold_altitude), OperatingModeLabel.POSHOLD

    def _takeoff_logic(
        self, estimate: StateEstimate, overrides: EffectOverrides, time: float
    ) -> Tuple[NavigationSetpoint, str]:
        target_altitude = self._takeoff_target_altitude or 0.0
        abort_altitude = overrides.abort_takeoff_at_altitude
        if abort_altitude is not None and estimate.altitude >= abort_altitude:
            # The buggy takeoff abort: hover where we are, never complete.
            return (
                NavigationSetpoint(
                    target_north=self._hold_point[0],
                    target_east=self._hold_point[1],
                    target_altitude=abort_altitude,
                ),
                OperatingModeLabel.TAKEOFF,
            )
        if estimate.altitude >= target_altitude - self.params.takeoff_altitude_tolerance_m:
            self._finish_takeoff(time)
            return self._mode_logic(estimate, overrides, time)
        return (
            NavigationSetpoint(
                target_north=self._hold_point[0],
                target_east=self._hold_point[1],
                climb_rate=self.params.takeoff_climb_rate_ms,
            ),
            OperatingModeLabel.TAKEOFF,
        )

    def _finish_takeoff(self, time: float) -> None:
        if self._mission.has_plan and self._post_takeoff_mode == FlightMode.AUTO:
            self._set_flight_mode(FlightMode.AUTO, time, "takeoff complete")
        else:
            self._hold_altitude = self._takeoff_target_altitude or self.estimate.altitude
            self._hold_point = (self.estimate.north, self.estimate.east)
            self._set_flight_mode(self._post_takeoff_mode, time, "takeoff complete")

    def _auto_logic(
        self, estimate: StateEstimate, overrides: EffectOverrides, time: float
    ) -> Tuple[NavigationSetpoint, str]:
        step = self._mission.step(estimate)
        if step.kind == "takeoff":
            self._takeoff_target_altitude = step.target_altitude
            self._post_takeoff_mode = FlightMode.AUTO
            self._hold_point = (estimate.north, estimate.east)
            return self._takeoff_step_in_auto(estimate, overrides, step)
        if step.kind == "waypoint":
            yaw_target = self._bearing_to(estimate, step.target_north, step.target_east)
            label = OperatingModeLabel.waypoint(step.waypoint_index or 1)
            return (
                NavigationSetpoint(
                    target_north=step.target_north,
                    target_east=step.target_east,
                    target_altitude=step.target_altitude,
                    target_yaw=yaw_target,
                    speed_limit=self.params.waypoint_speed_ms,
                ),
                label,
            )
        if step.kind == "rtl":
            self._set_flight_mode(FlightMode.RTL, time, "mission RTL item")
            return self._rtl_logic(estimate, time)
        if step.kind == "land":
            self._set_flight_mode(FlightMode.LAND, time, "mission land item")
            return self._land_logic(estimate, time)
        # Mission complete: hold position.
        self._hold_point = (estimate.north, estimate.east)
        self._hold_altitude = estimate.altitude
        self._set_flight_mode(FlightMode.LOITER, time, "mission complete")
        return (
            NavigationSetpoint(
                target_north=self._hold_point[0],
                target_east=self._hold_point[1],
                target_altitude=self._hold_altitude,
            ),
            OperatingModeLabel.LOITER,
        )

    def _takeoff_step_in_auto(
        self, estimate: StateEstimate, overrides: EffectOverrides, step: MissionStep
    ) -> Tuple[NavigationSetpoint, str]:
        abort_altitude = overrides.abort_takeoff_at_altitude
        target_altitude = step.target_altitude or 0.0
        if abort_altitude is not None and estimate.altitude >= abort_altitude:
            target_altitude = abort_altitude
            return (
                NavigationSetpoint(
                    target_north=self._hold_point[0],
                    target_east=self._hold_point[1],
                    target_altitude=target_altitude,
                ),
                OperatingModeLabel.TAKEOFF,
            )
        return (
            NavigationSetpoint(
                target_north=self._hold_point[0],
                target_east=self._hold_point[1],
                climb_rate=self.params.takeoff_climb_rate_ms,
            ),
            OperatingModeLabel.TAKEOFF,
        )

    def _guided_logic(self, estimate: StateEstimate) -> Tuple[NavigationSetpoint, str]:
        if self._guided_target is None:
            return (
                NavigationSetpoint(
                    target_north=estimate.north,
                    target_east=estimate.east,
                    target_altitude=estimate.altitude,
                ),
                OperatingModeLabel.GUIDED,
            )
        north, east, altitude = self._guided_target
        yaw_target = self._bearing_to(estimate, north, east)
        return (
            NavigationSetpoint(
                target_north=north,
                target_east=east,
                target_altitude=altitude,
                target_yaw=yaw_target,
                speed_limit=self._guided_speed_limit,
            ),
            OperatingModeLabel.GUIDED,
        )

    def _land_logic(self, estimate: StateEstimate, time: float) -> Tuple[NavigationSetpoint, str]:
        if estimate.altitude > self.params.land_final_altitude_m:
            descent = self.params.land_speed_high_ms
        else:
            descent = self.params.land_speed_final_ms
        setpoint = NavigationSetpoint(
            target_north=self._hold_point[0],
            target_east=self._hold_point[1],
            climb_rate=-descent,
        )
        if estimate.altitude < 0.3 and abs(estimate.climb_rate) < 0.3:
            # A fused control period covers elapsed_steps of settling.
            self._landed_counter += self._elapsed_steps
        else:
            self._landed_counter = 0
        if self._landed_counter * self.dt >= 1.0:
            self._arming.force_disarm()
            self._set_flight_mode(FlightMode.PREFLIGHT, time, "landed and disarmed")
            return NavigationSetpoint(), OperatingModeLabel.LANDED
        return setpoint, OperatingModeLabel.LAND

    def _rtl_logic(self, estimate: StateEstimate, time: float) -> Tuple[NavigationSetpoint, str]:
        rtl_altitude = max(self.params.rtl_altitude_m, estimate.altitude)
        if self._rtl_phase == "climb":
            if estimate.altitude >= rtl_altitude - 1.0:
                self._rtl_phase = "return"
            return (
                NavigationSetpoint(
                    target_north=estimate.north,
                    target_east=estimate.east,
                    target_altitude=rtl_altitude,
                ),
                OperatingModeLabel.RTL,
            )
        if self._rtl_phase == "return":
            distance_home = math.hypot(estimate.north, estimate.east)
            if distance_home <= self.params.waypoint_radius_m:
                self._rtl_phase = "descend"
                self._hold_point = (0.0, 0.0)
            yaw_target = self._bearing_to(estimate, 0.0, 0.0)
            return (
                NavigationSetpoint(
                    target_north=0.0,
                    target_east=0.0,
                    target_altitude=rtl_altitude,
                    target_yaw=yaw_target,
                    speed_limit=self.params.waypoint_speed_ms,
                ),
                OperatingModeLabel.RTL,
            )
        if self._rtl_phase == "descend":
            # Descend over the launch point; hand over to the land mode for
            # the final approach (the "Return To Launch -> Land" transition
            # of Table II happens here).
            if estimate.altitude <= self.params.land_final_altitude_m:
                self._set_flight_mode(FlightMode.LAND, time, "RTL final approach")
                return self._land_logic(estimate, time)
            return (
                NavigationSetpoint(
                    target_north=0.0,
                    target_east=0.0,
                    climb_rate=-self.params.land_speed_high_ms,
                ),
                OperatingModeLabel.RTL,
            )
        # Final phase (legacy path): land at home.
        return self._land_logic(estimate, time)

    @staticmethod
    def _bearing_to(estimate: StateEstimate, north: Optional[float], east: Optional[float]) -> Optional[float]:
        if north is None or east is None:
            return None
        d_north = north - estimate.north
        d_east = east - estimate.east
        if math.hypot(d_north, d_east) < 3.0:
            return None
        return math.atan2(d_east, d_north)

    # ------------------------------------------------------------------
    # Software crash injection (used by tests)
    # ------------------------------------------------------------------
    def crash_process(self) -> None:
        """Kill the firmware process (safety-invariant software crash)."""
        self._process_alive = False
