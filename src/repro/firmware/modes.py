"""Flight modes and operating-mode labels.

Two related notions are kept distinct, matching the paper:

* :class:`FlightMode` is the firmware's internal flight mode -- the state
  of its mode state machine (ArduPilot exposes 25 of these; we implement
  the ones the workloads and fail-safes exercise and list the stunt/race
  modes the paper deliberately leaves untested).
* The *operating-mode label* is what Avis sees through
  ``hinj_update_mode``: a label that "maps software execution to
  corresponding flight operations".  During AUTO missions the label is
  refined per mission leg (``waypoint-1``, ``waypoint-2`` ...), which is
  exactly the granularity of Table II's "Failure Starting Moment" column
  (e.g. "Waypoint 1 -> Waypoint 2").
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Optional


class FlightMode(enum.Enum):
    """Internal flight modes of the simulated firmware."""

    PREFLIGHT = "preflight"
    STABILIZE = "stabilize"
    ALT_HOLD = "alt_hold"
    POSHOLD = "poshold"
    LOITER = "loiter"
    GUIDED = "guided"
    TAKEOFF = "takeoff"
    AUTO = "auto"
    LAND = "land"
    RTL = "rtl"
    ACRO = "acro"
    SPORT = "sport"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Stunt / race modes.  Section V-A: these relax the firmware's safety
#: guarantees and are deliberately left untested by the workloads.
UNTESTED_MODES: FrozenSet[FlightMode] = frozenset({FlightMode.ACRO, FlightMode.SPORT})

#: Modes in which the vehicle is expected to be making progress toward a
#: mission goal (used by the liveliness analysis in reports).
MISSION_MODES: FrozenSet[FlightMode] = frozenset(
    {FlightMode.TAKEOFF, FlightMode.AUTO, FlightMode.GUIDED, FlightMode.RTL}
)

#: Modes entered by fail-safes that deliberately sacrifice liveliness to
#: preserve safety.  The invariant monitor treats these as *safe modes*
#: and applies their dedicated invariants instead of the liveliness rule.
SAFE_MODES: FrozenSet[FlightMode] = frozenset({FlightMode.RTL, FlightMode.LAND})


class OperatingModeLabel:
    """Helpers for the labels reported through ``hinj_update_mode``."""

    PREFLIGHT = "preflight"
    TAKEOFF = "takeoff"
    GUIDED = "guided"
    LOITER = "loiter"
    POSHOLD = "poshold"
    RTL = "rtl"
    LAND = "land"
    LANDED = "landed"

    @staticmethod
    def waypoint(index: int) -> str:
        """The label for mission leg ``index`` (1-based)."""
        if index < 1:
            raise ValueError("waypoint indices are 1-based")
        return f"waypoint-{index}"

    @staticmethod
    def is_waypoint(label: str) -> bool:
        """True when ``label`` is a waypoint-leg label."""
        return label.startswith("waypoint-")

    @staticmethod
    def waypoint_index(label: str) -> Optional[int]:
        """The 1-based leg index encoded in a waypoint label, or None."""
        if not OperatingModeLabel.is_waypoint(label):
            return None
        try:
            return int(label.split("-", 1)[1])
        except ValueError:
            return None

    @staticmethod
    def mode_category(label: str) -> str:
        """Collapse a label to the mode category used by Table IV.

        Table IV groups unsafe scenarios into Takeoff / Manual / Waypoint
        / Land.  Manual covers the position-hold style modes exercised by
        the first default workload; RTL legs count toward Land since the
        unsafe conditions there manifest during the descent.

        Fleet-namespaced labels (``v1:rtl``) are categorised by their
        base label.  A label outside the known vocabulary maps to
        ``"other"`` rather than being silently folded into one of the
        four paper categories, so per-mode counts stay honest when new
        workload families introduce new labels.
        """
        if ":" in label:
            prefix, _, rest = label.partition(":")
            if prefix.startswith("v") and prefix[1:].isdigit() and rest:
                label = rest
        if label in (OperatingModeLabel.TAKEOFF, OperatingModeLabel.PREFLIGHT):
            return "takeoff"
        if OperatingModeLabel.is_waypoint(label) or label == OperatingModeLabel.GUIDED:
            return "waypoint"
        if label in (OperatingModeLabel.LAND, OperatingModeLabel.RTL, OperatingModeLabel.LANDED):
            return "land"
        if label in (OperatingModeLabel.LOITER, OperatingModeLabel.POSHOLD):
            return "manual"
        return "other"


#: Mapping from the MAVLink ``SET_MODE`` strings each firmware flavour
#: accepts to the internal :class:`FlightMode`.  The quirks are real:
#: ArduPilot calls its position-hold mode ``POSHOLD`` while PX4 calls the
#: equivalent ``POSCTL``; PX4 spells the mission mode ``MISSION`` while
#: ArduPilot uses ``AUTO``.  The workload framework hides this (Section
#: IV-A: "implementations have subtle quirks that make it difficult for
#: users to develop portable workloads").
ARDUPILOT_MODE_NAMES: Dict[str, FlightMode] = {
    "STABILIZE": FlightMode.STABILIZE,
    "ALT_HOLD": FlightMode.ALT_HOLD,
    "POSHOLD": FlightMode.POSHOLD,
    "LOITER": FlightMode.LOITER,
    "GUIDED": FlightMode.GUIDED,
    "AUTO": FlightMode.AUTO,
    "LAND": FlightMode.LAND,
    "RTL": FlightMode.RTL,
    "ACRO": FlightMode.ACRO,
    "SPORT": FlightMode.SPORT,
}

PX4_MODE_NAMES: Dict[str, FlightMode] = {
    "MANUAL": FlightMode.STABILIZE,
    "ALTCTL": FlightMode.ALT_HOLD,
    "POSCTL": FlightMode.POSHOLD,
    "HOLD": FlightMode.LOITER,
    "OFFBOARD": FlightMode.GUIDED,
    "MISSION": FlightMode.AUTO,
    "AUTO.LAND": FlightMode.LAND,
    "AUTO.RTL": FlightMode.RTL,
    "ACRO": FlightMode.ACRO,
    "RATTITUDE": FlightMode.SPORT,
}


def resolve_mode_name(name: str, table: Dict[str, FlightMode]) -> Optional[FlightMode]:
    """Resolve a ``SET_MODE`` string against a flavour's mode table."""
    return table.get(name.strip().upper())
