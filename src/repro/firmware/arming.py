"""Pre-arm checks and the arming state machine.

Real autopilots refuse to arm when mandatory sensors are unhealthy; the
workloads arm the vehicle before any fault is injected, so under normal
operation the checks pass.  They exist because (a) several bug windows
start in the pre-flight operating mode, and (b) the workload framework's
``arm_system_completely`` must mirror the real handshake (request, wait
for the acknowledgement, re-request on transient denial).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.firmware.estimator import EstimatorStatus
from repro.firmware.params import FirmwareParameters
from repro.sensors.base import SensorType


@dataclass(frozen=True)
class ArmingDecision:
    """Outcome of an arming or disarming request."""

    allowed: bool
    reasons: tuple = ()

    @property
    def reason_text(self) -> str:
        """Joined failure reasons (empty when the request was allowed)."""
        return "; ".join(self.reasons)


class ArmingController:
    """Tracks the armed state and evaluates pre-arm checks."""

    def __init__(self, params: FirmwareParameters) -> None:
        self._params = params
        self._armed = False
        self._armed_time: Optional[float] = None

    @property
    def armed(self) -> bool:
        """True while the motors are armed."""
        return self._armed

    @property
    def armed_time(self) -> Optional[float]:
        """Simulation time at which the vehicle armed (None if never)."""
        return self._armed_time

    def prearm_checks(self, status: EstimatorStatus) -> ArmingDecision:
        """Evaluate the pre-arm checks against the estimator status."""
        reasons: List[str] = []
        if self._params.require_gps_for_arming and not status.is_healthy(SensorType.GPS):
            reasons.append("PreArm: GPS unhealthy")
        if self._params.require_compass_for_arming and not status.is_healthy(SensorType.COMPASS):
            reasons.append("PreArm: compass unhealthy")
        if self._params.require_baro_for_arming and not status.is_healthy(SensorType.BAROMETER):
            reasons.append("PreArm: barometer unhealthy")
        if not status.is_healthy(SensorType.GYROSCOPE):
            reasons.append("PreArm: gyroscope unhealthy")
        if not status.is_healthy(SensorType.ACCELEROMETER):
            reasons.append("PreArm: accelerometer unhealthy")
        return ArmingDecision(allowed=not reasons, reasons=tuple(reasons))

    def request_arm(self, status: EstimatorStatus, time: float) -> ArmingDecision:
        """Process an arm request from the ground-control station."""
        if self._armed:
            return ArmingDecision(allowed=True)
        decision = self.prearm_checks(status)
        if decision.allowed:
            self._armed = True
            self._armed_time = time
        return decision

    def request_disarm(self, airborne: bool) -> ArmingDecision:
        """Process a disarm request (refused while airborne)."""
        if airborne:
            return ArmingDecision(allowed=False, reasons=("cannot disarm in flight",))
        self._armed = False
        return ArmingDecision(allowed=True)

    def force_disarm(self) -> None:
        """Disarm unconditionally (used after landing completes)."""
        self._armed = False
