"""The ArduPilot-flavoured firmware (ArduCopter 3.6.9 analogue)."""

from __future__ import annotations

from typing import Optional

from repro.firmware.base import ControlFirmware
from repro.firmware.bugs import BugRegistry, ardupilot_bug_registry
from repro.firmware.modes import ARDUPILOT_MODE_NAMES
from repro.firmware.params import ARDUPILOT_DEFAULT_PARAMETERS, FirmwareParameters
from repro.hinj.instrumentation import HinjInterface
from repro.mavlink.link import MavLink
from repro.sensors.suite import SensorSuite, iris_sensor_suite
from repro.sim.environment import Environment
from repro.sim.vehicle import IRIS_QUADCOPTER, AirframeParameters


class ArduPilotFirmware(ControlFirmware):
    """ArduCopter-style firmware.

    Ships with the six latent (previously unknown) ArduPilot bugs of
    Table II enabled, and the four previously-known ArduPilot bugs of
    Table V registered but disabled until re-inserted.
    """

    name = "ardupilot"
    mode_name_table = ARDUPILOT_MODE_NAMES

    def __init__(
        self,
        suite: Optional[SensorSuite] = None,
        airframe: AirframeParameters = IRIS_QUADCOPTER,
        params: Optional[FirmwareParameters] = None,
        environment: Optional[Environment] = None,
        link: Optional[MavLink] = None,
        hinj: Optional[HinjInterface] = None,
        bug_registry: Optional[BugRegistry] = None,
        dt: float = 0.02,
        initial_hold_point=(0.0, 0.0),
    ) -> None:
        super().__init__(
            suite=suite if suite is not None else iris_sensor_suite(),
            airframe=airframe,
            params=params if params is not None else ARDUPILOT_DEFAULT_PARAMETERS,
            environment=environment,
            link=link,
            hinj=hinj,
            bug_registry=bug_registry if bug_registry is not None else ardupilot_bug_registry(),
            dt=dt,
            initial_hold_point=initial_hold_point,
        )
